#!/usr/bin/env python3
"""Throughput-sensitive inference layers: when GPU caching hurts, and how the
adaptive optimizations recover the loss.

The paper's key negative result is that for streaming activation /
normalization layers (FwAct, BwAct, FwLRN) enabling GPU caching *degrades*
performance: there is no reuse to exploit, so only the overheads remain --
cache allocation stalls and DRAM row-locality disruption.  Its key positive
result is that allocation bypass (AB), DBI cache rinsing (CR) and PC-based
L2 bypassing (PCby), applied cumulatively to CacheRW, remove those overheads
without giving up caching where it does help.

This example reproduces that story for the streaming layers and prints the
stall and row-locality evidence alongside the execution times.

Run with::

    python examples/streaming_inference_study.py [scale]
"""

from __future__ import annotations

import sys

from repro import (
    CACHE_RW,
    CACHE_RW_AB,
    CACHE_RW_CR,
    CACHE_RW_PCBY,
    UNCACHED,
    default_config,
    get_workload,
    simulate,
)
from repro.experiments.render import render_series_table

STREAMING_WORKLOADS = ("FwAct", "BwAct", "FwLRN")
POLICIES = (UNCACHED, CACHE_RW, CACHE_RW_AB, CACHE_RW_CR, CACHE_RW_PCBY)


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    config = default_config()

    exec_time: dict[str, dict[str, float]] = {}
    stalls: dict[str, dict[str, float]] = {}
    row_hits: dict[str, dict[str, float]] = {}

    for name in STREAMING_WORKLOADS:
        exec_time[name] = {}
        stalls[name] = {}
        row_hits[name] = {}
        baseline = None
        for policy in POLICIES:
            print(f"simulating {name} under {policy.name} ...")
            report = simulate(get_workload(name, scale=scale), policy, config=config)
            if baseline is None:
                baseline = report.cycles
            exec_time[name][policy.name] = report.cycles / baseline
            stalls[name][policy.name] = report.cache_stalls_per_request
            row_hits[name][policy.name] = report.dram_row_hit_rate

    print()
    print(render_series_table("Execution time (normalized to Uncached)", exec_time))
    print(render_series_table("Cache stalls per memory request", stalls))
    print(render_series_table("DRAM row-buffer hit rate", row_hits))

    print("Reading the results:")
    print(" * CacheRW pays allocation stalls and loses row locality on these layers;")
    print(" * CacheRW-AB removes most stalls, CacheRW-CR restores row locality,")
    print(" * CacheRW-PCby bypasses the L2 for the streaming PCs and tracks Uncached.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
