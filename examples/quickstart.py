#!/usr/bin/env python3
"""Quickstart: simulate one MI workload under the three static GPU cache policies.

This reproduces, for a single workload, the experiment behind Figure 6 of
"Optimizing GPU Cache Policies for MI Workloads" (IISWC 2019): the forward
fully-connected layer (FwFc) is run under Uncached, CacheR and CacheRW, and
the execution time, DRAM traffic, cache stalls and DRAM row-buffer locality
are compared.

Run with::

    python examples/quickstart.py [workload] [scale]
"""

from __future__ import annotations

import sys

from repro import (
    STATIC_POLICIES,
    PolicyComparison,
    default_config,
    get_workload,
    simulate,
)
from repro.experiments.render import render_kv_table, render_series_table


def main() -> int:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "FwFc"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    config = default_config()
    print(render_kv_table("Simulated system (scaled from the paper's Table 1)", config.describe()))

    workload = get_workload(workload_name, scale=scale)
    trace = workload.build_trace()
    print(f"Workload {workload.name}: {trace.num_kernels} kernel(s), "
          f"{trace.line_requests} line requests, "
          f"{trace.footprint_bytes() / 1024:.0f} KiB footprint\n")

    comparison = PolicyComparison(workload=workload.name)
    for policy in STATIC_POLICIES:
        print(f"simulating {workload.name} under {policy.name} ...")
        comparison.add(simulate(get_workload(workload_name, scale=scale), policy, config=config))

    print()
    print(render_series_table(
        "Execution time (normalized to Uncached)",
        {workload.name: comparison.normalized_exec_time()},
    ))
    print(render_series_table(
        "DRAM accesses (normalized to Uncached)",
        {workload.name: comparison.normalized_dram_accesses()},
    ))
    print(render_series_table(
        "Cache stalls per memory request",
        {workload.name: comparison.stalls_per_request()},
    ))
    print(render_series_table(
        "DRAM row-buffer hit rate",
        {workload.name: comparison.row_hit_rates()},
    ))
    best = comparison.static_best()
    print(f"Best static policy for {workload.name}: {best}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
