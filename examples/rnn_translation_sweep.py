#!/usr/bin/env python3
"""RNN speech-translation inference sweep.

The paper's RNN workloads are configured after the English-Vietnamese
translation networks of Britz et al. (sequence-to-sequence LSTM/GRU models)
and launch hundreds of small kernels per inference.  This example sweeps the
recurrent cell type and sequence length and compares the Uncached baseline
with the full optimization stack (CacheRW-PCby), reporting how much of the
per-timestep weight and state traffic the GPU L2 absorbs.

Run with::

    python examples/rnn_translation_sweep.py [scale]
"""

from __future__ import annotations

import sys

from repro import CACHE_RW_PCBY, UNCACHED, default_config, simulate
from repro.experiments.render import render_series_table
from repro.workloads.deepbench import RnnForward, RnnForwardBackward


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    config = default_config()
    exec_rows: dict[str, dict[str, float]] = {}
    dram_rows: dict[str, dict[str, float]] = {}

    sweeps = [
        ("LSTM seq=8", RnnForward, dict(cell="lstm", sequence_length=8)),
        ("LSTM seq=16", RnnForward, dict(cell="lstm", sequence_length=16)),
        ("GRU seq=8", RnnForward, dict(cell="gru", sequence_length=8)),
        ("GRU seq=16", RnnForward, dict(cell="gru", sequence_length=16)),
        ("LSTM train seq=8", RnnForwardBackward, dict(cell="lstm", sequence_length=8)),
        ("GRU train seq=8", RnnForwardBackward, dict(cell="gru", sequence_length=8)),
    ]

    for label, factory, kwargs in sweeps:
        exec_rows[label] = {}
        dram_rows[label] = {}
        baseline_cycles = baseline_dram = None
        for policy in (UNCACHED, CACHE_RW_PCBY):
            workload = factory(scale=scale, **kwargs)
            print(f"simulating {label} under {policy.name} ...")
            report = simulate(workload, policy, config=config)
            if baseline_cycles is None:
                baseline_cycles, baseline_dram = report.cycles, report.dram_accesses
            exec_rows[label][policy.name] = report.cycles / baseline_cycles
            dram_rows[label][policy.name] = (
                report.dram_accesses / baseline_dram if baseline_dram else 0.0
            )

    print()
    print(render_series_table("Execution time (normalized to Uncached)", exec_rows))
    print(render_series_table("DRAM accesses (normalized to Uncached)", dram_rows))
    print("The recurrent weight matrices are re-read every timestep; keeping them in the")
    print("shared L2 across kernel launches is where the caching benefit comes from.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
