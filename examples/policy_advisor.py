#!/usr/bin/env python3
"""Adaptive cache-policy advisor.

The paper concludes that "smart and adaptive cache policies" are needed
because no static GPU caching policy wins across MI workloads.  This example
implements that idea at the software level: a :class:`PolicyAdvisor` looks
at a workload's profile (arithmetic intensity, load reuse, store coalescing
potential, footprint) and recommends a static policy -- and the example then
*validates* the recommendation against the simulator by measuring all three
static policies and reporting whether the advisor picked one within 5% of
the best.

Run with::

    python examples/policy_advisor.py [scale]
"""

from __future__ import annotations

import sys

from repro import (
    STATIC_POLICIES,
    PolicyAdvisor,
    PolicyComparison,
    default_config,
    get_workload,
    simulate,
)

#: a representative workload from each of the paper's three categories plus
#: the two write-coalescing layers (kept short so the example runs quickly)
VALIDATION_WORKLOADS = ("SGEMM", "FwFc", "FwSoft", "BwPool", "FwAct")


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    config = default_config()
    advisor = PolicyAdvisor()

    print("Advisor recommendations for all registered workloads:\n")
    from repro.workloads.registry import WORKLOAD_NAMES

    for name in WORKLOAD_NAMES:
        workload = get_workload(name, scale=scale)
        profile = workload.profile()
        recommended = advisor.recommend(profile)
        category = advisor.expected_category(profile)
        print(f"  {name:10s} -> {recommended.name:9s} (expected: {category.value})")

    print("\nValidating against simulation (best static policy within 5%?):\n")
    correct = 0
    for name in VALIDATION_WORKLOADS:
        workload = get_workload(name, scale=scale)
        recommended = advisor.recommend(workload.profile())
        comparison = PolicyComparison(workload=name)
        for policy in STATIC_POLICIES:
            comparison.add(simulate(get_workload(name, scale=scale), policy, config=config))
        times = comparison.exec_times()
        best = comparison.static_best()
        within = times[recommended.name] <= times[best] * 1.05
        correct += within
        verdict = "OK " if within else "MISS"
        print(f"  [{verdict}] {name:10s} advisor={recommended.name:9s} "
              f"measured best={best:9s} "
              f"(advisor policy is {times[recommended.name] / times[best]:.2f}x best)")

    print(f"\nAdvisor matched the measured best (within 5%) for {correct}/"
          f"{len(VALIDATION_WORKLOADS)} validated workloads.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
