"""System configuration for the simulated APU (paper Table 1).

The paper simulates a coherent CPU-GPU system (an APU) with a 64-CU GPU,
per-CU write-through L1 data caches, a shared 4 MB L2, and HBM2 main memory.
This module defines the configuration dataclasses used throughout the
simulator and provides two ready-made configurations:

* :func:`paper_config` -- the parameters of Table 1 (64 CUs, 4 MB L2, 16
  channels of HBM2).  Faithful to the paper but slow to simulate in Python.
* :func:`default_config` -- a proportionally scaled-down system (8 CUs,
  512 KB L2, 4 DRAM channels) used by the test suite, the examples and the
  benchmark harness.  Scaling preserves per-CU cache capacity and the
  bandwidth-per-CU ratio, so policy-relative results keep the same shape.

All latencies are expressed in GPU core cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.fingerprint import fingerprint

__all__ = [
    "CacheConfig",
    "DramConfig",
    "GpuConfig",
    "InterconnectConfig",
    "SystemConfig",
    "default_config",
    "paper_config",
    "scaled_config",
]


@dataclass(frozen=True)
class GpuConfig:
    """Compute-side parameters of the simulated GPU.

    Attributes:
        clock_ghz: GPU core clock in GHz (paper: 1.6 GHz).
        num_cus: number of compute units.
        simd_per_cu: SIMD units per CU (paper: 4).
        wavefront_size: work items per wavefront (paper: 64).
        max_waves_per_simd: maximum resident wavefronts per SIMD unit
            (paper: 10).  Together with ``simd_per_cu`` this bounds the
            latency-hiding capability of a CU.
        issue_width: instructions a CU may issue per cycle across its SIMDs.
        max_outstanding_mem_per_wave: memory instructions a single wavefront
            may have in flight before it must stall waiting for responses.
        lds_bytes: local data share capacity per CU, used by the LDS reuse
            filter (scratchpad staging captures nearby-work-item reuse even
            when caches are bypassed).
        kernel_launch_cycles: fixed host-side cost of launching one kernel;
            visible mainly in the many-kernel RNN and Composed Model
            workloads.
    """

    clock_ghz: float = 1.6
    num_cus: int = 64
    simd_per_cu: int = 4
    wavefront_size: int = 64
    max_waves_per_simd: int = 10
    issue_width: int = 1
    max_outstanding_mem_per_wave: int = 4
    lds_bytes: int = 64 * 1024
    kernel_launch_cycles: int = 300

    @property
    def max_waves_per_cu(self) -> int:
        """Maximum wavefronts resident on one CU."""
        return self.simd_per_cu * self.max_waves_per_simd

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one GPU cycle in nanoseconds."""
        return 1.0 / self.clock_ghz


@dataclass(frozen=True)
class CacheConfig:
    """Parameters of one cache level (GPU L1 or GPU L2).

    Attributes:
        size_bytes: total data capacity.
        line_bytes: cache line size (paper: 64 B).
        assoc: associativity (paper: 16-way for both levels).
        hit_latency: access latency for a hit, in GPU cycles.
        mshrs: number of miss-status holding registers.  Misses beyond this
            limit stall at the cache input (counted as cache stalls).
        ports: tag lookups accepted per cycle.
        writeback: whether dirty data may live in the cache (GPU L2 under the
            CacheRW policy); write-through caches never hold dirty lines.
    """

    size_bytes: int
    line_bytes: int = 64
    assoc: int = 16
    hit_latency: int = 50
    mshrs: int = 32
    ports: int = 1
    writeback: bool = False

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.assoc)

    def set_index(self, address: int) -> int:
        """Map a byte address to its set index."""
        return (address // self.line_bytes) % self.num_sets

    def line_address(self, address: int) -> int:
        """Align a byte address down to its cache-line address."""
        return address - (address % self.line_bytes)


@dataclass(frozen=True)
class DramConfig:
    """HBM-style main memory parameters.

    The model is an open-page, per-bank row buffer DRAM with a shared data
    bus per channel.  Timings are expressed in GPU cycles so they can be
    compared directly with cache latencies.

    Attributes:
        channels: independent channels (paper: 16).
        banks_per_channel: banks per channel (paper: 16).
        row_bytes: row-buffer (page) size per bank.
        row_hit_cycles: access latency when the target row is open.
        row_miss_cycles: latency when the bank row buffer is empty
            (activate + column access).
        row_conflict_cycles: latency when a different row is open
            (precharge + activate + column access).
        burst_cycles: data-bus occupancy per 64 B transfer; this bounds the
            per-channel bandwidth.
        queue_depth: per-bank request queue capacity.
    """

    channels: int = 16
    banks_per_channel: int = 16
    row_bytes: int = 2048
    row_hit_cycles: int = 50
    row_miss_cycles: int = 100
    row_conflict_cycles: int = 150
    burst_cycles: int = 4
    queue_depth: int = 16

    @property
    def total_banks(self) -> int:
        return self.channels * self.banks_per_channel


@dataclass(frozen=True)
class InterconnectConfig:
    """Fixed-latency, finite-bandwidth links between hierarchy levels.

    Attributes:
        l1_to_l2_cycles: one-way latency between an L1 and the shared L2.
        l2_to_dir_cycles: latency from the GPU L2 to the host directory.
        dir_to_dram_cycles: latency from the directory to the DRAM
            controllers.
        l2_banks: number of address-interleaved L2 banks; each bank accepts
            one tag lookup per cycle.
    """

    l1_to_l2_cycles: int = 25
    l2_to_dir_cycles: int = 25
    dir_to_dram_cycles: int = 10
    l2_banks: int = 16


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated-system configuration (paper Table 1).

    The default values reproduce the scaled configuration described in
    DESIGN.md.  Use :func:`paper_config` for the unscaled Table 1 values.
    """

    gpu: GpuConfig = field(default_factory=GpuConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=16 * 1024, hit_latency=50, mshrs=32)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=4 * 1024 * 1024, hit_latency=50, mshrs=128, writeback=True
        )
    )
    dram: DramConfig = field(default_factory=DramConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)

    def fingerprint(self) -> str:
        """Stable content hash of every simulated-system parameter.

        Two configurations with identical parameters produce the same
        fingerprint in any process; changing any field (even a nested one,
        e.g. an L2 MSHR count) changes it.  Used by the persistent result
        store to key cached simulation results.
        """
        return fingerprint(self)

    def describe(self) -> dict[str, str]:
        """Render the configuration as the rows of the paper's Table 1."""
        gpu, l1, l2, dram = self.gpu, self.l1, self.l2, self.dram
        uncontested_l2 = l1.hit_latency + self.interconnect.l1_to_l2_cycles + l2.hit_latency - l1.hit_latency
        uncontested_mem = (
            self.interconnect.l1_to_l2_cycles
            + self.interconnect.l2_to_dir_cycles
            + self.interconnect.dir_to_dram_cycles
            + dram.row_hit_cycles
        )
        return {
            "GPU Clock": f"{int(gpu.clock_ghz * 1000)} MHz",
            "# of CUs": str(gpu.num_cus),
            "# SIMD units per CU": str(gpu.simd_per_cu),
            "Max # Wavefronts per SIMD unit": str(gpu.max_waves_per_simd),
            "GPU L1 D-cache per CU": (
                f"{l1.size_bytes // 1024} KB, {l1.line_bytes}B line, {l1.assoc}-way write-through"
            ),
            "GPU L2 cache": (
                f"{l2.size_bytes // 1024} KB, {l2.line_bytes}B line, {l2.assoc}-way "
                "write-through (write-back for R data)"
            ),
            "Main Memory": (
                f"HBM-style, {dram.channels} channels, {dram.banks_per_channel} banks/channel"
            ),
            "Approx. uncontested L1/L2/Memory latency": (
                f"{l1.hit_latency}/{uncontested_l2}/{l1.hit_latency + uncontested_mem} cycles"
            ),
        }


def paper_config() -> SystemConfig:
    """The unscaled system of the paper's Table 1 (64 CUs, 4 MB L2, HBM2)."""
    return SystemConfig(
        gpu=GpuConfig(num_cus=64),
        l1=CacheConfig(size_bytes=16 * 1024, hit_latency=50, mshrs=32),
        l2=CacheConfig(size_bytes=4 * 1024 * 1024, hit_latency=50, mshrs=256, writeback=True),
        dram=DramConfig(channels=16, banks_per_channel=16),
        interconnect=InterconnectConfig(l2_banks=16),
    )


def scaled_config(num_cus: int) -> SystemConfig:
    """Scale the paper configuration down to ``num_cus`` compute units.

    The L2 capacity, L2 bank count and DRAM channel count scale with the CU
    count so that per-CU shared-cache capacity and bandwidth-per-CU stay
    approximately constant.  Per-CU resources (L1, SIMDs, wavefront slots)
    are unchanged.
    """
    if num_cus < 1:
        raise ValueError(f"num_cus must be positive, got {num_cus}")
    ratio = num_cus / 64.0
    l2_size = max(64 * 1024, int(4 * 1024 * 1024 * ratio))
    channels = max(2, int(math.ceil(16 * ratio)))
    l2_banks = max(2, int(math.ceil(16 * ratio)))
    base = paper_config()
    # the L2 MSHR pool is not scaled down: hardware L2s provision miss
    # tracking per bank, and shrinking it would throttle cached configurations
    # far below what the bypass path can sustain, exaggerating cache stalls
    return SystemConfig(
        gpu=replace(base.gpu, num_cus=num_cus),
        l1=base.l1,
        l2=replace(base.l2, size_bytes=l2_size, mshrs=base.l2.mshrs),
        dram=replace(base.dram, channels=channels),
        interconnect=replace(base.interconnect, l2_banks=l2_banks),
    )


def default_config() -> SystemConfig:
    """The scaled 8-CU configuration used by tests, examples and benches."""
    return scaled_config(8)
