"""Priority-queue event scheduler for the discrete-event engine.

Events are plain ``(time, sequence, callback)`` tuples kept in a binary
heap.  The sequence number breaks ties deterministically: two events
scheduled for the same cycle fire in the order they were scheduled, which
keeps the simulator fully reproducible.  Plain tuples matter for speed --
they cost one small allocation and compare element-wise in C during heap
sifts, where a dataclass event would pay a Python ``__lt__`` per
comparison.

Cancellation is deliberately kept off this fast path.  The ordinary
:meth:`EventQueue.schedule` / :meth:`EventQueue.schedule_at` calls are
fire-and-forget (they return ``None``); the rare caller that needs to
revoke an event uses :meth:`EventQueue.schedule_cancellable`, which
returns an :class:`Event` handle.  A cancelled event's sequence number
goes into a side set that the pop loop consults only when non-empty, so
simulations that never cancel (all of them, today) pay a single truth
test per event.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


class Event:
    """Handle for a cancellable scheduled callback.

    Only :meth:`EventQueue.schedule_cancellable` returns these; ordinary
    scheduling does not allocate a handle.
    """

    __slots__ = ("time", "seq", "cancelled", "_queue")

    def __init__(self, queue: "EventQueue", time: int, seq: int) -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Cancelling an event that can no longer be in the heap (its time is
        already in the past) is a no-op rather than a stale side-set entry.
        """
        if not self.cancelled:
            self.cancelled = True
            if self.time >= self._queue._now:
                self._queue._cancelled.add(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(time={self.time}, seq={self.seq}, {state})"


class EventQueue:
    """A deterministic discrete-event queue.

    The queue tracks the current simulation time (in cycles).  Components
    schedule work with :meth:`schedule` (relative delay) or
    :meth:`schedule_at` (absolute time); the simulator driver repeatedly pops
    the earliest event and invokes its callback.
    """

    __slots__ = ("_heap", "_seq", "_now", "_executed", "_cancelled")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[], Any]]] = []
        self._seq = 0
        self._now = 0
        self._executed = 0
        #: sequence numbers of cancelled-but-not-yet-popped events
        self._cancelled: set[int] = set()

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def schedule(self, delay: int | float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        Delays are rounded up to whole cycles; negative delays are an error.
        Integer delays (the overwhelmingly common case) skip the rounding
        entirely.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        time = self._now + (delay if delay.__class__ is int else int(round(delay)))
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, callback))

    def schedule_at(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``time``."""
        if time.__class__ is not int:
            time = int(time)
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time}, current time is {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, callback))

    def schedule_cancellable(
        self, delay: int | float, callback: Callable[[], Any]
    ) -> Event:
        """Like :meth:`schedule`, but return a handle that can cancel.

        Cancellable events ride the same heap as ordinary ones; only the
        handle allocation and the cancelled-sequence bookkeeping are extra.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        time = self._now + (delay if delay.__class__ is int else int(round(delay)))
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, callback))
        return Event(self, time, seq)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            time, seq, callback = heappop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time
            self._executed += 1
            callback()
            return True
        if cancelled:
            # empty heap: any remaining cancelled seqs are fired-or-popped
            cancelled.clear()
        return False

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the queue.

        Args:
            until: stop once simulation time passes this cycle (events at
                later times remain queued).
            max_events: safety bound on the number of events to execute.

        Returns:
            The simulation time when the run stopped.
        """
        # Hot loop: locals for everything touched per event, one heap pop
        # per event (no separate peek traversal), and a single truth test
        # for the (empty, in practice) cancelled set.  The executed count
        # is committed per event (not batched on exit) so callbacks that
        # read ``self.executed`` mid-run -- the fast-forward sampler's
        # per-kernel measurements -- observe a live value.
        heap = self._heap
        pop = heappop
        cancelled = self._cancelled
        executed = 0
        while heap:
            if max_events is not None and executed >= max_events:
                break
            if until is not None and heap[0][0] > until:
                self._now = until
                break
            time, seq, callback = pop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time
            executed += 1
            self._executed += 1
            callback()
        if not heap and cancelled:
            # drained: no pending entry can match, drop any stale seqs
            cancelled.clear()
        return self._now

    def run_profiled(
        self,
        profiler: Any,
        until: int | None = None,
        max_events: int | None = None,
    ) -> int:
        """Drain the queue like :meth:`run`, timing every callback.

        A separate instrumented copy of the :meth:`run` loop -- same pop
        order, same ``until`` semantics, same executed accounting, so the
        simulated results are bit-identical -- that wraps each callback in
        a ``perf_counter`` pair and reports it to ``profiler`` (a
        :class:`repro.telemetry.profiler.SimProfiler`).  Kept apart so the
        production loop pays nothing when profiling is off.
        """
        from time import perf_counter

        heap = self._heap
        pop = heappop
        cancelled = self._cancelled
        record = profiler.record
        executed = 0
        wall_start = perf_counter()
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                if until is not None and heap[0][0] > until:
                    self._now = until
                    break
                time, seq, callback = pop(heap)
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                self._now = time
                executed += 1
                self._executed += 1
                started = perf_counter()
                callback()
                record(callback, perf_counter() - started)
            if not heap and cancelled:
                cancelled.clear()
        finally:
            profiler.add_wall(perf_counter() - wall_start)
        return self._now
