"""Priority-queue event scheduler for the discrete-event engine.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.
The sequence number breaks ties deterministically: two events scheduled for
the same cycle fire in the order they were scheduled, which keeps the
simulator fully reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so they sort correctly inside the heap.
    The callback and its argument do not participate in ordering.
    """

    time: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic discrete-event queue.

    The queue tracks the current simulation time (in cycles).  Components
    schedule work with :meth:`schedule` (relative delay) or
    :meth:`schedule_at` (absolute time); the simulator driver repeatedly pops
    the earliest event and invokes its callback.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0
        self._executed = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def schedule(self, delay: int | float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        Delays are rounded up to whole cycles; negative delays are an error.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + int(round(delay)), callback)

    def schedule_at(self, time: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run at absolute cycle ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time}, current time is {self._now}"
            )
        event = Event(time=int(time), seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            event.callback()
            return True
        return False

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the queue.

        Args:
            until: stop once simulation time passes this cycle (events at
                later times remain queued).
            max_events: safety bound on the number of events to execute.

        Returns:
            The simulation time when the run stopped.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            nxt = self._peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self._now = until
                break
            if self.step():
                executed += 1
        return self._now

    def _peek_time(self) -> int | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
