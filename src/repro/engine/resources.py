"""Contention primitives used by the timing models.

Two abstractions cover every contended structure in the simulator:

* :class:`ThroughputResource` -- a pipe that accepts one grant every
  ``cycles_per_grant`` cycles (cache tag ports, SIMD issue slots, DRAM data
  buses).  Callers ask for the earliest grant time at-or-after their arrival
  and the resource books it, so no per-cycle polling is needed.
* :class:`WaitQueue` -- an explicit waiter list used for blocking conditions
  such as "all ways in this set are busy" or "no MSHR free".  Waiters are
  woken in FIFO order when the owner signals that capacity became available.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

__all__ = ["ThroughputResource", "WaitQueue"]


class ThroughputResource:
    """A resource that can accept one grant every ``cycles_per_grant`` cycles.

    The resource keeps a cursor of the next free cycle.  A request arriving
    at time ``t`` is granted at ``max(t, cursor)`` and the cursor advances.
    The total wait accumulated across all grants is tracked so callers can
    attribute contention (e.g. cache tag-port stalls).
    """

    __slots__ = ("name", "cycles_per_grant", "_next_free", "grants", "total_wait_cycles")

    def __init__(self, name: str, cycles_per_grant: float = 1.0) -> None:
        if cycles_per_grant <= 0:
            raise ValueError("cycles_per_grant must be positive")
        self.name = name
        self.cycles_per_grant = cycles_per_grant
        self._next_free = 0.0
        self.grants = 0
        self.total_wait_cycles = 0

    def grant(self, now: int) -> int:
        """Book the next available slot at or after ``now``.

        Returns the cycle at which the grant occurs.  The uncontended case
        (``now`` at or past the cursor) takes the branch with no float
        conversions; both branches book exactly the same cursor value the
        previous ``max(float(now), ...)`` formulation did.
        """
        next_free = self._next_free
        self.grants += 1
        if now >= next_free:
            self._next_free = now + self.cycles_per_grant
            return now
        self._next_free = next_free + self.cycles_per_grant
        start = int(next_free)
        wait = start - now
        if wait > 0:
            self.total_wait_cycles += wait
        return start

    def grant_duration(self, now: int, duration: float) -> int:
        """Book the resource exclusively for ``duration`` cycles.

        Used for variable-length occupancies such as a SIMD executing a batch
        of vector operations.  Returns the cycle at which the occupancy ends.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(float(now), self._next_free)
        self._next_free = start + duration
        wait = int(start) - now
        self.grants += 1
        self.total_wait_cycles += max(0, wait)
        return int(round(start + duration))

    def peek(self, now: int) -> int:
        """Return when a grant would occur without booking it."""
        return int(max(float(now), self._next_free))

    @property
    def busy_until(self) -> int:
        """Cycle after which the resource is idle."""
        return int(self._next_free)


class WaitQueue:
    """FIFO list of blocked continuations.

    Used for structural hazards that cannot be expressed as a fixed
    throughput: blocked cache allocation (busy set), exhausted MSHRs, full
    DRAM bank queues.  The owner calls :meth:`wake_one` / :meth:`wake_all`
    when capacity frees up; each waiter callback receives the wake-up time.
    """

    __slots__ = ("name", "_waiters", "total_enqueued")

    def __init__(self, name: str) -> None:
        self.name = name
        self._waiters: deque[tuple[int, Callable[[int], None]]] = deque()
        self.total_enqueued = 0

    def __len__(self) -> int:
        return len(self._waiters)

    def __bool__(self) -> bool:
        return bool(self._waiters)

    def wait(self, now: int, resume: Callable[[int], None]) -> None:
        """Register ``resume`` to be called when capacity becomes available."""
        self._waiters.append((now, resume))
        self.total_enqueued += 1

    def wake_one(self, now: int) -> bool:
        """Wake the oldest waiter.  Returns True if one was woken."""
        if not self._waiters:
            return False
        _, resume = self._waiters.popleft()
        resume(now)
        return True

    def wake_all(self, now: int) -> int:
        """Wake every waiter in FIFO order.  Returns the number woken."""
        count = 0
        while self.wake_one(now):
            count += 1
        return count
