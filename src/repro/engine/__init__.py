"""Discrete-event simulation engine.

The engine is deliberately small: a priority-queue event scheduler
(:class:`~repro.engine.event_queue.EventQueue`), a thin simulator driver
(:class:`~repro.engine.simulator.Simulator`) and a couple of resource
primitives (:class:`~repro.engine.resources.ThroughputResource`,
:class:`~repro.engine.resources.WaitQueue`) used to model contended
structures such as cache ports, SIMD issue slots and DRAM data buses
without per-cycle polling.
"""

from repro.engine.event_queue import Event, EventQueue
from repro.engine.resources import ThroughputResource, WaitQueue
from repro.engine.simulator import Simulator

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "ThroughputResource",
    "WaitQueue",
]
