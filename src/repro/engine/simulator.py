"""Top-level simulation driver.

:class:`Simulator` owns the event queue and gives components a single point
to schedule events, query the current time and register end-of-simulation
hooks.  The memory hierarchy, the GPU model and the workload driver all hold
a reference to the same ``Simulator``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.event_queue import EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event simulator driver.

    A thin facade over :class:`~repro.engine.event_queue.EventQueue` that
    also carries a deadlock guard (``max_events``) so a mis-wired model
    fails loudly instead of spinning forever.  The budget is an *aggregate*
    across the simulator's lifetime: repeated :meth:`run` calls on one
    simulator share it, so a caller stepping a simulation in slices cannot
    execute more than ``max_events`` events in total.
    """

    #: default safety bound on executed events for a single simulator
    DEFAULT_MAX_EVENTS = 50_000_000

    def __init__(self, max_events: int | None = None) -> None:
        self.queue = EventQueue()
        self.max_events = max_events or self.DEFAULT_MAX_EVENTS
        self._finish_hooks: list[Callable[[int], None]] = []
        #: optional :class:`repro.telemetry.profiler.SimProfiler`; when set,
        #: :meth:`run` uses the instrumented event loop
        self.profiler: Any = None

    @property
    def now(self) -> int:
        """Current simulation time in GPU cycles."""
        return self.queue.now

    def schedule(self, delay: int | float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.queue.schedule(delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` at an absolute cycle."""
        self.queue.schedule_at(time, callback)

    def on_finish(self, hook: Callable[[int], None]) -> None:
        """Register a hook invoked with the final time when :meth:`run` ends."""
        self._finish_hooks.append(hook)

    def run(self, until: int | None = None) -> int:
        """Run until the event queue drains (or ``until`` is reached).

        Returns the final simulation time.  Raises ``RuntimeError`` if the
        aggregate event budget is exhausted with work still pending, which
        almost always indicates a livelock in a timing model.
        """
        remaining = self.max_events - self.queue.executed
        if self.profiler is not None:
            final = self.queue.run_profiled(
                self.profiler, until=until, max_events=max(0, remaining)
            )
        else:
            final = self.queue.run(until=until, max_events=max(0, remaining))
        if self.queue.pending and self.queue.executed >= self.max_events:
            raise RuntimeError(
                f"simulation exceeded the event budget of {self.max_events} events; "
                "a component is probably rescheduling itself without making progress"
            )
        for hook in self._finish_hooks:
            hook(final)
        return final
