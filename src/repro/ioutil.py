"""Atomic, durable JSON writes shared by the store, checkpoints and CLI.

Every artifact this repository persists -- result-store blobs, sweep
checkpoints, CLI figure JSON, telemetry traces -- must survive two failure
modes: a reader racing the writer (it must never observe a torn file) and
a crash or power cut mid-write (an existing good file must never be
replaced by a truncated one).  :func:`atomic_write_json` is the one
implementation of the temp-file + ``flush`` + ``fsync`` + ``os.replace``
dance, extracted from :meth:`repro.experiments.store.ResultStore.save` so
the CLI artifacts and the telemetry outputs get exactly the same
guarantees.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["append_jsonl", "atomic_write_json", "read_jsonl"]


def atomic_write_json(
    path: str | os.PathLike[str],
    payload: object,
    indent: Optional[int] = 1,
    sort_keys: bool = True,
    trailing_newline: bool = True,
    tmp_prefix: Optional[str] = None,
) -> None:
    """Serialize ``payload`` to ``path`` atomically and durably.

    The JSON is written to a temp file in the *same directory* (so the
    final ``os.replace`` is a same-filesystem rename, which POSIX makes
    atomic), fsynced before the rename (so a power cut cannot replace a
    good file with an empty one), and the temp file is unlinked on any
    failure so interrupted writes leave no debris behind a glob.

    Args:
        path: destination file; parent directories are created.
        indent / sort_keys / trailing_newline: serialization knobs -- the
            defaults match the CLI's human-auditable artifacts, the store
            passes ``indent=None, trailing_newline=False`` for compact
            blobs.
        tmp_prefix: temp-file name prefix; callers with orphan-cleanup
            globs (the result store's ``.tmp-*``) pass their own.
    """
    target = Path(path)
    if target.parent != Path():
        target.parent.mkdir(parents=True, exist_ok=True)
    prefix = tmp_prefix if tmp_prefix is not None else f".{target.name}."
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=prefix, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
            if trailing_newline:
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def append_jsonl(path: str | os.PathLike[str], record: object, fsync: bool = True) -> None:
    """Append one compact JSON line to ``path`` durably.

    The append-only counterpart of :func:`atomic_write_json` for growing
    logs (the run ledger, the bench history): the whole record is
    serialized first and written in a single ``write`` on an ``O_APPEND``
    handle, so concurrent appenders interleave whole lines, and the handle
    is flushed + fsynced before close so a power cut cannot lose an
    acknowledged entry.  Readers tolerate a torn trailing line (see
    :func:`read_jsonl`), so even a crash mid-``write`` only costs the
    entry being written.

    Args:
        path: destination file; parent directories are created.
        record: JSON-serializable payload for one line.
        fsync: durability barrier after the write (disable only for logs
            where losing the tail on power cut is acceptable).
    """
    target = Path(path)
    if target.parent != Path():
        target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())


def read_jsonl(path: str | os.PathLike[str]) -> list[dict]:
    """Parse a JSONL file tolerantly: each well-formed object line becomes
    a dict, torn/corrupt lines and non-object lines are skipped.

    A missing file reads as empty -- callers treat JSONL logs as
    append-only registries where absence simply means "nothing recorded
    yet".
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return []
    records: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            blob = json.loads(line)
        except ValueError:
            continue  # torn tail from a crashed writer: skip, keep reading
        if isinstance(blob, dict):
            records.append(blob)
    return records
