"""Allocation bypass (paper section VII.A).

When caching is enabled, a miss must allocate a line: if every way of the
target set holds a pending fill (or every MSHR is busy) the request blocks,
and the paper shows these *cache stalls* both limit bandwidth and disrupt
DRAM row locality.  The allocation-bypass optimization converts the request
into a bypass request instead of blocking, trading a lost caching
opportunity for forward progress.

The mechanism itself lives inside :class:`repro.memory.cache.Cache` (the
``allocation_bypass`` flag); this module provides the small configuration
object used to describe and ablate it, including an optional *retry budget*:
hardware designs sometimes retry allocation a few times before giving up, so
the ablation benchmarks can explore that spectrum between fully blocking
(budget = infinite) and immediately bypassing (budget = 0, the paper's
design).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AllocationBypassSpec"]


@dataclass(frozen=True)
class AllocationBypassSpec:
    """Configuration of the allocation-bypass mechanism.

    Attributes:
        enabled: master switch (False reproduces blocking allocation).
        apply_to_loads: convert blocked load allocations into bypasses.
        apply_to_stores: convert blocked store (write-combine) allocations
            into write-through bypasses.
        retry_budget: number of wake-and-retry attempts before converting;
            0 means convert immediately (the design evaluated in the paper).
    """

    enabled: bool = True
    apply_to_loads: bool = True
    apply_to_stores: bool = True
    retry_budget: int = 0

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")

    @classmethod
    def disabled(cls) -> "AllocationBypassSpec":
        """Blocking allocation, as in the static CacheR/CacheRW policies."""
        return cls(enabled=False, apply_to_loads=False, apply_to_stores=False)

    @classmethod
    def paper_default(cls) -> "AllocationBypassSpec":
        """The configuration evaluated as CacheRW-AB."""
        return cls(enabled=True, apply_to_loads=True, apply_to_stores=True, retry_budget=0)
