"""GPU caching policy definitions (paper sections III and VII).

A :class:`PolicySpec` captures what the GPU does with loads and stores at
each cache level plus which of the three optimizations are enabled.  The
three static policies the paper characterizes are:

========== ===================== =====================================
Policy     Loads                 Stores
========== ===================== =====================================
Uncached   bypass L1 and L2      bypass L1 and L2
CacheR     cached in L1 and L2   bypass L1 and L2
CacheRW    cached in L1 and L2   bypass L1, write-combined in the L2
========== ===================== =====================================

The optimized variants stack cumulatively on CacheRW, exactly as in the
paper's section VII: ``CacheRW-AB`` adds allocation bypass, ``CacheRW-CR``
adds DBI-based cache rinsing on top of AB, and ``CacheRW-PCby`` adds
PC-based L2 bypassing on top of both.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fingerprint import fingerprint

__all__ = [
    "PolicySpec",
    "UNCACHED",
    "CACHE_R",
    "CACHE_RW",
    "CACHE_RW_AB",
    "CACHE_RW_CR",
    "CACHE_RW_PCBY",
    "STATIC_POLICIES",
    "OPTIMIZED_POLICIES",
    "ALL_POLICIES",
    "policy_by_name",
]


@dataclass(frozen=True)
class PolicySpec:
    """One GPU caching configuration.

    Attributes:
        name: display name used in reports and figures.
        cache_loads_l1: loads may allocate in the per-CU L1s.
        cache_loads_l2: loads may allocate in the shared GPU L2.
        cache_stores_l2: stores are write-combined in the GPU L2 (dirty data
            is flushed at system-scope synchronization points); otherwise
            stores are written through to memory.
        allocation_bypass: convert requests to bypasses instead of blocking
            when cache allocation would stall (section VII.A).
        cache_rinsing: attach a dirty-block index to the L2 and rinse whole
            DRAM rows on dirty evictions (section VII.B).
        pc_bypass: attach a PC-based reuse predictor to the L2 and bypass
            requests predicted not to be reused (section VII.C).
    """

    name: str
    cache_loads_l1: bool
    cache_loads_l2: bool
    cache_stores_l2: bool
    allocation_bypass: bool = False
    cache_rinsing: bool = False
    pc_bypass: bool = False

    @property
    def caches_loads(self) -> bool:
        """True when loads are cached anywhere on the GPU."""
        return self.cache_loads_l1 or self.cache_loads_l2

    @property
    def caches_stores(self) -> bool:
        """True when stores are coalesced in the GPU L2."""
        return self.cache_stores_l2

    def fingerprint(self) -> str:
        """Stable content hash of the policy, including its display name.

        The name is part of the key on purpose: cached
        :class:`~repro.stats.report.RunReport` blobs carry the policy name,
        so a renamed-but-identical policy must not be served a report
        labelled with the old name.
        """
        return fingerprint(self)

    @property
    def is_static(self) -> bool:
        """True for the three static policies of section III."""
        return not (self.allocation_bypass or self.cache_rinsing or self.pc_bypass)

    def with_optimizations(
        self,
        allocation_bypass: bool | None = None,
        cache_rinsing: bool | None = None,
        pc_bypass: bool | None = None,
        name: str | None = None,
    ) -> "PolicySpec":
        """Derive a new policy with the given optimization toggles."""
        updated = replace(
            self,
            allocation_bypass=(
                self.allocation_bypass if allocation_bypass is None else allocation_bypass
            ),
            cache_rinsing=self.cache_rinsing if cache_rinsing is None else cache_rinsing,
            pc_bypass=self.pc_bypass if pc_bypass is None else pc_bypass,
        )
        if name is not None:
            updated = replace(updated, name=name)
        return updated


UNCACHED = PolicySpec(
    name="Uncached",
    cache_loads_l1=False,
    cache_loads_l2=False,
    cache_stores_l2=False,
)

CACHE_R = PolicySpec(
    name="CacheR",
    cache_loads_l1=True,
    cache_loads_l2=True,
    cache_stores_l2=False,
)

CACHE_RW = PolicySpec(
    name="CacheRW",
    cache_loads_l1=True,
    cache_loads_l2=True,
    cache_stores_l2=True,
)

CACHE_RW_AB = CACHE_RW.with_optimizations(allocation_bypass=True, name="CacheRW-AB")
CACHE_RW_CR = CACHE_RW_AB.with_optimizations(cache_rinsing=True, name="CacheRW-CR")
CACHE_RW_PCBY = CACHE_RW_CR.with_optimizations(pc_bypass=True, name="CacheRW-PCby")

#: the three static policies characterized in section VI
STATIC_POLICIES: tuple[PolicySpec, ...] = (UNCACHED, CACHE_R, CACHE_RW)

#: the cumulative optimization stack evaluated in section VII
OPTIMIZED_POLICIES: tuple[PolicySpec, ...] = (CACHE_RW_AB, CACHE_RW_CR, CACHE_RW_PCBY)

ALL_POLICIES: tuple[PolicySpec, ...] = STATIC_POLICIES + OPTIMIZED_POLICIES


def policy_by_name(name: str) -> PolicySpec:
    """Look up a policy by its display name (case-insensitive)."""
    lowered = name.lower()
    for policy in ALL_POLICIES:
        if policy.name.lower() == lowered:
            return policy
    known = ", ".join(p.name for p in ALL_POLICIES)
    raise KeyError(f"unknown policy {name!r}; known policies: {known}")
