"""Static-best / static-worst selection and an adaptive policy advisor.

Figures 10-13 of the paper compare the optimization stack against the *best*
and *worst* static policy for each workload (as measured in Figure 6).  The
helpers here perform that selection from a set of run reports.

:class:`PolicyAdvisor` additionally implements the forward-looking idea from
the paper's conclusion -- "smart and adaptive cache policies" -- as a simple
software advisor: given a workload's measured characteristics (arithmetic
intensity, reuse potential, write coalescing potential) it recommends a
static policy.  The advisor is used by one of the example applications and
validated against the simulator's own static-best selection in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.classification import WorkloadCategory
from repro.core.policies import CACHE_R, CACHE_RW, UNCACHED, PolicySpec

__all__ = ["static_best_policy", "static_worst_policy", "PolicyAdvisor", "WorkloadProfile"]


def static_best_policy(exec_time_by_policy: Mapping[str, float]) -> str:
    """Name of the static policy with the lowest execution time."""
    if not exec_time_by_policy:
        raise ValueError("no results to select from")
    return min(exec_time_by_policy.items(), key=lambda kv: kv[1])[0]


def static_worst_policy(exec_time_by_policy: Mapping[str, float]) -> str:
    """Name of the static policy with the highest execution time."""
    if not exec_time_by_policy:
        raise ValueError("no results to select from")
    return max(exec_time_by_policy.items(), key=lambda kv: kv[1])[0]


@dataclass(frozen=True)
class WorkloadProfile:
    """Characteristics an advisor can observe before choosing a policy.

    Attributes:
        arithmetic_intensity: vector operations per byte of memory traffic.
        load_reuse_fraction: fraction of loads expected to hit if cached
            (distinct-line reuse, i.e. reuse *not* already captured by the
            wavefront coalescer or the LDS).
        store_coalescing_fraction: fraction of stores that would merge with
            another store to the same line inside one synchronization epoch.
        footprint_bytes: total bytes touched between synchronization points.
    """

    arithmetic_intensity: float
    load_reuse_fraction: float
    store_coalescing_fraction: float
    footprint_bytes: int

    def __post_init__(self) -> None:
        if not (0.0 <= self.load_reuse_fraction <= 1.0):
            raise ValueError("load_reuse_fraction must be in [0, 1]")
        if not (0.0 <= self.store_coalescing_fraction <= 1.0):
            raise ValueError("store_coalescing_fraction must be in [0, 1]")
        if self.footprint_bytes < 0:
            raise ValueError("footprint_bytes must be non-negative")


class PolicyAdvisor:
    """Recommends a static policy from a :class:`WorkloadProfile`.

    The decision mirrors the paper's findings: compute-bound kernels are
    insensitive (any policy is fine, prefer the simplest), kernels with
    negligible distinct-line reuse should bypass to avoid caching overheads,
    kernels with load reuse should enable read caching, and kernels that
    additionally coalesce stores should enable write caching.
    """

    def __init__(
        self,
        compute_bound_intensity: float = 8.0,
        reuse_threshold: float = 0.15,
        store_coalesce_threshold: float = 0.20,
    ) -> None:
        self.compute_bound_intensity = compute_bound_intensity
        self.reuse_threshold = reuse_threshold
        self.store_coalesce_threshold = store_coalesce_threshold

    def recommend(self, profile: WorkloadProfile) -> PolicySpec:
        """Pick a static policy for ``profile``."""
        if profile.arithmetic_intensity >= self.compute_bound_intensity:
            # compute bound: caching neither helps nor hurts; read caching is
            # the conventional default and never loses for these kernels
            return CACHE_R
        if profile.load_reuse_fraction < self.reuse_threshold:
            return UNCACHED
        if profile.store_coalescing_fraction >= self.store_coalesce_threshold:
            return CACHE_RW
        return CACHE_R

    def expected_category(self, profile: WorkloadProfile) -> WorkloadCategory:
        """Category the advisor expects the workload to fall into."""
        if profile.arithmetic_intensity >= self.compute_bound_intensity:
            return WorkloadCategory.MEMORY_INSENSITIVE
        if profile.load_reuse_fraction < self.reuse_threshold:
            return WorkloadCategory.THROUGHPUT_SENSITIVE
        return WorkloadCategory.REUSE_SENSITIVE
