"""Per-request caching decisions.

The :class:`PolicyEngine` is the glue between a static
:class:`~repro.core.policies.PolicySpec` and the memory hierarchy: it stamps
each request with its bypass flags before the request enters the L1, and it
owns the optimization components (the PC-based reuse predictor and the
dirty-block index) that the L2 consults.

Separating the decision logic from the cache timing model keeps the cache
reusable (the same class models L1 and L2) and makes the policy matrix easy
to test in isolation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.dirty_block_index import DirtyBlockIndex
from repro.core.policies import PolicySpec
from repro.core.reuse_predictor import PredictorConfig, ReusePredictor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.request import MemoryRequest

__all__ = ["PolicyEngine"]


class PolicyEngine:
    """Applies a :class:`PolicySpec` to individual memory requests.

    Args:
        policy: the caching policy to enforce.
        row_of: line-address -> DRAM-row mapping, required when the policy
            enables cache rinsing.
        predictor_config: optional override of the reuse-predictor geometry
            (used by the ablation benchmarks).
        dbi_max_rows: optional capacity bound for the dirty-block index.
    """

    def __init__(
        self,
        policy: PolicySpec,
        row_of: Optional[Callable[[int], int]] = None,
        predictor_config: Optional[PredictorConfig] = None,
        dbi_max_rows: Optional[int] = None,
    ) -> None:
        self.policy = policy
        self.reuse_predictor: Optional[ReusePredictor] = None
        self.dirty_block_index: Optional[DirtyBlockIndex] = None
        if policy.pc_bypass:
            self.reuse_predictor = ReusePredictor(predictor_config)
        if policy.cache_rinsing:
            if row_of is None:
                raise ValueError(
                    f"policy {policy.name} enables cache rinsing, which requires a "
                    "DRAM row mapping (row_of)"
                )
            self.dirty_block_index = DirtyBlockIndex(row_of, max_rows=dbi_max_rows)

    # ------------------------------------------------------------------
    @staticmethod
    def stamp(request: "MemoryRequest", spec: PolicySpec) -> "MemoryRequest":
        """Stamp ``request`` with the bypass flags implied by ``spec``.

        Stores always bypass the L1 (true for every policy in the paper);
        whether they bypass the L2 depends on ``cache_stores_l2``.  Loads
        bypass a level exactly when that level does not cache loads.  The
        PC-based prediction is *not* applied here -- it is consulted by the
        L2 itself so that sampler sets can override it.  Shared by the
        static and the dynamic (per-set) engines, so the flag rules can
        never diverge between them.
        """
        if request.is_load:
            request.bypass_l1 = not spec.cache_loads_l1
            request.bypass_l2 = not spec.cache_loads_l2
        else:
            request.bypass_l1 = True
            request.bypass_l2 = not spec.cache_stores_l2
        return request

    def annotate(self, request: "MemoryRequest") -> "MemoryRequest":
        """Stamp ``request`` with the bypass flags implied by the policy."""
        return self.stamp(request, self.policy)

    # ------------------------------------------------------------------
    @property
    def allocation_bypass(self) -> bool:
        """Whether caches should convert blocked allocations into bypasses."""
        return self.policy.allocation_bypass

    def describe(self) -> dict[str, object]:
        """Summary of the active policy and optimization components."""
        return {
            "policy": self.policy.name,
            "cache_loads_l1": self.policy.cache_loads_l1,
            "cache_loads_l2": self.policy.cache_loads_l2,
            "cache_stores_l2": self.policy.cache_stores_l2,
            "allocation_bypass": self.policy.allocation_bypass,
            "cache_rinsing": self.policy.cache_rinsing,
            "pc_bypass": self.policy.pc_bypass,
            "predictor_bypass_fraction": (
                self.reuse_predictor.bypass_fraction() if self.reuse_predictor else None
            ),
            "dbi_tracked_rows": (
                len(self.dirty_block_index) if self.dirty_block_index else None
            ),
        }
