"""Dirty-Block Index for row-locality-aware cache rinsing (section VII.B).

The paper applies the Dirty-Block Index of Seshadri et al. (ISCA 2014) to
the GPU L2: a small structure, organized by DRAM row, that records which
cache lines of each row are dirty.  Whenever a dirty block is evicted, the
cache *rinses* the row -- it writes back every other dirty block belonging
to the same DRAM row at the same time -- so the resulting write burst enjoys
consecutive row hits at the memory controller instead of scattering row
conflicts across the execution.

This module implements the index itself; the rinse action is driven by
:class:`repro.memory.cache.Cache` when a dirty eviction occurs, and by
``flush_dirty`` which walks rows in order when a DBI is attached.

The hardware structure has finite capacity (a limited number of row entries)
-- when it overflows, the oldest row is *proactively rinsed* (written back)
to make room, mirroring the DBI's "dirty-block eviction" behaviour.  The
capacity is configurable so the ablation benchmarks can study its effect.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, Optional

__all__ = ["DirtyBlockIndex"]


class DirtyBlockIndex:
    """Tracks dirty cache lines grouped by DRAM row.

    Args:
        row_of: maps a line address to a globally unique DRAM row id.
        max_rows: maximum number of rows tracked simultaneously; ``None``
            means unbounded (an idealized DBI).  When bounded, inserting a
            new row beyond capacity reports the least-recently-touched row
            through ``on_overflow`` so the owner can rinse it.
        on_overflow: optional callback invoked with the evicted row's list of
            dirty line addresses when capacity is exceeded.
    """

    def __init__(
        self,
        row_of: Callable[[int], int],
        max_rows: Optional[int] = None,
        on_overflow: Optional[Callable[[list[int]], None]] = None,
    ) -> None:
        if max_rows is not None and max_rows <= 0:
            raise ValueError("max_rows must be positive or None")
        self._row_of = row_of
        self.max_rows = max_rows
        self.on_overflow = on_overflow
        self._rows: "OrderedDict[int, set[int]]" = OrderedDict()
        self.marks = 0
        self.clears = 0
        self.overflows = 0

    # ------------------------------------------------------------------
    def row_of(self, line_address: int) -> int:
        """DRAM row id of ``line_address`` (delegates to the mapping)."""
        return self._row_of(line_address)

    def mark_dirty(self, line_address: int) -> None:
        """Record that ``line_address`` now holds dirty data."""
        row = self._row_of(line_address)
        entry = self._rows.get(row)
        if entry is None:
            if self.max_rows is not None and len(self._rows) >= self.max_rows:
                self._overflow()
            entry = set()
            self._rows[row] = entry
        else:
            self._rows.move_to_end(row)
        entry.add(line_address)
        self.marks += 1

    def clear(self, line_address: int) -> None:
        """Record that ``line_address`` is no longer dirty (idempotent)."""
        row = self._row_of(line_address)
        entry = self._rows.get(row)
        if entry is None:
            return
        entry.discard(line_address)
        self.clears += 1
        if not entry:
            del self._rows[row]

    def is_dirty(self, line_address: int) -> bool:
        """Whether ``line_address`` is currently tracked as dirty."""
        entry = self._rows.get(self._row_of(line_address))
        return bool(entry) and line_address in entry

    def dirty_lines_in_row(self, row: int) -> list[int]:
        """All dirty line addresses recorded for DRAM row ``row``."""
        return sorted(self._rows.get(row, ()))

    def rows(self) -> Iterable[int]:
        """Row ids currently holding at least one dirty line."""
        return list(self._rows.keys())

    def dirty_count(self) -> int:
        """Total dirty lines tracked."""
        return sum(len(lines) for lines in self._rows.values())

    def rows_by_dirtiness(self) -> list[tuple[int, int]]:
        """Rows sorted by how many dirty lines they hold (descending)."""
        return sorted(
            ((row, len(lines)) for row, lines in self._rows.items()),
            key=lambda pair: pair[1],
            reverse=True,
        )

    # ------------------------------------------------------------------
    def _overflow(self) -> None:
        """Evict the least-recently-touched row to make room."""
        row, lines = self._rows.popitem(last=False)
        self.overflows += 1
        if self.on_overflow is not None:
            self.on_overflow(sorted(lines))

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirtyBlockIndex(rows={len(self._rows)}, dirty_lines={self.dirty_count()})"
