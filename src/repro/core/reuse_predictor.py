"""PC-based reuse predictor for adaptive L2 bypassing (section VII.C).

The paper applies the PC-based bypass predictor of Tian et al. ("Adaptive
GPU cache bypassing", GPGPU-8) to the GPU L2 for both loads and stores: the
static instruction (PC) that issues a memory access is a strong predictor of
whether the accessed line will be reused before eviction.  A table of
saturating counters indexed by a hash of the PC is trained by cache
outcomes:

* when a line inserted by PC *p* is hit again before eviction, the counter
  for *p* is increased (reuse observed);
* when a line inserted by PC *p* is evicted untouched, the counter is
  decreased (dead insertion).

A request whose PC counter sits below the bypass threshold skips L2
allocation entirely, avoiding allocation stalls, pollution and row-locality
disruption for streaming instructions while preserving caching for
instructions that do see reuse.  A small number of *sampler sets* in the
cache ignore the prediction so the table keeps learning even after it has
converged to "bypass everything" (otherwise a phase change could never be
detected).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fingerprint import fingerprint

__all__ = ["ReusePredictor", "PredictorConfig"]


@dataclass(frozen=True)
class PredictorConfig:
    """Geometry and thresholds of the PC-based reuse predictor.

    Attributes:
        table_entries: number of saturating counters (power of two).
        counter_bits: width of each counter.
        bypass_threshold: counter values strictly below this predict
            "no reuse" and cause the request to bypass.
        initial_value: starting counter value; defaults to one below the
            threshold, so unknown PCs bypass the L2 until the sampler sets
            observe reuse for them.  Starting in bypass mode keeps the
            training transient short for streaming kernels whose evictions
            (the "dead" training signal) only begin once the cache fills,
            while reuse-heavy PCs are promoted within a few hundred sampled
            accesses.  Set it to ``bypass_threshold`` to get the
            cache-until-proven-dead variant instead.
        reuse_increment: amount added on an observed reuse.
        eviction_decrement: amount subtracted when a line dies untouched.
    """

    table_entries: int = 1024
    counter_bits: int = 3
    bypass_threshold: int = 2
    initial_value: int | None = None
    reuse_increment: int = 1
    eviction_decrement: int = 1

    def __post_init__(self) -> None:
        if self.table_entries <= 0 or self.table_entries & (self.table_entries - 1):
            raise ValueError("table_entries must be a positive power of two")
        if self.counter_bits <= 0:
            raise ValueError("counter_bits must be positive")
        if not (0 <= self.bypass_threshold <= self.max_value):
            raise ValueError("bypass_threshold must fit in the counter range")

    def fingerprint(self) -> str:
        """Stable content hash of the predictor geometry (for result keys)."""
        return fingerprint(self)

    @property
    def max_value(self) -> int:
        return (1 << self.counter_bits) - 1

    @property
    def start_value(self) -> int:
        if self.initial_value is not None:
            return self.initial_value
        return max(0, self.bypass_threshold - 1)


@dataclass
class PredictorStats:
    """Training and prediction counters (for reports and tests)."""

    predictions: int = 0
    bypass_predictions: int = 0
    reuse_trainings: int = 0
    eviction_trainings: int = 0
    insertions: int = 0
    per_pc_outcomes: dict[int, list[int]] = field(default_factory=dict)


class ReusePredictor:
    """PC-indexed table of saturating reuse counters."""

    def __init__(self, config: PredictorConfig | None = None) -> None:
        self.config = config or PredictorConfig()
        self._table = [self.config.start_value] * self.config.table_entries
        self.stats = PredictorStats()

    # ------------------------------------------------------------------
    def _index(self, pc: int) -> int:
        # fold the PC so nearby instruction addresses spread across the table
        mixed = (pc >> 2) ^ (pc >> 13) ^ (pc >> 23)
        return mixed & (self.config.table_entries - 1)

    def counter(self, pc: int) -> int:
        """Current counter value for ``pc`` (for tests and introspection)."""
        return self._table[self._index(pc)]

    # ------------------------------------------------------------------
    def should_bypass(self, pc: int) -> bool:
        """Predict whether an access from ``pc`` should bypass the cache."""
        self.stats.predictions += 1
        bypass = self._table[self._index(pc)] < self.config.bypass_threshold
        if bypass:
            self.stats.bypass_predictions += 1
        return bypass

    def record_insertion(self, pc: int) -> None:
        """Note that a line was inserted on behalf of ``pc``."""
        self.stats.insertions += 1

    def train_reuse(self, pc: int) -> None:
        """A line inserted by ``pc`` was reused: strengthen the counter."""
        index = self._index(pc)
        self._table[index] = min(
            self.config.max_value, self._table[index] + self.config.reuse_increment
        )
        self.stats.reuse_trainings += 1

    def train_eviction(self, pc: int, reused: bool) -> None:
        """A line inserted by ``pc`` was evicted; ``reused`` says if it was touched."""
        self.stats.eviction_trainings += 1
        index = self._index(pc)
        if reused:
            self._table[index] = min(
                self.config.max_value, self._table[index] + self.config.reuse_increment
            )
        else:
            self._table[index] = max(
                0, self._table[index] - self.config.eviction_decrement
            )
        self.stats.per_pc_outcomes.setdefault(pc, []).append(1 if reused else 0)

    # ------------------------------------------------------------------
    def bypass_fraction(self) -> float:
        """Fraction of predictions that chose to bypass so far."""
        if self.stats.predictions == 0:
            return 0.0
        return self.stats.bypass_predictions / self.stats.predictions

    def table_snapshot(self) -> list[int]:
        """Copy of the counter table (for tests)."""
        return list(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReusePredictor(entries={self.config.table_entries}, "
            f"bypass_fraction={self.bypass_fraction():.2f})"
        )
