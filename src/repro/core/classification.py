"""Workload classification by caching sensitivity (paper section VI.A).

The paper groups the 17 MI workloads into three categories according to how
the static caching policies affect execution time:

* **Memory insensitive** -- no policy changes execution time by more than
  5% (the workload is compute bound or has negligible memory demand).
* **Reuse sensitive** -- enabling caching improves performance (beyond the
  5% band), because the workload has exploitable reuse.
* **Throughput sensitive** -- enabling caching *hurts* performance, because
  the workload has no reuse and the overheads of caching (stalls, row
  locality disruption) reduce achievable memory throughput.

:func:`classify` applies that rule to measured execution times;
:data:`PAPER_CATEGORIES` records the category the paper reports for each
workload, which the experiment harness compares against.
"""

from __future__ import annotations

import enum
from typing import Mapping

__all__ = ["WorkloadCategory", "classify", "PAPER_CATEGORIES"]

#: relative execution-time change below which a workload counts as insensitive
INSENSITIVITY_BAND = 0.05


class WorkloadCategory(enum.Enum):
    """The paper's three caching-sensitivity classes."""

    MEMORY_INSENSITIVE = "Insensitive"
    REUSE_SENSITIVE = "Reuse Sensitive"
    THROUGHPUT_SENSITIVE = "Throughput Sensitive"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify(
    exec_time_by_policy: Mapping[str, float],
    baseline: str = "Uncached",
    band: float = INSENSITIVITY_BAND,
) -> WorkloadCategory:
    """Classify one workload from its execution times under the static policies.

    Args:
        exec_time_by_policy: execution time (any consistent unit) keyed by
            policy name; must contain the baseline and at least one caching
            policy.
        baseline: name of the bypass-everything policy.
        band: relative change regarded as noise (paper: 5%).

    Returns:
        The workload's :class:`WorkloadCategory`.
    """
    if baseline not in exec_time_by_policy:
        raise KeyError(f"baseline policy {baseline!r} missing from results")
    base = exec_time_by_policy[baseline]
    if base <= 0:
        raise ValueError("baseline execution time must be positive")
    others = {k: v for k, v in exec_time_by_policy.items() if k != baseline}
    if not others:
        raise ValueError("need at least one caching policy to classify against")

    relative = {name: (time - base) / base for name, time in others.items()}
    best = min(relative.values())
    worst = max(relative.values())

    if abs(best) <= band and abs(worst) <= band:
        return WorkloadCategory.MEMORY_INSENSITIVE
    # caching helps if the best caching configuration is meaningfully faster
    if best < -band:
        return WorkloadCategory.REUSE_SENSITIVE
    return WorkloadCategory.THROUGHPUT_SENSITIVE


#: categories reported in the paper (Figure 6 grouping), used as the
#: reference for the shape checks in tests/experiments and EXPERIMENTS.md
PAPER_CATEGORIES: dict[str, WorkloadCategory] = {
    "DGEMM": WorkloadCategory.MEMORY_INSENSITIVE,
    "SGEMM": WorkloadCategory.MEMORY_INSENSITIVE,
    "CM": WorkloadCategory.MEMORY_INSENSITIVE,
    "FwBN": WorkloadCategory.REUSE_SENSITIVE,
    "FwPool": WorkloadCategory.REUSE_SENSITIVE,
    "FwSoft": WorkloadCategory.REUSE_SENSITIVE,
    "BwSoft": WorkloadCategory.REUSE_SENSITIVE,
    "BwPool": WorkloadCategory.REUSE_SENSITIVE,
    "FwGRU": WorkloadCategory.REUSE_SENSITIVE,
    "FwLSTM": WorkloadCategory.REUSE_SENSITIVE,
    "FwBwGRU": WorkloadCategory.REUSE_SENSITIVE,
    "FwBwLSTM": WorkloadCategory.REUSE_SENSITIVE,
    "BwBN": WorkloadCategory.REUSE_SENSITIVE,
    "FwFc": WorkloadCategory.REUSE_SENSITIVE,
    "FwAct": WorkloadCategory.THROUGHPUT_SENSITIVE,
    "FwLRN": WorkloadCategory.THROUGHPUT_SENSITIVE,
    "BwAct": WorkloadCategory.THROUGHPUT_SENSITIVE,
    # beyond the paper: transformer-era attention (registry "MHA"); its
    # K/V and projection-weight re-reads make it behave like the paper's
    # reuse-sensitive group
    "MHA": WorkloadCategory.REUSE_SENSITIVE,
}
