"""The paper's primary contribution: GPU caching policies and optimizations.

* :mod:`repro.core.policies` -- the three static policies of section III
  (Uncached, CacheR, CacheRW) and the optimized variants of section VII
  (CacheRW-AB, CacheRW-CR, CacheRW-PCby), expressed as
  :class:`~repro.core.policies.PolicySpec` objects.
* :mod:`repro.core.dirty_block_index` -- the Dirty-Block-Index used for
  row-locality-aware cache rinsing (section VII.B).
* :mod:`repro.core.reuse_predictor` -- the PC-indexed reuse predictor used
  for adaptive L2 bypassing (section VII.C).
* :mod:`repro.core.policy_engine` -- per-request decisions combining a
  policy with the optimizations.
* :mod:`repro.core.classification` -- the memory-insensitive /
  reuse-sensitive / throughput-sensitive workload classifier (section VI.A).
* :mod:`repro.core.advisor` -- static-best/static-worst selection and a
  simple adaptive policy advisor.
"""

from repro.core.policies import (
    CACHE_R,
    CACHE_RW,
    CACHE_RW_AB,
    CACHE_RW_CR,
    CACHE_RW_PCBY,
    OPTIMIZED_POLICIES,
    STATIC_POLICIES,
    UNCACHED,
    PolicySpec,
    policy_by_name,
)
from repro.core.allocation_bypass import AllocationBypassSpec
from repro.core.dirty_block_index import DirtyBlockIndex
from repro.core.reuse_predictor import ReusePredictor
from repro.core.policy_engine import PolicyEngine
from repro.core.classification import WorkloadCategory, classify
from repro.core.advisor import PolicyAdvisor, static_best_policy, static_worst_policy

__all__ = [
    "PolicySpec",
    "UNCACHED",
    "CACHE_R",
    "CACHE_RW",
    "CACHE_RW_AB",
    "CACHE_RW_CR",
    "CACHE_RW_PCBY",
    "STATIC_POLICIES",
    "OPTIMIZED_POLICIES",
    "policy_by_name",
    "AllocationBypassSpec",
    "DirtyBlockIndex",
    "ReusePredictor",
    "PolicyEngine",
    "WorkloadCategory",
    "classify",
    "PolicyAdvisor",
    "static_best_policy",
    "static_worst_policy",
]
