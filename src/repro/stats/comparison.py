"""Cross-policy comparison helpers.

The paper's figures normalize each workload's metrics either to the
Uncached policy (Figures 6-9) or to the best static policy (Figures 10-13).
:class:`PolicyComparison` collects the :class:`~repro.stats.report.RunReport`
objects for one workload under several policies and performs these
normalizations plus the static-best/static-worst selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.stats.report import RunReport

__all__ = ["normalize_to", "static_best", "static_worst", "PolicyComparison"]


def normalize_to(
    values: Mapping[str, float], baseline: str
) -> dict[str, float]:
    """Divide every value by the baseline's value.

    Raises ``KeyError`` when the baseline is missing and ``ValueError`` when
    its value is zero (nothing meaningful can be normalized to it).
    """
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing from values")
    base = values[baseline]
    if base == 0:
        raise ValueError(f"cannot normalize to {baseline!r}: its value is zero")
    return {name: value / base for name, value in values.items()}


def static_best(exec_times: Mapping[str, float]) -> str:
    """Policy name with the smallest execution time."""
    if not exec_times:
        raise ValueError("no execution times given")
    return min(exec_times.items(), key=lambda kv: kv[1])[0]


def static_worst(exec_times: Mapping[str, float]) -> str:
    """Policy name with the largest execution time."""
    if not exec_times:
        raise ValueError("no execution times given")
    return max(exec_times.items(), key=lambda kv: kv[1])[0]


@dataclass
class PolicyComparison:
    """Reports for one workload under several policies."""

    workload: str
    reports: dict[str, RunReport] = field(default_factory=dict)

    def add(self, report: RunReport) -> None:
        if report.workload != self.workload:
            raise ValueError(
                f"report is for workload {report.workload!r}, expected {self.workload!r}"
            )
        self.reports[report.policy] = report

    def policies(self) -> list[str]:
        return list(self.reports.keys())

    # ------------------------------------------------------------------
    def metric(self, extract: Callable[[RunReport], float]) -> dict[str, float]:
        """Apply ``extract`` to every report."""
        return {policy: extract(report) for policy, report in self.reports.items()}

    def exec_times(self) -> dict[str, float]:
        return self.metric(lambda r: float(r.cycles))

    def normalized_exec_time(self, baseline: str = "Uncached") -> dict[str, float]:
        """Execution time normalized to ``baseline`` (Figure 6 view)."""
        return normalize_to(self.exec_times(), baseline)

    def normalized_dram_accesses(self, baseline: str = "Uncached") -> dict[str, float]:
        """DRAM accesses normalized to ``baseline`` (Figure 7 view)."""
        return normalize_to(self.metric(lambda r: float(r.dram_accesses)), baseline)

    def stalls_per_request(self) -> dict[str, float]:
        """Cache stalls per memory request (Figure 8 view)."""
        return self.metric(lambda r: r.cache_stalls_per_request)

    def row_hit_rates(self) -> dict[str, float]:
        """DRAM row hit rates (Figure 9 view)."""
        return self.metric(lambda r: r.dram_row_hit_rate)

    # ------------------------------------------------------------------
    def static_best(self, candidates: Iterable[str] | None = None) -> str:
        """Best static policy by execution time among ``candidates``."""
        times = self.exec_times()
        if candidates is not None:
            times = {name: times[name] for name in candidates if name in times}
        return static_best(times)

    def static_worst(self, candidates: Iterable[str] | None = None) -> str:
        """Worst static policy by execution time among ``candidates``."""
        times = self.exec_times()
        if candidates is not None:
            times = {name: times[name] for name in candidates if name in times}
        return static_worst(times)
