"""Statistics collection and reporting.

Every timing component increments counters on a shared
:class:`~repro.stats.counters.StatsCollector`.  After a run,
:class:`~repro.stats.report.RunReport` turns the raw counters into the
derived metrics the paper plots (execution time, GVOPS, GMR/s, DRAM
accesses, cache stalls per request, DRAM row-hit rate), and
:mod:`repro.stats.comparison` provides the normalizations used by the
figures (normalized-to-Uncached, static-best / static-worst).
"""

from repro.stats.counters import StatsCollector
from repro.stats.report import RunReport
from repro.stats.comparison import (
    PolicyComparison,
    normalize_to,
    static_best,
    static_worst,
)
from repro.stats.regression import (
    RegressionVerdict,
    check_regression,
    mad,
    median,
    robust_floor,
)

__all__ = [
    "StatsCollector",
    "RunReport",
    "PolicyComparison",
    "normalize_to",
    "static_best",
    "static_worst",
    "RegressionVerdict",
    "check_regression",
    "mad",
    "median",
    "robust_floor",
]
