"""Shared counter store for all timing components.

The collector keeps namespaced integer counters (``"l1.hits"``,
``"dram.row_hits"``) and simple histograms, with snapshot/diff helpers used
by per-kernel accounting.

Hot-path components do not look counters up by name on every event.
Instead they resolve a :class:`Counter` handle once (usually in their
``__init__``) via :meth:`StatsCollector.counter` and increment the handle
directly -- no per-access string formatting, no dict hashing.  A handle is
shared storage: every component that resolves the same name gets the same
:class:`Counter` object, so per-CU L1 caches still aggregate into one
``"l1.*"`` namespace exactly as before.

Resolving a handle does *not* make the counter visible: a counter appears
in :meth:`StatsCollector.counters` (and therefore in run reports) only
once it has actually been written, which keeps report contents identical
to the old lazily-created ``defaultdict`` behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from math import ceil
from typing import Iterable, Mapping

__all__ = ["Counter", "StatsCollector"]


class Counter:
    """Pre-bound mutable handle to one named counter.

    ``add`` is the hot-path operation: one attribute add and one flag
    store, no name hashing.  ``touched`` records whether the counter was
    ever written -- resolved-but-never-written counters are excluded from
    collector views so pre-registering handles cannot change reports.
    """

    __slots__ = ("name", "value", "touched")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.touched = False

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (may be negative)."""
        self.value += amount
        self.touched = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class StatsCollector:
    """Accumulates named integer counters and simple histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: defaultdict[str, defaultdict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    # -- counters ---------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Resolve the mutable handle for counter ``name`` (creating it).

        The returned object is shared: all callers asking for the same name
        increment the same cell.  Components resolve handles once and keep
        them, moving the name lookup out of the simulation hot path.
        """
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name)
        return handle

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (may be negative)."""
        self.counter(name).add(amount)

    def set(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value."""
        handle = self.counter(name)
        handle.value = value
        handle.touched = True

    def get(self, name: str, default: int = 0) -> int:
        """Read a counter, returning ``default`` if it was never written."""
        handle = self._counters.get(name)
        if handle is None or not handle.touched:
            return default
        return handle.value

    def counters(self) -> dict[str, int]:
        """A copy of all written counters."""
        return {
            name: handle.value
            for name, handle in self._counters.items()
            if handle.touched
        }

    def matching(self, prefix: str) -> dict[str, int]:
        """All written counters whose name starts with ``prefix``."""
        return {
            name: handle.value
            for name, handle in self._counters.items()
            if handle.touched and name.startswith(prefix)
        }

    def sum(self, names: Iterable[str]) -> int:
        """Sum of several counters."""
        return sum(self.get(name) for name in names)

    # -- histograms -------------------------------------------------------
    def histogram_handle(self, name: str) -> defaultdict[int, int]:
        """Resolve the mutable value->count mapping for histogram ``name``.

        Hot-path observers keep the handle and do ``handle[value] += 1``
        directly, skipping the outer name lookup of :meth:`observe`.
        """
        return self._histograms[name]

    def observe(self, name: str, value: int) -> None:
        """Add one observation to histogram ``name``."""
        self._histograms[name][value] += 1

    def histogram(self, name: str) -> dict[int, int]:
        """A copy of histogram ``name`` (value -> count)."""
        return dict(self._histograms.get(name, {}))

    def histogram_mean(self, name: str) -> float:
        """Mean of the observations in histogram ``name`` (0.0 if empty)."""
        hist = self._histograms.get(name)
        if not hist:
            return 0.0
        total = sum(v * c for v, c in hist.items())
        count = sum(hist.values())
        return total / count

    def histogram_percentile(self, name: str, p: float) -> float:
        """The ``p``-th percentile of histogram ``name`` (0.0 if empty).

        Nearest-rank definition: the smallest observed value whose
        cumulative count reaches ``ceil(p/100 * total)``, so the result is
        always an actually-observed value.  ``p=0`` is the minimum,
        ``p=100`` the maximum.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        hist = self._histograms.get(name)
        if not hist:
            return 0.0
        total = sum(hist.values())
        rank = max(1, ceil(p / 100.0 * total))
        cumulative = 0
        for value in sorted(hist):
            cumulative += hist[value]
            if cumulative >= rank:
                return float(value)
        return float(max(hist))  # pragma: no cover - rank <= total always hits

    def histogram_summary(self, name: str) -> dict[str, float]:
        """Count/mean/p50/p95/p99/max digest of histogram ``name``.

        The telemetry latency summaries use this shape; all fields are 0.0
        for an empty (or absent) histogram.
        """
        hist = self._histograms.get(name)
        if not hist:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": float(sum(hist.values())),
            "mean": self.histogram_mean(name),
            "p50": self.histogram_percentile(name, 50),
            "p95": self.histogram_percentile(name, 95),
            "p99": self.histogram_percentile(name, 99),
            "max": float(max(hist)),
        }

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the counters (used for per-kernel deltas)."""
        return self.counters()

    def delta_since(self, snapshot: Mapping[str, int]) -> dict[str, int]:
        """Difference between the current counters and ``snapshot``."""
        current = self.counters()
        keys = set(current) | set(snapshot)
        return {k: current.get(k, 0) - snapshot.get(k, 0) for k in keys}

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector's counters and histograms into this one."""
        for name, theirs in other._counters.items():
            if not theirs.touched:
                continue
            ours = self.counter(name)
            ours.value += theirs.value
            ours.touched = True
        for name, hist in other._histograms.items():
            mine = self._histograms[name]
            for value, count in hist.items():
                mine[value] += count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsCollector({len(self._counters)} counters)"
