"""Shared counter store for all timing components.

The collector is a thin wrapper around a ``defaultdict(int)`` with a few
conveniences: namespaced counter names (``"l1.hits"``, ``"dram.row_hits"``),
histogram support for latency distributions, and snapshot/diff helpers used
by per-kernel accounting.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

__all__ = ["StatsCollector"]


class StatsCollector:
    """Accumulates named integer counters and simple histograms."""

    def __init__(self) -> None:
        self._counters: defaultdict[str, int] = defaultdict(int)
        self._histograms: defaultdict[str, defaultdict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    # -- counters ---------------------------------------------------------
    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (may be negative)."""
        self._counters[name] += amount

    def set(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value."""
        self._counters[name] = value

    def get(self, name: str, default: int = 0) -> int:
        """Read a counter, returning ``default`` if it was never touched."""
        return self._counters.get(name, default)

    def counters(self) -> dict[str, int]:
        """A copy of all counters."""
        return dict(self._counters)

    def matching(self, prefix: str) -> dict[str, int]:
        """All counters whose name starts with ``prefix``."""
        return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    def sum(self, names: Iterable[str]) -> int:
        """Sum of several counters."""
        return sum(self.get(name) for name in names)

    # -- histograms -------------------------------------------------------
    def observe(self, name: str, value: int) -> None:
        """Add one observation to histogram ``name``."""
        self._histograms[name][value] += 1

    def histogram(self, name: str) -> dict[int, int]:
        """A copy of histogram ``name`` (value -> count)."""
        return dict(self._histograms.get(name, {}))

    def histogram_mean(self, name: str) -> float:
        """Mean of the observations in histogram ``name`` (0.0 if empty)."""
        hist = self._histograms.get(name)
        if not hist:
            return 0.0
        total = sum(v * c for v, c in hist.items())
        count = sum(hist.values())
        return total / count

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the counters (used for per-kernel deltas)."""
        return dict(self._counters)

    def delta_since(self, snapshot: Mapping[str, int]) -> dict[str, int]:
        """Difference between the current counters and ``snapshot``."""
        keys = set(self._counters) | set(snapshot)
        return {k: self._counters.get(k, 0) - snapshot.get(k, 0) for k in keys}

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector's counters and histograms into this one."""
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, hist in other._histograms.items():
            for value, count in hist.items():
                self._histograms[name][value] += count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsCollector({len(self._counters)} counters)"
