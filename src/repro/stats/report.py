"""Per-run report: the derived metrics the paper's figures plot.

A :class:`RunReport` is produced by one simulation run (one workload under
one policy) and exposes exactly the quantities used in Figures 4-13:

* execution time (cycles and seconds),
* compute bandwidth in GVOPS (Figure 4),
* memory request bandwidth in GMR/s (Figure 5),
* DRAM accesses (Figures 7 and 11),
* cache stalls per GPU memory request (Figures 8 and 12),
* DRAM row-buffer hit ratio (Figures 9 and 13).

Beyond the paper's figures the report also surfaces the serving-system
axes later PRs added: per-stream sub-counters and interference metrics
for multi-tenant runs, NUMA local/remote traffic for multi-device runs,
and -- for fault-injected runs -- resilience metrics (``faults_injected``,
``degraded_cycles``, ``availability``, per-stream recovery latency).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.config import SystemConfig
from repro.stats.counters import StatsCollector

__all__ = ["RunReport"]

#: per-stream counter namespace: ``stream<i>.<metric>``
_STREAM_COUNTER = re.compile(r"^stream(\d+)\.(.+)$")


@dataclass
class RunReport:
    """Summary of one simulation run."""

    workload: str
    policy: str
    cycles: int
    counters: dict[str, int] = field(default_factory=dict)
    clock_ghz: float = 1.6
    wavefront_size: int = 64
    #: telemetry metrics windows (``{"start", "end", "counters"}`` dicts,
    #: see :mod:`repro.telemetry.metrics`); empty unless the run sampled
    metrics: list[dict] = field(default_factory=list)
    #: anomaly alerts (:meth:`repro.obs.alerts.Alert.as_dict` dicts);
    #: empty unless the run had the detectors enabled and they fired
    alerts: list[dict] = field(default_factory=list)
    #: per-counter relative error bounds of extrapolated counters (plus
    #: the ``"cycles"`` key); empty unless the run fast-forwarded kernels
    error_estimates: dict[str, float] = field(default_factory=dict)
    #: fast-forward / shard summary (kernels executed vs skipped,
    #: represented events, shard counts); empty for exact runs
    sampling: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_stats(
        cls,
        workload: str,
        policy: str,
        cycles: int,
        stats: StatsCollector,
        config: SystemConfig,
        metrics: "list[dict] | None" = None,
    ) -> "RunReport":
        """Build a report from the shared counter store after a run."""
        return cls(
            workload=workload,
            policy=policy,
            cycles=cycles,
            counters=stats.counters(),
            clock_ghz=config.gpu.clock_ghz,
            wavefront_size=config.gpu.wavefront_size,
            metrics=list(metrics) if metrics else [],
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Full state of the report, suitable for lossless JSON round-trip.

        Unlike :meth:`as_dict` (the *derived* figure metrics), this captures
        the raw fields, so ``RunReport.from_dict(report.to_dict())`` compares
        equal to ``report`` and reproduces every derived metric exactly.
        The persistent result store and the process-pool backend both ship
        reports across process boundaries in this form.
        """
        blob: dict[str, object] = {
            "workload": self.workload,
            "policy": self.policy,
            "cycles": self.cycles,
            "counters": dict(self.counters),
            "clock_ghz": self.clock_ghz,
            "wavefront_size": self.wavefront_size,
        }
        if self.metrics:
            # only sampled runs carry the key, so blobs of plain runs (and
            # every pre-telemetry golden fixture) are byte-identical
            blob["metrics"] = [dict(window) for window in self.metrics]
        if self.alerts:
            # same touched-gating as metrics: healthy or detector-less runs
            # serialize exactly as they always have
            blob["alerts"] = [dict(alert) for alert in self.alerts]
        if self.error_estimates:
            # only fast-forwarded runs carry the keys, so exact-run blobs
            # (and every pre-sampling golden fixture) stay byte-identical
            blob["error_estimates"] = dict(self.error_estimates)
        if self.sampling:
            blob["sampling"] = dict(self.sampling)
        return blob

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output (e.g. a JSON blob)."""
        try:
            workload = data["workload"]
            policy = data["policy"]
            cycles = data["cycles"]
        except KeyError as missing:
            raise ValueError(f"run report dict is missing key {missing}") from None
        if not isinstance(workload, str) or not isinstance(policy, str):
            raise ValueError("run report workload/policy must be strings")
        counters_raw = data.get("counters", {})
        if not isinstance(counters_raw, Mapping):
            raise ValueError("run report counters must be a mapping")
        metrics_raw = data.get("metrics", [])
        if not isinstance(metrics_raw, Sequence) or isinstance(metrics_raw, (str, bytes)):
            raise ValueError("run report metrics must be a list of windows")
        alerts_raw = data.get("alerts", [])
        if not isinstance(alerts_raw, Sequence) or isinstance(alerts_raw, (str, bytes)):
            raise ValueError("run report alerts must be a list of alert dicts")
        errors_raw = data.get("error_estimates", {})
        if not isinstance(errors_raw, Mapping):
            raise ValueError("run report error_estimates must be a mapping")
        sampling_raw = data.get("sampling", {})
        if not isinstance(sampling_raw, Mapping):
            raise ValueError("run report sampling must be a mapping")
        return cls(
            workload=workload,
            policy=policy,
            cycles=int(cycles),  # type: ignore[arg-type]
            counters={str(name): int(value) for name, value in counters_raw.items()},  # type: ignore[arg-type]
            clock_ghz=float(data.get("clock_ghz", 1.6)),  # type: ignore[arg-type]
            wavefront_size=int(data.get("wavefront_size", 64)),  # type: ignore[arg-type]
            metrics=[dict(window) for window in metrics_raw],  # type: ignore[call-overload]
            alerts=[dict(alert) for alert in alerts_raw],  # type: ignore[call-overload]
            error_estimates={
                str(name): float(value) for name, value in errors_raw.items()  # type: ignore[arg-type]
            },
            sampling=dict(sampling_raw),
        )

    # ------------------------------------------------------------------
    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    @property
    def seconds(self) -> float:
        """Wall-clock execution time implied by the GPU clock."""
        return self.cycles / (self.clock_ghz * 1e9)

    # -- traffic -----------------------------------------------------------
    @property
    def gpu_mem_requests(self) -> int:
        """Line requests issued by the CUs to the memory system."""
        return self.get("gpu.mem_requests")

    @property
    def dram_accesses(self) -> int:
        """Accesses that reached the DRAM controllers (Figure 7 metric)."""
        return self.get("dram.accesses")

    @property
    def dram_reads(self) -> int:
        return self.get("dram.reads")

    @property
    def dram_writes(self) -> int:
        return self.get("dram.writes")

    # -- row locality ------------------------------------------------------
    @property
    def dram_row_hits(self) -> int:
        return self.get("dram.row_hits")

    @property
    def dram_row_hit_rate(self) -> float:
        """Fraction of DRAM accesses that hit an open row (Figure 9 metric)."""
        total = self.dram_accesses
        return self.dram_row_hits / total if total else 0.0

    # -- NUMA traffic ------------------------------------------------------
    @property
    def local_requests(self) -> int:
        """Line requests served by the issuing device's own L2 slice.

        Zero outside multi-device topology runs (single-device reports do
        not carry ``topo.*`` counters at all).
        """
        return self.get("topo.local_requests")

    @property
    def remote_requests(self) -> int:
        """Line requests that crossed the inter-device fabric."""
        return self.get("topo.remote_requests")

    @property
    def remote_fraction(self) -> float:
        """Fraction of slice-bound requests homed on a remote device."""
        total = self.local_requests + self.remote_requests
        return self.remote_requests / total if total else 0.0

    # -- stalls ------------------------------------------------------------
    @property
    def cache_stall_cycles(self) -> int:
        """Combined L1 + L2 stall cycles (Figure 8 metric numerator)."""
        return self.get("l1.stall_cycles") + self.get("l2.stall_cycles")

    @property
    def cache_stalls_per_request(self) -> float:
        """Cache stall cycles per GPU memory request (Figure 8 metric)."""
        requests = self.gpu_mem_requests
        return self.cache_stall_cycles / requests if requests else 0.0

    # -- cache behaviour ---------------------------------------------------
    @property
    def l1_hits(self) -> int:
        return self.get("l1.hits")

    @property
    def l1_hit_rate(self) -> float:
        accesses = self.get("l1.accesses")
        return self.l1_hits / accesses if accesses else 0.0

    @property
    def l2_hits(self) -> int:
        return self.get("l2.hits")

    @property
    def l2_hit_rate(self) -> float:
        accesses = self.get("l2.accesses")
        return self.l2_hits / accesses if accesses else 0.0

    # -- bandwidths --------------------------------------------------------
    @property
    def lane_ops(self) -> int:
        """Total per-lane vector operations executed."""
        return self.get("gpu.vector_ops") * self.wavefront_size

    @property
    def gvops(self) -> float:
        """Giga vector (lane) operations per second (Figure 4 metric)."""
        seconds = self.seconds
        return self.lane_ops / seconds / 1e9 if seconds else 0.0

    @property
    def gmrs(self) -> float:
        """Giga GPU memory requests per second (Figure 5 metric)."""
        seconds = self.seconds
        return self.gpu_mem_requests / seconds / 1e9 if seconds else 0.0

    # -- resilience (fault injection) --------------------------------------
    @property
    def faults_injected(self) -> int:
        """Fault events that actually struck during the run (0 = healthy)."""
        return self.get("faults.injected")

    @property
    def degraded_cycles(self) -> int:
        """Cycles during which at least one injected fault was active.

        The union of active-fault intervals, clipped to the run: a fault
        that outlives the workload only degrades the cycles it overlapped.
        """
        return self.get("faults.degraded_cycles")

    @property
    def availability(self) -> float:
        """Fraction of the run executed with no fault active (1.0 = healthy).

        The serving-fleet availability metric: ``1 - degraded/total``.
        """
        return 1.0 - self.degraded_cycles / self.cycles if self.cycles else 1.0

    @property
    def recovery_cycles(self) -> int:
        """Total tenant recovery latency: cycles between each stream kill
        and the corresponding restart, summed over all restarts."""
        return sum(
            value
            for name, value in self.counters.items()
            if name.endswith(".recovery_cycles") and _STREAM_COUNTER.match(name)
        )

    def stream_recovery_cycles(self, index: int) -> int:
        """Recovery latency of stream ``index`` (0: never killed/restarted)."""
        return self.get(f"stream{index}.recovery_cycles")

    # -- multi-tenant serving ----------------------------------------------
    @property
    def per_stream(self) -> dict[int, dict[str, int]]:
        """Per-stream sub-reports of a multi-tenant serving run.

        Serving runs record stream-tagged counters
        (``stream<i>.mem_requests``, ``stream<i>.cycles``, ...); this
        groups them by stream index.  Empty for single-workload runs.
        """
        streams: dict[int, dict[str, int]] = {}
        for name, value in self.counters.items():
            match = _STREAM_COUNTER.match(name)
            if match is not None:
                streams.setdefault(int(match.group(1)), {})[match.group(2)] = value
        return dict(sorted(streams.items()))

    @property
    def num_streams(self) -> int:
        """Execution streams of the run (0 outside serving runs)."""
        return len(self.per_stream)

    def stream_cycles(self, index: int) -> int:
        """Cycles stream ``index`` took from its arrival to its completion."""
        try:
            return self.counters[f"stream{index}.cycles"]
        except KeyError:
            raise KeyError(
                f"report for {self.workload!r} has no stream {index} "
                "(not a serving run, or the stream never finished)"
            ) from None

    def interference(self, solo_cycles: Sequence[int]) -> dict[str, object]:
        """Per-tenant slowdown and unfairness versus solo execution.

        Args:
            solo_cycles: each stream's execution time when it runs alone
                on the same system under the same policy, in stream order.

        Returns a dict with ``slowdowns`` (per-tenant ``mix / solo`` cycle
        ratios, stream order), ``mean_slowdown``, ``max_slowdown``, and
        ``unfairness`` (max/min slowdown, 1.0 = perfectly fair, the metric
        of the multi-tenancy literature).
        """
        streams = self.per_stream
        if len(solo_cycles) != len(streams):
            raise ValueError(
                f"got {len(solo_cycles)} solo baselines for {len(streams)} streams"
            )
        slowdowns = [
            self.stream_cycles(index) / solo if solo else 0.0
            for index, solo in enumerate(solo_cycles)
        ]
        return {
            "slowdowns": slowdowns,
            "mean_slowdown": sum(slowdowns) / len(slowdowns) if slowdowns else 0.0,
            "max_slowdown": max(slowdowns) if slowdowns else 0.0,
            "unfairness": (
                max(slowdowns) / min(slowdowns)
                if slowdowns and min(slowdowns) > 0
                else 0.0
            ),
        }

    # -- misc ----------------------------------------------------------------
    @property
    def kernels(self) -> int:
        return self.get("gpu.kernels_completed")

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary used by the CLI, benchmarks and EXPERIMENTS.md."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "gvops": self.gvops,
            "gmrs": self.gmrs,
            "gpu_mem_requests": self.gpu_mem_requests,
            "dram_accesses": self.dram_accesses,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "dram_row_hit_rate": self.dram_row_hit_rate,
            "remote_fraction": self.remote_fraction,
            "cache_stall_cycles": self.cache_stall_cycles,
            "cache_stalls_per_request": self.cache_stalls_per_request,
            "l1_hit_rate": self.l1_hit_rate,
            "l2_hit_rate": self.l2_hit_rate,
            "kernels": self.kernels,
            "faults_injected": self.faults_injected,
            "degraded_cycles": self.degraded_cycles,
            "availability": self.availability,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunReport({self.workload}/{self.policy}: cycles={self.cycles}, "
            f"dram={self.dram_accesses}, stalls/req={self.cache_stalls_per_request:.2f}, "
            f"row_hit={self.dram_row_hit_rate:.2f})"
        )
