"""Robust regression detection for noisy benchmark samples.

The perf smoke gate used to be a single timing sample compared against one
hand-committed number with a flat 25% threshold -- wide enough to hide a
20% regression, yet still trippable by one unlucky scheduler stall.  This
module replaces that with standard robust statistics:

* measurements are the **median of N samples** (the run is deterministic,
  so spread between samples is pure host noise);
* the committed baseline keeps its flat threshold as a catastrophic
  floor (portable across machines via ``REPRO_BENCH_MAX_REGRESSION``);
* the per-machine history (``BENCH_history.jsonl``) yields a second,
  *adaptive* floor: ``median(history) - k * 1.4826 * MAD(history)``.  The
  median absolute deviation is outlier-proof (one garbage sample cannot
  widen the gate), the 1.4826 factor scales MAD to a standard deviation
  under normal noise, and the MAD itself is floored at a small fraction
  of the median so a perfectly quiet history cannot produce a zero-width
  gate that fails on the first scheduler hiccup.

:func:`check_regression` combines both models into one
:class:`RegressionVerdict`; ``benchmarks/test_perf_smoke.py`` and the
``repro-gpu-cache bench check`` CLI are the two consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["RegressionVerdict", "check_regression", "mad", "median", "robust_floor"]

#: MAD -> standard deviation consistency factor for normally distributed noise
MAD_TO_SIGMA = 1.4826


def median(values: Sequence[float]) -> float:
    """The middle value (mean of the middle two for even counts)."""
    if not values:
        raise ValueError("median of an empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if not values:
        raise ValueError("MAD of an empty sequence")
    pivot = median(values) if center is None else center
    return median([abs(value - pivot) for value in values])


def robust_floor(
    history: Sequence[float],
    mad_factor: float = 4.0,
    min_mad_fraction: float = 0.02,
) -> float:
    """The lowest value the history deems unremarkable.

    ``median - mad_factor * 1.4826 * max(MAD, min_mad_fraction * median)``:
    values below it sit more than ``mad_factor`` robust standard
    deviations under the historical median.  The MAD floor keeps a
    zero-spread history (identical recorded samples) from producing a
    zero-width gate.
    """
    if not history:
        raise ValueError("robust floor of an empty history")
    center = median(history)
    spread = max(mad(history, center=center), abs(center) * min_mad_fraction)
    return center - mad_factor * MAD_TO_SIGMA * spread


@dataclass
class RegressionVerdict:
    """The outcome of one regression check, with every input that shaped it."""

    value: float
    ok: bool = True
    #: human-readable explanation of each failed gate (empty when ok)
    reasons: list[str] = field(default_factory=list)
    #: committed-baseline gate: value must stay above this (None = no gate)
    baseline_floor: Optional[float] = None
    #: history gate: value must stay above this (None = history too short)
    history_floor: Optional[float] = None
    history_median: Optional[float] = None
    history_mad: Optional[float] = None
    #: history samples the adaptive gate was built from
    history_samples: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "value": self.value,
            "ok": self.ok,
            "reasons": list(self.reasons),
            "baseline_floor": self.baseline_floor,
            "history_floor": self.history_floor,
            "history_median": self.history_median,
            "history_mad": self.history_mad,
            "history_samples": self.history_samples,
        }


def check_regression(
    value: float,
    committed_baseline: Optional[float] = None,
    max_regression: float = 0.25,
    history: Sequence[float] = (),
    mad_factor: float = 4.0,
    min_history: int = 5,
    min_mad_fraction: float = 0.02,
) -> RegressionVerdict:
    """Judge one higher-is-better measurement against both regression models.

    Args:
        value: the measurement (e.g. median events/sec of this run).
        committed_baseline: the committed reference number; with
            ``max_regression > 0`` the value must stay above
            ``baseline * (1 - max_regression)``.  ``None`` or
            ``max_regression == 0`` disables this gate.
        max_regression: allowed fractional slowdown vs the committed
            baseline (the existing ``REPRO_BENCH_MAX_REGRESSION`` knob).
        history: prior recorded measurements *on this machine* (newest or
            oldest first -- order is irrelevant to median/MAD).
        mad_factor: robust z-score threshold for the history gate.
        min_history: history gate only arms once this many samples exist
            (a 2-sample "history" has no meaningful spread).
        min_mad_fraction: MAD floor as a fraction of the history median.

    Returns a :class:`RegressionVerdict`; ``ok`` is True when every armed
    gate passes.  With no committed baseline and a short history, nothing
    is armed and the verdict trivially passes (the record still grows the
    history for next time).
    """
    if max_regression < 0:
        raise ValueError(f"max_regression must be >= 0, got {max_regression}")
    if min_history < 1:
        raise ValueError(f"min_history must be positive, got {min_history}")
    verdict = RegressionVerdict(value=float(value))
    if committed_baseline and max_regression > 0:
        verdict.baseline_floor = committed_baseline * (1.0 - max_regression)
        if value < verdict.baseline_floor:
            verdict.ok = False
            verdict.reasons.append(
                f"{value:,.0f} is below the committed-baseline floor "
                f"{verdict.baseline_floor:,.0f} "
                f"({max_regression:.0%} under {committed_baseline:,.0f})"
            )
    samples = [float(sample) for sample in history]
    verdict.history_samples = len(samples)
    if len(samples) >= min_history:
        center = median(samples)
        verdict.history_median = center
        verdict.history_mad = mad(samples, center=center)
        verdict.history_floor = robust_floor(
            samples, mad_factor=mad_factor, min_mad_fraction=min_mad_fraction
        )
        if value < verdict.history_floor:
            verdict.ok = False
            verdict.reasons.append(
                f"{value:,.0f} is below the history floor "
                f"{verdict.history_floor:,.0f} (median {center:,.0f} over "
                f"{len(samples)} samples, MAD {verdict.history_mad:,.0f}, "
                f"k={mad_factor})"
            )
    return verdict
