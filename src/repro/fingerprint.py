"""Stable content fingerprints for configuration objects.

The persistent result store (:mod:`repro.experiments.store`) keys cached
simulation results by the *inputs* of a run: workload name, scale, policy
and system configuration.  Those inputs are all frozen dataclasses of
primitives, so a canonical JSON rendering hashed with SHA-256 gives a key
that is stable across processes and Python versions -- unlike ``hash()``,
which is salted per process for strings.

Fingerprints are tagged with the dataclass name (at every nesting level)
so that two different config types whose fields happen to coincide can
never collide, and every key embeds both :data:`SCHEMA_VERSION` and a
digest of this package's own source code (:func:`code_digest`), so a
simulator behaviour change -- even one nobody remembered to version-bump
-- invalidates old blobs instead of serving stale results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any

__all__ = ["SCHEMA_VERSION", "canonical_payload", "code_digest", "fingerprint", "tree_digest"]

#: bump to invalidate every previously stored result blob explicitly
SCHEMA_VERSION = 1


def tree_digest(root: Path) -> str:
    """SHA-256 over every ``*.py`` file under ``root`` (paths + contents).

    Exposed separately from :func:`code_digest` so tests can prove the
    staleness property directly: editing any source file under ``root``
    changes the digest, and therefore every result-store key derived from
    it.
    """
    digest = hashlib.sha256()
    for source in sorted(root.rglob("*.py")):
        digest.update(str(source.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@lru_cache(maxsize=1)
def code_digest() -> str:
    """SHA-256 over every ``repro`` source file, computed once per process.

    Mixing this into result keys ties every cached blob to the exact
    simulator code that produced it: edit any module under ``repro`` and
    previously stored results become misses rather than silently-stale
    hits.  The walk is ~100 small files, so the one-time cost is
    negligible next to a single simulation.
    """
    return tree_digest(Path(__file__).resolve().parent)


def canonical_payload(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable primitives, deterministically.

    Dataclasses become tagged ``{"__kind__": <class name>, ...fields}``
    dictionaries -- recursively, so nested configs keep their own type tag
    too; tuples become lists; dictionaries keep their (string) keys.
    Anything JSON cannot represent is rejected loudly rather than silently
    stringified, so fingerprints never drift with ``repr`` changes.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        payload: dict[str, Any] = {"__kind__": type(obj).__name__}
        for spec in fields(obj):
            payload[spec.name] = canonical_payload(getattr(obj, spec.name))
        return payload
    if isinstance(obj, dict):
        return {str(key): canonical_payload(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}: {obj!r}")


def fingerprint(obj: Any, *, kind: str | None = None) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON rendering.

    Args:
        obj: a dataclass instance or a structure of primitives.
        kind: optional tag mixed into the hash; defaults to the dataclass
            name when ``obj`` is a dataclass.
    """
    if kind is None and is_dataclass(obj) and not isinstance(obj, type):
        kind = type(obj).__name__
    envelope = {
        "schema": SCHEMA_VERSION,
        "code": code_digest(),
        "kind": kind,
        "payload": canonical_payload(obj),
    }
    blob = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
