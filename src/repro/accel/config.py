"""Configuration of the fast simulation modes.

Two composable accelerations, both off by default and both fingerprinted
into :class:`~repro.experiments.jobs.JobSpec` identities:

* :class:`SamplingConfig` -- phase-sampled fast-forward.  Repeated
  instances of the same kernel are measured a few times; once their
  windowed phase metrics (the :mod:`repro.adaptive.phase` signals) are
  steady, the remaining instances are skipped and their counters
  extrapolated with warmup correction, with a per-counter error bound
  reported on the run report.
* :class:`ShardConfig` -- sharded multi-process execution.  One big run
  is partitioned along its natural seams (serving streams or topology
  devices) into per-shard event queues that advance in epochs and
  synchronize boundary traffic at each epoch barrier.

Exact mode -- sampling disabled and a single shard -- is bit-identical to
the historical simulator and hashes as ``None`` in fingerprints (the
:class:`~repro.faults.config.FaultPlan` idiom), so exact baselines keep
their warm result-store cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SamplingConfig", "ShardConfig"]

#: shard axes: ``auto`` resolves to ``streams`` for serving runs and
#: ``devices`` for multi-device topology runs
SHARD_AXES = ("auto", "streams", "devices")


@dataclass(frozen=True)
class SamplingConfig:
    """Phase-sampled fast-forward of steady-state kernel repeats.

    Args:
        enabled: master switch; a disabled config is exact mode and
            fingerprints as ``None``.
        warmup_instances: executed instances per kernel signature whose
            counter deltas are *excluded* from the extrapolation basis
            (cold caches make the first instance unrepresentative).
        measure_instances: executed instances (after warmup) whose deltas
            form the extrapolation basis; skipping can only begin once
            ``warmup_instances + measure_instances`` instances ran and
            the last two look phase-steady.
        intensity_delta: relative arithmetic-intensity threshold of the
            steadiness test (same meaning as the phase detector's).
        hit_rate_delta: absolute L2-hit-rate threshold.
        write_fraction_delta: absolute write-fraction threshold.
        cycle_delta: maximum relative spread between the last two
            measured cycle deltas for a signature to count as steady --
            the direct guard on extrapolated-cycle error.
    """

    enabled: bool = True
    warmup_instances: int = 1
    measure_instances: int = 2
    intensity_delta: float = 0.5
    hit_rate_delta: float = 0.15
    write_fraction_delta: float = 0.15
    cycle_delta: float = 0.10

    def __post_init__(self) -> None:
        if self.warmup_instances < 0:
            raise ValueError(
                f"warmup_instances must be >= 0, got {self.warmup_instances}"
            )
        if self.measure_instances < 1:
            raise ValueError(
                f"measure_instances must be >= 1, got {self.measure_instances}"
            )
        if self.warmup_instances + self.measure_instances < 2:
            raise ValueError(
                "need at least two executed instances per signature "
                "(warmup_instances + measure_instances >= 2) to judge steadiness"
            )
        for name in ("intensity_delta", "hit_rate_delta", "write_fraction_delta", "cycle_delta"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def empty(self) -> bool:
        """True when this config changes nothing (exact mode)."""
        return not self.enabled

    def describe(self) -> dict[str, object]:
        """Stable description for fingerprinting."""
        return {
            "warmup_instances": self.warmup_instances,
            "measure_instances": self.measure_instances,
            "intensity_delta": self.intensity_delta,
            "hit_rate_delta": self.hit_rate_delta,
            "write_fraction_delta": self.write_fraction_delta,
            "cycle_delta": self.cycle_delta,
        }


@dataclass(frozen=True)
class ShardConfig:
    """Sharded multi-process execution of one big run.

    Args:
        num_shards: event-queue partitions; 1 is exact mode and
            fingerprints as ``None``.
        axis: ``"streams"`` (one shard owns a subset of the serving
            streams), ``"devices"`` (one shard per topology device), or
            ``"auto"`` (streams when serving, devices when a topology is
            configured).
        epoch_cycles: simulated cycles each shard advances between
            synchronization barriers; boundary traffic (DRAM and fabric
            aggregates) is exchanged at each barrier and recorded as
            ``shard.*`` counters on the merged report.
        timeout_seconds: wall-clock budget per shard per epoch (and for
            startup/finalize); ``None`` waits forever.
    """

    num_shards: int = 1
    axis: str = "auto"
    epoch_cycles: int = 50_000
    timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.axis not in SHARD_AXES:
            raise ValueError(f"axis must be one of {SHARD_AXES}, got {self.axis!r}")
        if self.epoch_cycles < 1:
            raise ValueError(f"epoch_cycles must be >= 1, got {self.epoch_cycles}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )

    @property
    def empty(self) -> bool:
        """True when this config changes nothing (exact mode)."""
        return self.num_shards <= 1

    def describe(self) -> dict[str, object]:
        """Stable description for fingerprinting.

        ``timeout_seconds`` is a host-side execution knob that cannot
        change simulated results, so it stays out of the identity.
        """
        return {
            "num_shards": self.num_shards,
            "axis": self.axis,
            "epoch_cycles": self.epoch_cycles,
        }
