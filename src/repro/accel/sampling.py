"""Phase-sampled fast-forward: skip steady-state kernel repeats.

MI workloads are dominated by *repeats*: an LSTM runs the same cell
kernels once per timestep, a composed model cycles through identical
layer sequences.  The deterministic simulator recomputes each repeat
from scratch, which is pure waste once the memory system has reached
steady state.  :class:`KernelSampler` hooks the GPU's per-launch
``kernel_filter`` and, per *kernel signature* (name, static trace
shape, and an address-stream digest):

1. executes and measures the first ``warmup + measure`` instances,
   capturing the counter/cycle/event deltas each instance produced;
2. declares the signature **steady** once the last two measured deltas
   agree under the phase-detector thresholds
   (:func:`repro.adaptive.phase.phase_changed`) and their cycle deltas
   agree within ``cycle_delta``;
3. skips every later instance of a steady signature (the launch event
   simply advances to the next kernel);
4. at finalize, extrapolates the skipped instances' contribution from
   the mean of the *post-warmup* measured deltas and attaches a
   per-counter error bound derived from the spread of that basis.

Measurement needs unambiguous attribution of counter deltas to kernel
instances, so the sampler refuses to attach to runs with concurrent
streams, adaptive policy control (the controller assumes it sees every
kernel boundary), or fault injection.  Counters written once per run
with absolute semantics (``gpu.finish_cycle``, per-stream cycle marks)
are never extrapolated; the session fixes them up from the corrected
cycle count instead.
"""

from __future__ import annotations

import re
import zlib
from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.accel.config import SamplingConfig
from repro.adaptive.phase import PhaseSample, phase_changed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Simulator
    from repro.stats import StatsCollector
    from repro.workloads.trace import KernelTrace

__all__ = ["ExtrapolationResult", "KernelSampler", "extrapolate", "kernel_signature"]

#: static identity of a kernel instance; instances sharing a signature
#: issue the identical memory/compute stream and are extrapolation peers
Signature = tuple[str, int, int, int, int, int, int]

#: counters with set-once absolute semantics (cycle marks, totals set at
#: launch); extrapolating them additively would corrupt them
_ABSOLUTE_GPU = frozenset({"gpu.finish_cycle", "gpu.kernels_total"})
_ABSOLUTE_STREAM_SUFFIXES = ("cycles", "finish_cycle", "launch_cycle", "kernels_total")

#: counters attributed to an individual CU by round-robin placement
#: (``link.l1_l2.cu3.transfers`` and friends); the *group total* across
#: CUs is deterministic, but which CU a wavefront lands on rotates with
#: every prior launch, so replaying one measured instance's placement for
#: all skipped instances can move mass between members of the group
_PER_CU_COMPONENT = re.compile(r"\.cu\d+\.")


def _address_digest(kernel: "KernelTrace") -> int:
    """Deterministic digest of the kernel's ordered address stream.

    Aggregate counts alone cannot tell two same-shaped kernels apart
    when they touch *different* lines (multi-head attention issues one
    identically sized projection per head, each at its own offset);
    treating those as repeats extrapolates the wrong cache behaviour.
    The digest folds every memory instruction's access kind and line
    addresses, in program order, through CRC-32.
    """
    stream = array("q")
    for wavefront in kernel.wavefronts:
        for instruction in wavefront.memory_instructions:
            stream.append(-1 if instruction.is_store else -2)
            stream.extend(instruction.line_addresses)
    return zlib.crc32(stream.tobytes())


def kernel_signature(kernel: "KernelTrace") -> Signature:
    """The identity under which instances count as repeats.

    Static shape (wavefronts, request/op counts) plus the address-stream
    digest -- two instances match only when they would issue the same
    memory traffic to the same lines.
    """
    return (
        kernel.name,
        kernel.num_wavefronts,
        kernel.line_requests,
        kernel.vector_ops,
        kernel.load_lines,
        kernel.store_lines,
        _address_digest(kernel),
    )


def _extrapolatable(name: str) -> bool:
    """Whether a counter accumulates additively across kernel instances."""
    if name in _ABSOLUTE_GPU:
        return False
    if name.startswith("stream"):
        suffix = name.split(".", 1)[-1]
        if suffix in _ABSOLUTE_STREAM_SUFFIXES:
            return False
    return True


@dataclass
class _GroupState:
    """Measurement history of one kernel signature."""

    deltas: list[dict[str, int]] = field(default_factory=list)
    cycle_deltas: list[int] = field(default_factory=list)
    event_deltas: list[int] = field(default_factory=list)
    skipped: int = 0
    skipping: bool = False


@dataclass(frozen=True)
class ExtrapolationResult:
    """What fast-forwarding added on top of the executed simulation."""

    #: per-counter additive corrections (already rounded to ints)
    counter_additions: dict[str, int]
    #: simulated cycles the skipped instances would have taken
    cycle_addition: int
    #: queue events the skipped instances would have executed
    event_addition: int
    #: absolute error half-widths keyed by counter name plus ``"cycles"``
    error_bounds_abs: dict[str, float]
    executed_kernels: int
    skipped_kernels: int
    signatures: int

    @property
    def skipped_fraction(self) -> float:
        total = self.executed_kernels + self.skipped_kernels
        return self.skipped_kernels / total if total else 0.0


def _basis(values: list, warmup: int) -> list:
    """The post-warmup slice, falling back to everything (never empty)."""
    trimmed = values[warmup:]
    return trimmed if trimmed else values


def _group_metrics(delta: dict[str, int]) -> PhaseSample:
    """Windowed phase metrics of one measured instance delta."""
    requests = delta.get("gpu.mem_requests", 0)
    if requests <= 0:
        return PhaseSample(
            cycle=0, requests=0, arithmetic_intensity=0.0, hit_rate=0.0, write_fraction=0.0
        )
    accesses = delta.get("l2.accesses", 0)
    return PhaseSample(
        cycle=0,
        requests=requests,
        arithmetic_intensity=delta.get("gpu.vector_ops", 0) / requests,
        hit_rate=(delta.get("l2.hits", 0) / accesses) if accesses else 0.0,
        write_fraction=delta.get("gpu.store_requests", 0) / requests,
    )


def extrapolate(
    groups: dict[Signature, _GroupState], warmup: int
) -> ExtrapolationResult:
    """Turn per-signature measurement histories into counter corrections.

    For every signature with skipped instances the correction is
    ``mean(post-warmup deltas) * skipped`` and the error bound is
    ``half-spread(basis) * skipped`` -- zero when the basis never varied,
    and growing with both the basis spread and the number of instances
    extrapolated, which makes the relative bound monotone in the
    fraction of work skipped.  When the post-warmup basis has a single
    element the spread is taken over *all* measured deltas (warmup
    included), a deliberately generous bound.

    Per-CU counters (a ``.cuN.`` name component) get a second, wider
    bound: round-robin placement rotates with every prior launch, so the
    measured instances' placement is *not* representative of the skipped
    instances' even when the deltas agree perfectly.  The group total is
    conserved -- misattribution only moves mass between members -- so
    each member's honest bound is the total addition the extrapolation
    put into its group (mass it may have wrongly received, or that a
    sibling received in its stead).
    """
    additions: dict[str, float] = {}
    errors: dict[str, float] = {}
    per_cu_names: set[str] = set()
    cycle_addition = 0.0
    cycle_error = 0.0
    event_addition = 0.0
    executed = 0
    skipped = 0
    for group in groups.values():
        executed += len(group.deltas)
        skipped += group.skipped
        if not group.skipped or not group.deltas:
            continue
        basis = _basis(group.deltas, warmup)
        spread_source = basis if len(basis) > 1 else group.deltas
        names = set()
        for delta in basis:
            names.update(delta)
        for delta in group.deltas:
            per_cu_names.update(
                name for name in delta if _PER_CU_COMPONENT.search(name)
            )
        for name in names:
            if not _extrapolatable(name):
                continue
            values = [delta.get(name, 0) for delta in basis]
            additions[name] = additions.get(name, 0.0) + (
                sum(values) / len(values)
            ) * group.skipped
            spread_values = [delta.get(name, 0) for delta in spread_source]
            half_spread = (max(spread_values) - min(spread_values)) / 2
            if half_spread:
                errors[name] = errors.get(name, 0.0) + half_spread * group.skipped

        cycles = _basis(group.cycle_deltas, warmup)
        cycle_addition += (sum(cycles) / len(cycles)) * group.skipped
        cycle_spread_source = cycles if len(cycles) > 1 else group.cycle_deltas
        cycle_error += (
            (max(cycle_spread_source) - min(cycle_spread_source)) / 2
        ) * group.skipped

        events = _basis(group.event_deltas, warmup)
        event_addition += (sum(events) / len(events)) * group.skipped

    group_mass: dict[str, float] = {}
    for name, value in additions.items():
        masked = _PER_CU_COMPONENT.sub(".cu*.", name)
        if masked != name:
            group_mass[masked] = group_mass.get(masked, 0.0) + abs(value)
    for name in per_cu_names:
        masked = _PER_CU_COMPONENT.sub(".cu*.", name)
        mass = group_mass.get(masked, 0.0)
        if mass:
            errors[name] = max(errors.get(name, 0.0), mass)

    error_bounds = {name: value for name, value in errors.items() if value > 0}
    if cycle_error > 0:
        error_bounds["cycles"] = cycle_error
    return ExtrapolationResult(
        counter_additions={
            name: int(round(value)) for name, value in additions.items()
        },
        cycle_addition=int(round(cycle_addition)),
        event_addition=int(round(event_addition)),
        error_bounds_abs=error_bounds,
        executed_kernels=executed,
        skipped_kernels=skipped,
        signatures=len(groups),
    )


class KernelSampler:
    """Per-launch gate that measures, then fast-forwards, kernel repeats.

    Installed as ``gpu.kernel_filter``; the GPU calls :meth:`filter` once
    per kernel launch.  Because the sampler only attaches to
    single-stream runs, kernel executions never overlap and the counter
    movement between two consecutive filter calls belongs entirely to
    the previously launched kernel -- that is the measurement.
    """

    def __init__(
        self, config: SamplingConfig, sim: "Simulator", stats: "StatsCollector"
    ) -> None:
        self.config = config
        self.sim = sim
        self.stats = stats
        self._groups: dict[Signature, _GroupState] = {}
        # signatures keyed by kernel object identity; the stored kernel
        # reference keeps the id alive so it cannot be recycled.  Traces
        # that alias one object per kernel shape (the common steady-state
        # layout) make every lookup O(1) instead of O(trace size).
        self._signature_cache: dict[int, tuple["KernelTrace", Signature]] = {}
        self._open: Optional[Signature] = None
        self._open_snapshot: dict[str, int] = {}
        self._open_cycle = 0
        self._open_events = 0
        self._result: Optional[ExtrapolationResult] = None

    # ------------------------------------------------------------------
    def filter(self, stream_id: int, kernel: "KernelTrace") -> bool:
        """Decide one launch: True executes the kernel, False skips it."""
        if self._result is not None:
            raise RuntimeError("sampler already finalized; sessions are single-run")
        self._close_open_measurement()
        cached = self._signature_cache.get(id(kernel))
        if cached is not None and cached[0] is kernel:
            signature = cached[1]
        else:
            signature = kernel_signature(kernel)
            self._signature_cache[id(kernel)] = (kernel, signature)
        group = self._groups.setdefault(signature, _GroupState())
        config = self.config
        if not group.skipping:
            measured = len(group.deltas)
            if measured >= config.warmup_instances + config.measure_instances and self._steady(group):
                group.skipping = True
        if group.skipping:
            group.skipped += 1
            return False
        self._open = signature
        self._open_snapshot = self.stats.snapshot()
        self._open_cycle = self.sim.now
        self._open_events = self.sim.queue.executed
        return True

    def finalize(self) -> ExtrapolationResult:
        """Close the last measurement and compute the corrections."""
        if self._result is None:
            self._close_open_measurement()
            self._result = extrapolate(self._groups, self.config.warmup_instances)
        return self._result

    # ------------------------------------------------------------------
    def _close_open_measurement(self) -> None:
        if self._open is None:
            return
        group = self._groups[self._open]
        group.deltas.append(self.stats.delta_since(self._open_snapshot))
        group.cycle_deltas.append(self.sim.now - self._open_cycle)
        group.event_deltas.append(self.sim.queue.executed - self._open_events)
        self._open = None

    def _steady(self, group: _GroupState) -> bool:
        """Do the last two measured instances look like the same phase?"""
        previous, latest = group.deltas[-2], group.deltas[-1]
        config = self.config
        if phase_changed(
            _group_metrics(previous),
            _group_metrics(latest),
            intensity_delta=config.intensity_delta,
            hit_rate_delta=config.hit_rate_delta,
            write_fraction_delta=config.write_fraction_delta,
        ):
            return False
        cycles_a, cycles_b = group.cycle_deltas[-2], group.cycle_deltas[-1]
        base = max(cycles_a, cycles_b, 1)
        return abs(cycles_a - cycles_b) / base <= config.cycle_delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        skipped = sum(group.skipped for group in self._groups.values())
        return f"KernelSampler(signatures={len(self._groups)}, skipped={skipped})"
