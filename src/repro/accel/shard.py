"""Sharded multi-process simulation: one big run, many event queues.

A serving mix of N tenants or an N-device topology run is one monolithic
event queue today.  :func:`run_sharded` splits it along those natural
seams into per-shard :class:`~repro.session.SimulationSession` instances
living in dedicated worker processes, advances them in lock-stepped
*epochs* (``ShardConfig.epoch_cycles`` of simulated time per step), and
exchanges boundary-traffic aggregates at every epoch barrier -- recorded
as ``shard.*`` counters on the merged report.

Axes:

* **streams** -- each shard owns a subset of the serving streams on a
  proportional slice of the machine (CUs, L2 capacity, DRAM channels and
  L2 banks scale with the shard's stream share, mirroring
  :func:`repro.config.scaled_config`).  Requires every stream to use
  ``cu_share="partitioned"``: shared dispatch couples tenants through
  the CU scheduler, which a process boundary cannot reproduce.
* **devices** -- one shard per topology device: the workload is
  partitioned exactly as the monolithic NUMA run partitions it, then
  each device's wavefronts run on a single-device session.  Fabric
  latency between devices is not modelled across shards (remote lines
  are served by each shard's own memory), which is the declared
  approximation of this axis.

Worker lifecycle reuses the :class:`~repro.experiments.jobs`
process-pool idioms: one single-worker pool per shard (task->process
affinity for the session registry), per-call timeouts, structured
:class:`~repro.experiments.jobs.JobFailure` records on every failure
path, and pools that are *always* released without waiting when a shard
fails -- a stuck worker can never leak into later work
(:class:`contextlib.ExitStack`-managed, the fix PR 10 also applies to
``ProcessPoolBackend``).

Exact mode (``num_shards == 1``) never reaches this module:
:func:`repro.session.simulate` only dispatches here for a non-empty
:class:`~repro.accel.config.ShardConfig`.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass
from dataclasses import replace as dc_replace
from typing import Optional, Sequence, Union

from repro.accel.config import SamplingConfig, ShardConfig
from repro.config import SystemConfig, default_config
from repro.core.policies import PolicySpec, policy_by_name
from repro.core.reuse_predictor import PredictorConfig
from repro.fingerprint import fingerprint
from repro.stats.report import RunReport
from repro.streams.config import ServingMix, StreamConfig
from repro.topology.config import TopologyConfig
from repro.topology.partition import partition_trace
from repro.workloads.base import Workload
from repro.workloads.trace import KernelTrace, WorkloadTrace

__all__ = ["ShardExecutionError", "ShardTask", "run_sharded"]

#: per-stream counters with absolute (not additive) semantics; they are
#: remapped to the stream's global index but never summed
_STREAM_PREFIX = "stream"


class ShardExecutionError(RuntimeError):
    """A shard failed (crash, timeout, deadlock) during a sharded run.

    Carries structured :class:`~repro.experiments.jobs.JobFailure`
    records on :attr:`failures`, one per shard that could not complete --
    the same contract sweep backends use, so fleet tooling can treat a
    failed shard like a failed job.
    """

    def __init__(self, message: str, failures: Sequence[object]) -> None:
        super().__init__(message)
        self.failures = list(failures)


@dataclass(frozen=True)
class ShardTask:
    """Picklable description of one shard's session (the worker input)."""

    shard_id: int
    policy: Optional[PolicySpec]
    config: SystemConfig
    predictor_config: Optional[PredictorConfig]
    dbi_max_rows: Optional[int]
    sampling: Optional[SamplingConfig]
    #: streams axis: this shard's streams (local order)
    streams: Optional[tuple[StreamConfig, ...]] = None
    #: devices axis: this shard's slice of the partitioned workload
    trace: Optional[WorkloadTrace] = None

    def describe(self) -> dict[str, object]:
        return {
            "shard": self.shard_id,
            "streams": (
                None
                if self.streams is None
                else [stream.describe() for stream in self.streams]
            ),
            "workload": None if self.trace is None else self.trace.name,
            "num_cus": self.config.gpu.num_cus,
        }


# ----------------------------------------------------------------------
# worker side: one session per shard, kept alive across epoch calls.
# Each shard gets its own single-worker pool, so every call for shard i
# lands in the same process and finds its session here.
# ----------------------------------------------------------------------
_WORKER_SESSIONS: dict[int, object] = {}


def _shard_begin(task: ShardTask) -> dict[str, object]:
    """Build the shard's session and schedule its work (no time advances)."""
    # imported here, not at module level: the session module imports this
    # package's config, and workers fork with the parent's modules anyway
    from repro.session import SimulationSession

    session = SimulationSession(
        policy=task.policy,
        config=task.config,
        predictor_config=task.predictor_config,
        dbi_max_rows=task.dbi_max_rows,
        streams=task.streams,
        sampling=task.sampling,
    )
    session.begin(task.trace)
    _WORKER_SESSIONS[task.shard_id] = session
    return {"shard": task.shard_id}


def _shard_step(shard_id: int, until: int) -> dict[str, object]:
    """Advance one epoch; report progress and boundary-traffic deltas."""
    session = _WORKER_SESSIONS[shard_id]
    dram_before = session.stats.get("dram.accesses")
    remote_before = session.stats.get("topo.remote_requests")
    done = session.step(until)
    if not done and session.sim.queue.pending == 0:
        raise RuntimeError(
            f"shard {shard_id} deadlocked: its event queue drained with "
            "work outstanding"
        )
    return {
        "shard": shard_id,
        "done": done,
        "now": session.sim.now,
        "executed": session.sim.queue.executed,
        "boundary_dram": session.stats.get("dram.accesses") - dram_before,
        "boundary_remote": session.stats.get("topo.remote_requests") - remote_before,
    }


def _shard_finish(shard_id: int) -> dict[str, object]:
    """Drain trailing events, finalize, and ship the report back."""
    session = _WORKER_SESSIONS.pop(shard_id)
    session.sim.run()  # leftover post-completion events + finish hooks
    report = session.finish()
    return {
        "shard": shard_id,
        "report": report.to_dict(),
        "executed": session.sim.queue.executed,
    }


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
def _share_config(config: SystemConfig, share: int, total: int) -> SystemConfig:
    """The slice of the machine a shard owning ``share`` of ``total`` CUs
    gets: shared resources scale proportionally with the same floors as
    :func:`repro.config.scaled_config`, per-CU resources are unchanged."""
    if share == total:
        return config
    ratio = share / total
    return SystemConfig(
        gpu=dc_replace(config.gpu, num_cus=share),
        l1=config.l1,
        l2=dc_replace(
            config.l2, size_bytes=max(64 * 1024, int(config.l2.size_bytes * ratio))
        ),
        dram=dc_replace(
            config.dram, channels=max(2, int(math.ceil(config.dram.channels * ratio)))
        ),
        interconnect=dc_replace(
            config.interconnect,
            l2_banks=max(2, int(math.ceil(config.interconnect.l2_banks * ratio))),
        ),
    )


def _task_failure(task: ShardTask, exc: BaseException, phase: str):
    from repro.experiments.jobs import JobFailure

    return JobFailure(
        index=task.shard_id,
        fingerprint=fingerprint(task.describe(), kind="ShardTask"),
        job=dict(task.describe(), phase=phase),
        error=repr(exc),
        attempts=1,
    )


def _resolve_axis(
    axis: str,
    streams: Optional[tuple[StreamConfig, ...]],
    topology: Optional[TopologyConfig],
) -> str:
    if streams is not None and topology is not None:
        raise ValueError(
            "sharding a run that is both multi-stream and multi-device is "
            "not supported; shard along one seam at a time"
        )
    if axis == "auto":
        if streams is not None:
            return "streams"
        if topology is not None:
            return "devices"
        raise ValueError(
            "nothing to shard along: sharding needs a serving mix "
            "(streams axis) or a multi-device topology (devices axis)"
        )
    if axis == "streams" and streams is None:
        raise ValueError("axis='streams' needs a serving mix (streams=...)")
    if axis == "devices" and topology is None:
        raise ValueError("axis='devices' needs a multi-device topology")
    return axis


def _stream_tasks(
    shards: ShardConfig,
    streams: tuple[StreamConfig, ...],
    policy: Optional[PolicySpec],
    config: SystemConfig,
    predictor_config: Optional[PredictorConfig],
    dbi_max_rows: Optional[int],
    sampling: Optional[SamplingConfig],
) -> tuple[list[ShardTask], list[list[int]]]:
    num_streams = len(streams)
    if shards.num_shards > num_streams:
        raise ValueError(
            f"cannot split {num_streams} stream(s) into {shards.num_shards} "
            "shards; each shard needs at least one stream"
        )
    if any(stream.cu_share != "partitioned" for stream in streams):
        raise ValueError(
            "streams-axis sharding requires cu_share='partitioned' on every "
            "stream: shared dispatch couples tenants through the CU "
            "scheduler, which a process boundary cannot reproduce"
        )
    total_cus = config.gpu.num_cus
    if total_cus % num_streams:
        raise ValueError(
            f"{total_cus} CUs do not divide evenly among {num_streams} "
            "partitioned streams; sharding needs the exact per-stream share"
        )
    cus_per_stream = total_cus // num_streams
    assignment = [
        list(range(shard_id, num_streams, shards.num_shards))
        for shard_id in range(shards.num_shards)
    ]
    tasks = []
    for shard_id, indices in enumerate(assignment):
        shard_streams = tuple(streams[index] for index in indices)
        tasks.append(
            ShardTask(
                shard_id=shard_id,
                policy=policy,
                config=_share_config(
                    config, cus_per_stream * len(indices), total_cus
                ),
                predictor_config=predictor_config,
                dbi_max_rows=dbi_max_rows,
                sampling=sampling,
                streams=shard_streams,
            )
        )
    return tasks, assignment


def _device_tasks(
    shards: ShardConfig,
    workload: Union[Workload, WorkloadTrace, None],
    topology: TopologyConfig,
    policy: Optional[PolicySpec],
    config: SystemConfig,
    predictor_config: Optional[PredictorConfig],
    dbi_max_rows: Optional[int],
    sampling: Optional[SamplingConfig],
) -> list[ShardTask]:
    if workload is None:
        raise ValueError("devices-axis sharding needs a workload")
    if shards.num_shards != topology.num_devices:
        raise ValueError(
            f"devices-axis sharding needs one shard per device: got "
            f"{shards.num_shards} shards for {topology.num_devices} devices"
        )
    trace = workload.build_trace() if isinstance(workload, Workload) else workload
    partitioned = partition_trace(
        trace, topology, line_bytes=config.l2.line_bytes
    )
    tasks = []
    for device in range(topology.num_devices):
        kernels = []
        for kernel in partitioned.kernels:
            wavefronts = [
                dc_replace(program, device=None)
                for program in kernel.wavefronts
                if program.device == device
            ]
            if wavefronts:
                kernels.append(KernelTrace(name=kernel.name, wavefronts=wavefronts))
        tasks.append(
            ShardTask(
                shard_id=device,
                policy=policy,
                config=config,  # topology configs describe one device already
                predictor_config=predictor_config,
                dbi_max_rows=dbi_max_rows,
                sampling=sampling,
                trace=WorkloadTrace(name=trace.name, kernels=kernels),
            )
        )
    return tasks


def _remap_stream_counter(name: str, local_to_global: dict[int, int]) -> str:
    """``stream<local>.x`` -> ``stream<global>.x`` (identity otherwise)."""
    if not name.startswith(_STREAM_PREFIX):
        return name
    head, _, tail = name.partition(".")
    digits = head[len(_STREAM_PREFIX):]
    if not digits.isdigit() or not tail:
        return name
    return f"{_STREAM_PREFIX}{local_to_global[int(digits)]}.{tail}"


def _merge_reports(
    payloads: list[dict[str, object]],
    tasks: list[ShardTask],
    assignment: Optional[list[list[int]]],
    label: str,
    config: SystemConfig,
    shards: ShardConfig,
    epochs: int,
    boundary_dram: int,
    boundary_remote: int,
    max_skew: int,
) -> RunReport:
    reports = [RunReport.from_dict(payload["report"]) for payload in payloads]
    counters: dict[str, int] = {}
    error_estimates: dict[str, float] = {}
    executed_kernels = skipped_kernels = 0
    executed_events = represented_events = 0
    sampled = False
    for task, payload, report in zip(tasks, payloads, reports):
        local_to_global = (
            {local: global_ for local, global_ in enumerate(assignment[task.shard_id])}
            if assignment is not None
            else {}
        )
        for name, value in report.counters.items():
            merged_name = (
                _remap_stream_counter(name, local_to_global)
                if local_to_global
                else name
            )
            if merged_name == "gpu.finish_cycle":
                counters[merged_name] = max(counters.get(merged_name, 0), value)
            else:
                # per-stream counters live in exactly one shard, so plain
                # summation is also a remap-preserving copy for them
                counters[merged_name] = counters.get(merged_name, 0) + value
        for name, value in report.error_estimates.items():
            merged_name = (
                _remap_stream_counter(name, local_to_global)
                if local_to_global
                else name
            )
            error_estimates[merged_name] = max(
                error_estimates.get(merged_name, 0.0), value
            )
        shard_events = int(payload["executed"])
        executed_events += shard_events
        if report.sampling:
            sampled = True
            executed_kernels += int(report.sampling.get("executed_kernels", 0))
            skipped_kernels += int(report.sampling.get("skipped_kernels", 0))
            represented_events += int(
                report.sampling.get("represented_events", shard_events)
            )
        else:
            executed_kernels += report.get("gpu.kernels_launched")
            represented_events += shard_events
    cycles = max(report.cycles for report in reports)
    counters["gpu.finish_cycle"] = max(
        counters.get("gpu.finish_cycle", 0), cycles
    )
    counters["shard.count"] = len(tasks)
    counters["shard.epochs"] = epochs
    counters["shard.boundary_dram"] = boundary_dram
    if boundary_remote:
        counters["shard.boundary_remote"] = boundary_remote
    counters["shard.max_skew_cycles"] = max_skew
    total_kernels = executed_kernels + skipped_kernels
    merged = RunReport(
        workload=label,
        policy=reports[0].policy,
        cycles=cycles,
        counters=counters,
        clock_ghz=config.gpu.clock_ghz,
        wavefront_size=config.gpu.wavefront_size,
    )
    merged.error_estimates = error_estimates
    merged.sampling = {
        "mode": "phase_sampled+sharded" if sampled else "sharded",
        "shards": len(tasks),
        "executed_kernels": executed_kernels,
        "skipped_kernels": skipped_kernels,
        "skipped_fraction": (
            skipped_kernels / total_kernels if total_kernels else 0.0
        ),
        "executed_events": executed_events,
        "represented_events": represented_events,
    }
    return merged


def run_sharded(
    workload: Union[Workload, WorkloadTrace, None] = None,
    policy: Union[PolicySpec, str, None] = None,
    config: Optional[SystemConfig] = None,
    predictor_config: Optional[PredictorConfig] = None,
    dbi_max_rows: Optional[int] = None,
    adaptive=None,
    topology: Optional[TopologyConfig] = None,
    streams: Union[ServingMix, Sequence[StreamConfig], None] = None,
    faults=None,
    sampling: Optional[SamplingConfig] = None,
    shards: Optional[ShardConfig] = None,
    telemetry=None,
    obs=None,
) -> RunReport:
    """Execute one run as epoch-synchronized shard processes and merge.

    Mirrors :func:`repro.session.simulate`'s signature (it dispatches
    here when ``shards`` is non-empty); global subsystems that a process
    boundary cannot split -- adaptive control, fault plans with events,
    telemetry observers, the obs layer -- are rejected explicitly.
    """
    if shards is None or shards.empty:
        raise ValueError("run_sharded needs a ShardConfig with num_shards > 1")
    if adaptive is not None:
        raise ValueError(
            "sharded execution does not compose with adaptive policy "
            "control: the controller's duel state is global to the run"
        )
    if faults is not None and not getattr(faults, "empty", False):
        raise ValueError(
            "sharded execution does not compose with fault injection: the "
            "fault schedule addresses the whole system"
        )
    if telemetry is not None and getattr(telemetry, "enabled", True):
        raise ValueError("sharded execution does not support telemetry observers")
    if obs is not None and getattr(obs, "enabled", True):
        raise ValueError("sharded execution does not support the obs layer")
    if policy is None:
        raise ValueError("a sharded run needs a policy")
    resolved_policy = policy_by_name(policy) if isinstance(policy, str) else policy
    config = config or default_config()
    sampling = sampling if sampling is not None and not sampling.empty else None

    if streams is None:
        stream_tuple: Optional[tuple[StreamConfig, ...]] = None
        label = ""
    elif isinstance(streams, ServingMix):
        stream_tuple = streams.streams
        label = streams.name
    else:
        stream_tuple = tuple(streams)
        label = "+".join(stream.display for stream in stream_tuple)

    axis = _resolve_axis(shards.axis, stream_tuple, topology)
    assignment: Optional[list[list[int]]] = None
    if axis == "streams":
        if workload is not None:
            raise ValueError(
                "a sharded serving run derives its workloads from the "
                "stream configurations; pass no workload"
            )
        tasks, assignment = _stream_tasks(
            shards,
            stream_tuple,
            resolved_policy,
            config,
            predictor_config,
            dbi_max_rows,
            sampling,
        )
    else:
        tasks = _device_tasks(
            shards,
            workload,
            topology,
            resolved_policy,
            config,
            predictor_config,
            dbi_max_rows,
            sampling,
        )
        label = tasks[0].trace.name if tasks[0].trace is not None else label

    timeout = shards.timeout_seconds
    epochs = 0
    boundary_dram = boundary_remote = 0
    max_skew = 0
    payloads: list[Optional[dict[str, object]]] = [None] * len(tasks)
    with ExitStack() as stack:
        pools: list[ProcessPoolExecutor] = []
        for task in tasks:
            pool = ProcessPoolExecutor(max_workers=1)
            # released unconditionally, without waiting: a failed or stuck
            # shard must never leak its worker process past this run
            stack.callback(pool.shutdown, wait=False, cancel_futures=True)
            pools.append(pool)

        def call(task: ShardTask, phase: str, fn, *args):
            try:
                return pools[task.shard_id].submit(fn, *args).result(timeout=timeout)
            except BaseException as exc:
                failure = _task_failure(task, exc, phase)
                raise ShardExecutionError(
                    f"shard {task.shard_id} failed during {phase}: {exc!r}",
                    [failure],
                ) from exc

        # startup barrier: every shard builds its session and schedules
        # its work before any simulated time advances
        begin_futures = [
            pools[task.shard_id].submit(_shard_begin, task) for task in tasks
        ]
        for task, future in zip(tasks, begin_futures):
            try:
                future.result(timeout=timeout)
            except BaseException as exc:
                failure = _task_failure(task, exc, "begin")
                raise ShardExecutionError(
                    f"shard {task.shard_id} failed during begin: {exc!r}", [failure]
                ) from exc

        active = {task.shard_id for task in tasks}
        until = shards.epoch_cycles
        while active:
            epochs += 1
            step_futures = {
                shard_id: pools[shard_id].submit(_shard_step, shard_id, until)
                for shard_id in sorted(active)
            }
            fronts: list[int] = []
            for shard_id, future in step_futures.items():
                try:
                    result = future.result(timeout=timeout)
                except BaseException as exc:
                    failure = _task_failure(tasks[shard_id], exc, "step")
                    raise ShardExecutionError(
                        f"shard {shard_id} failed during epoch {epochs}: {exc!r}",
                        [failure],
                    ) from exc
                boundary_dram += int(result["boundary_dram"])
                boundary_remote += int(result["boundary_remote"])
                if result["done"]:
                    active.discard(shard_id)
                else:
                    fronts.append(int(result["now"]))
            if len(fronts) > 1:
                max_skew = max(max_skew, max(fronts) - min(fronts))
            until += shards.epoch_cycles

        for task in tasks:
            payloads[task.shard_id] = call(task, "finish", _shard_finish, task.shard_id)

    assert all(payload is not None for payload in payloads)
    return _merge_reports(
        payloads,  # type: ignore[arg-type]
        tasks,
        assignment,
        label,
        config,
        shards,
        epochs,
        boundary_dram,
        boundary_remote,
        max_skew,
    )
