"""Acceleration modes: phase-sampled fast-forward and sharded execution.

Two composable ways to trade a little fidelity for a lot of wall-clock:

* :class:`SamplingConfig` -- skip steady-state kernel repeats and
  extrapolate their counters with per-counter error estimates
  (:mod:`repro.accel.sampling`).
* :class:`ShardConfig` -- split a serving mix or multi-device run into
  per-shard worker processes synchronized at epoch boundaries
  (:mod:`repro.accel.shard`).

Both default to *off*; exact mode (sampling disabled, one shard) is
bit-identical to a run that never heard of this package.
"""

from repro.accel.config import SHARD_AXES, SamplingConfig, ShardConfig
from repro.accel.sampling import ExtrapolationResult, KernelSampler, kernel_signature

__all__ = [
    "SHARD_AXES",
    "SamplingConfig",
    "ShardConfig",
    "ExtrapolationResult",
    "KernelSampler",
    "kernel_signature",
]
