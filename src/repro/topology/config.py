"""Configuration of multi-device NUMA topologies.

A :class:`TopologyConfig` describes how many devices (GPU chiplets or
discrete GPUs) a simulated system is composed of and what the inter-device
fabric between them looks like.  Each device owns one slice of the
distributed L2 and one partition of the DRAM system; cache lines are
interleaved across the partitions in fixed-size chunks, so every line has
exactly one *home* device and accesses from any other device pay the
fabric's latency/bandwidth penalty on the way to the home slice.

Like :class:`~repro.adaptive.config.AdaptiveConfig`, the topology is a
frozen dataclass of primitives: :func:`repro.fingerprint.fingerprint`
gives it a stable content hash, and topology runs key into the persistent
result store exactly like static and adaptive runs.

``num_devices == 1`` is the degenerate topology: no fabric, no remote
accesses, and -- by construction, enforced per golden scenario in
``tests/integration/test_core_equivalence.py`` -- bit-identical behaviour
to a run without any topology at all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fingerprint import fingerprint

__all__ = [
    "TopologyConfig",
    "TOPOLOGIES",
    "TOPOLOGY_NAMES",
    "topology_by_name",
    "single_device",
]

#: modes the workload partitioner understands
PARTITION_MODES = ("data_parallel",)


@dataclass(frozen=True)
class TopologyConfig:
    """One multi-device system topology.

    Attributes:
        num_devices: number of devices (chiplets or GPUs).  Each device
            owns ``SystemConfig.gpu.num_cus`` compute units, one L2 slice
            of ``SystemConfig.l2`` geometry and one DRAM partition of
            ``SystemConfig.dram`` geometry -- the system configuration is
            interpreted *per device*, so sweeping ``num_devices`` grows
            the hardware under a fixed workload (strong scaling).
        interleave_lines: cache lines per interleave chunk.  Consecutive
            chunks are homed on consecutive devices round-robin; a chunk of
            32 lines (2 KB, one default DRAM row) keeps whole DRAM rows on
            one device so interleaving never splits row locality.
        remote_latency_cycles: one-way latency a request pays to cross the
            fabric from its issuing device to a remote home slice (the
            response path is folded in, like every other link in the
            model).
        fabric_requests_per_cycle: bandwidth of each directed inter-device
            fabric link in requests per cycle; values below 1.0 model the
            narrower off-chip links of discrete multi-GPU systems.
        replicate_weights: enable the partitioner's replicated-weights
            mode: cache lines that are loaded by wavefronts of two or more
            devices and never stored anywhere in the workload (weight
            tensors, in the MI workloads studied) are given one private,
            locally-homed copy per device, trading footprint for locality
            exactly the way data-parallel training replicates weights.
        name: registry/display name ("" for ad-hoc configurations).
    """

    num_devices: int = 1
    interleave_lines: int = 32
    remote_latency_cycles: int = 100
    fabric_requests_per_cycle: float = 0.5
    partition: str = "data_parallel"
    replicate_weights: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be positive, got {self.num_devices}")
        if self.interleave_lines < 1:
            raise ValueError(
                f"interleave_lines must be positive, got {self.interleave_lines}"
            )
        if self.remote_latency_cycles < 0:
            raise ValueError("remote_latency_cycles must be non-negative")
        if self.fabric_requests_per_cycle <= 0:
            raise ValueError("fabric_requests_per_cycle must be positive")
        if self.partition not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition mode {self.partition!r}; "
                f"known modes: {', '.join(PARTITION_MODES)}"
            )

    # ------------------------------------------------------------------
    @property
    def single(self) -> bool:
        """True for the degenerate one-device topology (no fabric)."""
        return self.num_devices == 1

    @property
    def label(self) -> str:
        """Display name used in figures and CLI output."""
        return self.name or f"{self.num_devices}dev"

    def with_devices(self, num_devices: int) -> "TopologyConfig":
        """This topology's fabric parameters at a different device count.

        Used by the scaling sweep to hold the fabric fixed while the
        device count varies; the registry name is dropped because the
        result no longer matches the named entry.
        """
        return replace(self, num_devices=num_devices, name="")

    def fingerprint(self) -> str:
        """Stable content hash over every *physical* topology parameter.

        Used by :meth:`repro.experiments.jobs.JobSpec.fingerprint` so two
        runs differing in any knob (device count, fabric latency,
        interleave granularity, ...) never share a result-store entry.
        The display-only ``name`` is excluded: a registered topology and
        an ad-hoc one with identical physics simulate identically and
        must share cached results.
        """
        return fingerprint(self.describe(), kind="TopologyConfig")

    def describe(self) -> dict[str, object]:
        """Primitive summary used by ``list --json`` and the CLI."""
        return {
            "num_devices": self.num_devices,
            "interleave_lines": self.interleave_lines,
            "remote_latency_cycles": self.remote_latency_cycles,
            "fabric_requests_per_cycle": self.fabric_requests_per_cycle,
            "partition": self.partition,
            "replicate_weights": self.replicate_weights,
        }


def single_device() -> TopologyConfig:
    """The degenerate topology (used by equivalence tests and as a default)."""
    return TOPOLOGIES["single"]


#: registered topologies: chiplet fabrics are low-latency and wide (on-
#: package links); multi-GPU fabrics pay off-package latency and share
#: narrower links.  The CLI exposes these by name; the scaling sweep uses
#: ``with_devices`` to move along the device axis of either family.
TOPOLOGIES: dict[str, TopologyConfig] = {
    "single": TopologyConfig(num_devices=1, name="single"),
    "dual-chiplet": TopologyConfig(
        num_devices=2,
        remote_latency_cycles=60,
        fabric_requests_per_cycle=1.0,
        name="dual-chiplet",
    ),
    "quad-chiplet": TopologyConfig(
        num_devices=4,
        remote_latency_cycles=60,
        fabric_requests_per_cycle=1.0,
        name="quad-chiplet",
    ),
    "dual-gpu": TopologyConfig(
        num_devices=2,
        remote_latency_cycles=200,
        fabric_requests_per_cycle=0.25,
        name="dual-gpu",
    ),
    "quad-gpu": TopologyConfig(
        num_devices=4,
        remote_latency_cycles=200,
        fabric_requests_per_cycle=0.25,
        name="quad-gpu",
    ),
}

TOPOLOGY_NAMES: tuple[str, ...] = tuple(TOPOLOGIES)


def topology_by_name(name: str) -> TopologyConfig:
    """Look up a registered topology by name (case-insensitive)."""
    for known, topology in TOPOLOGIES.items():
        if known.lower() == name.lower():
            return topology
    raise KeyError(
        f"unknown topology {name!r}; known topologies: {', '.join(TOPOLOGY_NAMES)}"
    )
