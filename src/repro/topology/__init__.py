"""Multi-device NUMA topology subsystem.

Composes the single-device simulated system into chiplet / multi-GPU
hierarchies: a fingerprintable :class:`~repro.topology.config
.TopologyConfig` describes N devices -- each owning one L2 slice and one
DRAM partition -- joined by a latency/bandwidth-modelled fabric; cache
lines are interleaved across the partitions
(:class:`~repro.memory.address_mapping.DeviceInterleave`); and the
workload partitioner (:mod:`repro.topology.partition`) shards each
kernel's wavefronts across the devices data-parallel style, optionally
replicating shared read-only (weight) lines so GEMM/MHA weight reuse
stays device-local.

Entry points: ``simulate(workload, policy, topology=...)``, the
``repro-gpu-cache topology`` CLI subcommand, and
:func:`repro.experiments.scaling.figure_scaling`.
"""

from repro.topology.config import (
    TOPOLOGIES,
    TOPOLOGY_NAMES,
    TopologyConfig,
    single_device,
    topology_by_name,
)
from repro.topology.partition import (
    device_wavefront_counts,
    partition_trace,
    shared_read_only_lines,
)

__all__ = [
    "TopologyConfig",
    "TOPOLOGIES",
    "TOPOLOGY_NAMES",
    "topology_by_name",
    "single_device",
    "partition_trace",
    "device_wavefront_counts",
    "shared_read_only_lines",
]
