"""Workload partitioning across devices.

The partitioner turns a single-device :class:`~repro.workloads.trace
.WorkloadTrace` into a multi-device one: every kernel's wavefronts are
split across the devices data-parallel style (contiguous blocks, the way a
data-parallel launch shards its batch), and each wavefront is tagged with
its device so the dispatcher keeps it on that device's compute units.

Addresses are *not* rewritten in the default mode: the interleave decides
where every line is homed, and whatever fraction of a wavefront's traffic
lands on remote chunks pays the fabric penalty -- exactly the NUMA
behaviour the topology subsystem exists to measure.  The optional
*replicated-weights* mode rewrites only the loads of lines that are (a)
read by wavefronts of two or more devices and (b) never stored anywhere in
the workload: each device gets a private, locally-homed copy, mirroring
how data-parallel training replicates weight tensors so GEMM/MHA weight
reuse stays local while activations keep paying the fabric.

With one device the partitioner is the identity (the input trace object is
returned unchanged), which is part of the one-device bit-identical
guarantee.
"""

from __future__ import annotations

from collections import defaultdict

from repro.topology.config import TopologyConfig
from repro.workloads.trace import (
    KernelTrace,
    MemInstr,
    WavefrontProgram,
    WorkloadTrace,
)

__all__ = ["partition_trace", "device_wavefront_counts", "shared_read_only_lines"]


def _block_bounds(count: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into ``parts`` contiguous, balanced blocks."""
    base, extra = divmod(count, parts)
    bounds = []
    start = 0
    for part in range(parts):
        size = base + (1 if part < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def shared_read_only_lines(trace: WorkloadTrace, num_devices: int) -> set[int]:
    """Line addresses loaded by >= 2 devices' wavefronts and never stored.

    Device attribution uses the same contiguous block split as
    :func:`partition_trace`, so the two stay consistent by construction.
    """
    stored: set[int] = set()
    loader_devices: dict[int, set[int]] = defaultdict(set)
    for kernel in trace.kernels:
        bounds = _block_bounds(kernel.num_wavefronts, num_devices)
        for device, (start, end) in enumerate(bounds):
            for program in kernel.wavefronts[start:end]:
                for instr in program.memory_instructions:
                    if instr.is_store:
                        stored.update(instr.line_addresses)
                    else:
                        for address in instr.line_addresses:
                            loader_devices[address].add(device)
    return {
        address
        for address, devices in loader_devices.items()
        if len(devices) >= 2 and address not in stored
    }


class _WeightReplicator:
    """Allocates per-device replica addresses for shared read-only lines.

    Replicas are placed in fresh interleave chunks above every address the
    trace touches, aligned so a replica for device ``d`` is homed on ``d``.
    Lines that share an original chunk share a replica chunk slot, so the
    spatial locality of a weight tensor survives replication.
    """

    def __init__(
        self, shared: set[int], max_address: int, topology: TopologyConfig, line_bytes: int
    ) -> None:
        self.shared = shared
        self.line_bytes = line_bytes
        self.chunk_bytes = line_bytes * topology.interleave_lines
        self.num_devices = topology.num_devices
        # first chunk index past the trace, rounded to a device-0 home
        first_free = max_address // self.chunk_bytes + 1
        self.base_chunk = ((first_free + self.num_devices - 1) // self.num_devices) * self.num_devices
        self._slot_of: dict[int, int] = {}

    def replica(self, address: int, device: int) -> int:
        """Replica address of ``address`` for ``device`` (allocating lazily)."""
        chunk, offset = divmod(address, self.chunk_bytes)
        slot = self._slot_of.setdefault(chunk, len(self._slot_of))
        replica_chunk = self.base_chunk + slot * self.num_devices + device
        return replica_chunk * self.chunk_bytes + offset


def partition_trace(
    trace: WorkloadTrace, topology: TopologyConfig, line_bytes: int = 64
) -> WorkloadTrace:
    """Split ``trace`` across ``topology.num_devices`` devices.

    Every kernel's wavefronts are divided into contiguous, balanced blocks
    (device 0 gets the first block, and so on) and tagged with their
    device.  In replicated-weights mode the loads of shared read-only
    lines are additionally remapped to per-device local copies.  The
    one-device split returns the input trace unchanged.
    """
    if topology.num_devices == 1:
        return trace

    replicator = None
    if topology.replicate_weights:
        shared = shared_read_only_lines(trace, topology.num_devices)
        if shared:
            max_address = max(
                address
                for kernel in trace.kernels
                for program in kernel.wavefronts
                for instr in program.memory_instructions
                for address in instr.line_addresses
            )
            replicator = _WeightReplicator(shared, max_address, topology, line_bytes)

    partitioned = WorkloadTrace(name=trace.name)
    for kernel in trace.kernels:
        new_kernel = KernelTrace(name=kernel.name)
        bounds = _block_bounds(kernel.num_wavefronts, topology.num_devices)
        for device, (start, end) in enumerate(bounds):
            for program in kernel.wavefronts[start:end]:
                instructions = program.instructions
                if replicator is not None:
                    instructions = [
                        _remap_loads(instr, device, replicator) for instr in instructions
                    ]
                new_kernel.add_wavefront(
                    WavefrontProgram(
                        instructions=list(instructions),
                        workgroup_id=program.workgroup_id,
                        device=device,
                    )
                )
        partitioned.add_kernel(new_kernel)
    return partitioned


def _remap_loads(instr, device: int, replicator: _WeightReplicator):
    """Point a load's shared read-only lines at ``device``'s replicas."""
    if not isinstance(instr, MemInstr) or instr.is_store:
        return instr
    shared = replicator.shared
    if not any(address in shared for address in instr.line_addresses):
        return instr
    return MemInstr(
        access=instr.access,
        line_addresses=tuple(
            replicator.replica(address, device) if address in shared else address
            for address in instr.line_addresses
        ),
        pc=instr.pc,
    )


def device_wavefront_counts(trace: WorkloadTrace) -> dict[int, int]:
    """Wavefronts per device tag across the whole trace (None keys excluded)."""
    counts: dict[int, int] = defaultdict(int)
    for kernel in trace.kernels:
        for program in kernel.wavefronts:
            if program.device is not None:
                counts[program.device] += 1
    return dict(counts)
