"""Command-line interface.

Installed as ``repro-gpu-cache`` (see ``pyproject.toml``) and runnable as
``python -m repro.cli``.  Subcommands:

* ``list``      -- show the available workloads, policies, adaptive
  candidates and registered topologies (``--json`` for scripts and CI).
* ``run``       -- simulate one workload under one policy (optionally on a
  registered multi-device topology) and print the report.
* ``sweep``     -- simulate a workload under several policies and print a
  normalized comparison.
* ``sweep-all`` -- materialize the full (workload x policy) grid once and
  print every figure derived from it.
* ``adaptive``  -- run the online dynamic-policy study (Figure 14): every
  workload under set-dueling + phase-aware policy selection, compared with
  the static envelope and the paper's optimization stack.
* ``topology``  -- run the device-scaling study: policies across 1/2/4-device
  NUMA systems (speedup + remote-traffic fraction per cell).
* ``serve``     -- run the multi-tenant interference study: serving mixes of
  concurrent streams under shared vs partitioned CU dispatch (per-tenant
  slowdown + unfairness per cell).
* ``faults``    -- run the resilience study: serving mixes under deterministic
  fault plans (link brownouts, device outages, DRAM storms, tenant churn),
  reporting slowdown + availability per cell.
* ``trace``     -- record one fully instrumented run: a Chrome/Perfetto
  trace timeline (``--out``), optional windowed counter metrics, and
  host-side simulator profiling (always on; ``--telemetry-out``).
* ``figure``    -- regenerate one of the paper's figures (4-13) as a text table.
* ``table``     -- print Table 1 (system configuration) or Table 2 (workloads).
* ``cache``     -- persistent result-store lifecycle: ``stats``, ``clear``,
  ``prune --max-age-days N``.
* ``ledger``    -- cross-run provenance registry: ``list`` recent runs,
  ``show`` one entry, ``prune`` old ones.  Runs and sweeps append to it via
  ``--ledger`` (or ``$REPRO_LEDGER``).
* ``diff``      -- counter-for-counter comparison of two runs (report files,
  store fingerprints or ledger references); ``--fail-on-drift`` for CI.
* ``bench``     -- the regression sentinel: ``record`` a median-of-N
  throughput measurement into ``BENCH_history.jsonl``, ``check`` it against
  the committed baseline and the history's robust (median - k*MAD) floor.

``--alerts`` (on ``run``/``serve``/``faults``/``trace``) runs the anomaly
detectors -- L2 hit-rate cliffs, per-tenant starvation under shared
dispatch, availability-budget breaches -- over the run and surfaces the
findings in the report/summary.  ``--log-level``/``--log-file``/
``--log-json`` enable run-scoped structured logging (executor retries,
fault strikes); logging is off by default and changes no results.

The global ``--jobs N`` flag fans independent simulations out across ``N``
worker processes, and ``--cache-dir`` points sweeps at a persistent result
store so repeated invocations never re-simulate a finished grid cell
(``sweep-all`` defaults to the conventional ``~/.cache/repro-gpu-cache``
store; pass ``--no-cache`` to opt out).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.adaptive import AdaptiveConfig
from repro.config import default_config, scaled_config
from repro.core.policies import ALL_POLICIES, STATIC_POLICIES, policy_by_name
from repro.experiments import (
    ExperimentRunner,
    adaptive_summary,
    figure14_adaptive,
    figure4_gvops,
    figure5_gmrs,
    figure6_execution_time,
    figure7_dram_accesses,
    figure8_cache_stalls,
    figure9_row_hit_rate,
    figure10_execution_time,
    figure11_dram_accesses,
    figure12_cache_stalls,
    figure13_row_hit_rate,
    render_series_table,
    table1_system_configuration,
    table2_workloads,
)
from repro.experiments.render import render_kv_table
from repro.experiments.scaling import (
    SCALING_DEVICES,
    SCALING_WORKLOADS,
    figure_scaling,
    scaling_artifact,
    scaling_series,
    scaling_summary,
)
from repro.experiments.interference import (
    CU_MODES,
    INTERFERENCE_POLICIES,
    figure_interference,
    interference_artifact,
    interference_series,
    interference_summary,
    mix_is_partitionable,
)
from repro.experiments.resilience import (
    DEFAULT_RESILIENCE_MIXES,
    DEFAULT_RESILIENCE_PLANS,
    RESILIENCE_POLICIES,
    figure_resilience,
    plan_is_runnable,
    resilience_artifact,
    resilience_series,
    resilience_summary,
)
from repro.experiments.store import ResultStore, default_cache_dir
from repro.faults import FAULT_PLAN_NAMES, FAULT_PLANS, fault_plan_by_name
from repro.ioutil import atomic_write_json
from repro.log import configure as configure_logging
from repro.accel import SamplingConfig, ShardConfig
from repro.obs import (
    CORE_BENCHMARK,
    EFFECTIVE_BENCHMARK,
    AlertConfig,
    ObsConfig,
    RunLedger,
    append_history,
    committed_baseline,
    default_history_path,
    diff_reports,
    evaluate_measurement,
    load_history,
    measure_core_throughput,
    measure_effective_throughput,
    render_diff_markdown,
    render_diff_table,
    resolve_report,
)
from repro.session import SimulationSession, simulate
from repro.telemetry import TelemetryConfig, validate_trace
from repro.streams import MIX_NAMES, SERVING_MIXES, mix_by_name
from repro.topology import TOPOLOGIES, TOPOLOGY_NAMES, TopologyConfig, topology_by_name
from repro.workloads.registry import WORKLOAD_NAMES, get_workload

__all__ = ["main", "build_parser"]

_FIGURES = {
    "4": ("Figure 4: compute bandwidth (GVOPS), CacheR", figure4_gvops, "{:.1f}"),
    "5": ("Figure 5: memory request bandwidth (GMR/s), CacheR", figure5_gmrs, "{:.3f}"),
    "6": ("Figure 6: execution time normalized to Uncached", figure6_execution_time, "{:.3f}"),
    "7": ("Figure 7: DRAM accesses normalized to Uncached", figure7_dram_accesses, "{:.3f}"),
    "8": ("Figure 8: cache stalls per memory request", figure8_cache_stalls, "{:.3f}"),
    "9": ("Figure 9: DRAM row-buffer hit ratio", figure9_row_hit_rate, "{:.3f}"),
    "10": ("Figure 10: execution time normalized to best static", figure10_execution_time, "{:.3f}"),
    "11": ("Figure 11: DRAM accesses normalized to Uncached", figure11_dram_accesses, "{:.3f}"),
    "12": ("Figure 12: cache stalls per memory request", figure12_cache_stalls, "{:.3f}"),
    "13": ("Figure 13: DRAM row-buffer hit ratio", figure13_row_hit_rate, "{:.3f}"),
}


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    """Accept the executor flags after the subcommand as well.

    ``SUPPRESS`` keeps an unset subcommand-level flag from clobbering the
    value the global parser already recorded, so both
    ``repro-gpu-cache --jobs 4 sweep-all`` and
    ``repro-gpu-cache sweep-all --jobs 4`` work.
    """
    parser.add_argument(
        "--jobs",
        type=int,
        default=argparse.SUPPRESS,
        metavar="N",
        help="worker processes for sweeps (default: 1, serial)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=argparse.SUPPRESS,
        metavar="SECS",
        help="with --jobs > 1, abandon a batch's stragglers after SECS seconds",
    )
    parser.add_argument(
        "--job-retries",
        type=int,
        default=argparse.SUPPRESS,
        metavar="N",
        help="with --jobs > 1, retry dead or hung jobs N times on a fresh pool",
    )
    parser.add_argument(
        "--cache-dir",
        default=argparse.SUPPRESS,
        metavar="DIR",
        help="persistent result store directory",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        default=argparse.SUPPRESS,
        help="disable the persistent result store",
    )
    parser.add_argument(
        "--telemetry-out",
        default=argparse.SUPPRESS,
        metavar="FILE",
        help="write executor telemetry (per-job wall times, worker "
        "utilization, store hits, retries) as JSON",
    )
    parser.add_argument(
        "--ledger",
        default=argparse.SUPPRESS,
        metavar="FILE",
        help="append provenance entries for every simulated cell (plus a "
        "sweep aggregate) to this JSONL run ledger",
    )


def _add_trace_options(parser: argparse.ArgumentParser, replay: bool = False) -> None:
    """The per-run telemetry flags ``run``/``serve``/``faults`` share.

    On the study commands (``replay=True``) the flags drive an inline
    traced replay of the study's first runnable cell after the sweep
    itself finishes -- sweep cells execute in worker processes (and may be
    served from the store), so the trace comes from one designated
    re-simulation instead.
    """
    target = "a traced replay of the first runnable cell" if replay else "the run"
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help=f"record a Chrome/Perfetto trace of {target} into FILE",
    )
    parser.add_argument(
        "--metrics-interval", type=int, default=None, metavar="CYCLES",
        help="sample windowed counter time-series every CYCLES cycles "
        + (
            "(embedded in the trace artifact; needs --trace-out)"
            if replay
            else "(attached to the report's 'metrics' field)"
        ),
    )
    parser.add_argument(
        "--alerts", action="store_true",
        help=f"run the anomaly detectors (hit-rate cliffs, tenant "
        f"starvation, availability breaches) over {target} and surface "
        "the findings (implies windowed metrics sampling)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-gpu-cache",
        description="GPU cache-policy reproduction for MI workloads (IISWC 2019)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    parser.add_argument("--cus", type=int, default=None, help="number of compute units")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweeps (default: 1, serial)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="with --jobs > 1, abandon a batch's stragglers after SECS "
        "seconds (default: no timeout)",
    )
    parser.add_argument(
        "--job-retries",
        type=int,
        default=0,
        metavar="N",
        help="with --jobs > 1, retry dead or hung jobs N times on a "
        "fresh pool (default: 0)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent result store directory (default: none, except sweep-all)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result store even for sweep-all",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="FILE",
        help="write executor telemetry (per-job wall times, worker "
        "utilization, store hits, retries) as JSON",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help="append run/job provenance entries to this JSONL run ledger "
        "(inspect with the 'ledger' subcommand)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="enable run-scoped structured logging at this severity "
        "(default: logging off; results are identical either way)",
    )
    parser.add_argument(
        "--log-file",
        default=None,
        metavar="FILE",
        help="append structured log lines to FILE (implies --log-level info)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="structured log lines as JSON objects, one per line",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list workloads, policies, adaptive candidates and topologies"
    )
    list_parser.add_argument(
        "--json", action="store_true",
        help="emit the registries as JSON (for scripts and CI)",
    )

    run = subparsers.add_parser("run", help="simulate one workload under one policy")
    run.add_argument("--workload", required=True, choices=list(WORKLOAD_NAMES))
    run.add_argument("--policy", required=True)
    run.add_argument(
        "--topology", default=None, choices=list(TOPOLOGY_NAMES),
        help="simulate on a registered multi-device topology",
    )
    run.add_argument(
        "--sampling", action="store_true",
        help="phase-sampled fast-forward: skip steady-state kernel repeats "
        "and extrapolate their counters (the report carries per-counter "
        "error estimates)",
    )
    run.add_argument("--json", action="store_true", help="emit the report as JSON")
    run.add_argument(
        "--ledger", default=argparse.SUPPRESS, metavar="FILE",
        help="append this run's provenance entry to the JSONL run ledger",
    )
    _add_trace_options(run)

    sweep = subparsers.add_parser("sweep", help="compare several policies on one workload")
    sweep.add_argument("--workload", required=True, choices=list(WORKLOAD_NAMES))
    sweep.add_argument(
        "--policies",
        nargs="+",
        default=[p.name for p in STATIC_POLICIES],
        help="policy names (default: the three static policies)",
    )
    _add_executor_options(sweep)

    sweep_all = subparsers.add_parser(
        "sweep-all",
        help="materialize the full workload x policy grid and print its figures",
    )
    sweep_all.add_argument(
        "--workloads", nargs="+", default=None, help="subset of workloads (default: all 17)"
    )
    sweep_all.add_argument(
        "--policies",
        nargs="+",
        default=[p.name for p in ALL_POLICIES],
        help="policy names (default: all six policies)",
    )
    sweep_all.add_argument(
        "--figures",
        nargs="+",
        default=sorted(_FIGURES, key=int),
        choices=sorted(_FIGURES, key=int),
        metavar="N",
        help="figures to print after the sweep (default: 4-13)",
    )
    _add_executor_options(sweep_all)

    adaptive = subparsers.add_parser(
        "adaptive",
        help="run the online dynamic-policy study (Figure 14)",
    )
    adaptive.add_argument(
        "--workloads", nargs="+", default=None,
        help="subset of workloads (default: all 18, including MHA)",
    )
    adaptive.add_argument(
        "--candidates",
        nargs="+",
        default=[p.name for p in STATIC_POLICIES],
        help="candidate policies the duel arbitrates (default: the static three)",
    )
    adaptive.add_argument(
        "--epoch-cycles", type=int, default=None, metavar="N",
        help="phase-sampling / duel-decision period in cycles",
    )
    adaptive.add_argument(
        "--leader-sets", type=int, default=None, metavar="N",
        help="L2 leader sets per candidate policy",
    )
    adaptive.add_argument(
        "--mid-kernel", action="store_true",
        help="also swap the policy mid-kernel when the phase detector fires",
    )
    adaptive.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="write the figure data and geomean summary as JSON (CI artifact)",
    )
    _add_executor_options(adaptive)

    topology = subparsers.add_parser(
        "topology",
        help="run the device-scaling study (1/2/4-device NUMA systems)",
    )
    topology.add_argument(
        "--devices", nargs="+", type=int, default=list(SCALING_DEVICES), metavar="N",
        help="device counts to sweep (must include the 1-device baseline)",
    )
    topology.add_argument(
        "--workloads", nargs="+", default=None, choices=list(WORKLOAD_NAMES),
        help=f"subset of workloads (default: {' '.join(SCALING_WORKLOADS)})",
    )
    topology.add_argument(
        "--policies",
        nargs="+",
        default=[p.name for p in STATIC_POLICIES],
        help="policy names (default: the three static policies)",
    )
    topology.add_argument(
        "--fabric", default=None, choices=list(TOPOLOGY_NAMES), metavar="NAME",
        help="registered topology whose fabric parameters the sweep holds fixed",
    )
    topology.add_argument(
        "--remote-latency", type=int, default=None, metavar="CYCLES",
        help="one-way fabric latency override",
    )
    topology.add_argument(
        "--fabric-bandwidth", type=float, default=None, metavar="RPC",
        help="fabric link bandwidth override (requests/cycle)",
    )
    topology.add_argument(
        "--interleave-lines", type=int, default=None, metavar="N",
        help="cache lines per device interleave chunk",
    )
    topology.add_argument(
        "--replicate-weights", action="store_true",
        help="replicate shared read-only (weight) lines per device",
    )
    topology.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="write the figure data and summary as JSON (CI artifact)",
    )
    _add_executor_options(topology)

    serve = subparsers.add_parser(
        "serve",
        help="run the multi-tenant interference study (concurrent serving mixes)",
    )
    serve.add_argument(
        "--mix", nargs="+", default=None, choices=list(MIX_NAMES),
        help="serving mixes to study (default: all registered mixes)",
    )
    serve.add_argument(
        "--policies",
        nargs="+",
        default=[p.name for p in INTERFERENCE_POLICIES],
        help="policy names (default: CacheRW plus the AB/CR optimizations)",
    )
    serve.add_argument(
        "--cu-partition", default="both", choices=[*CU_MODES, "both"],
        metavar="MODE",
        help="CU share mode(s): shared, partitioned, or both (default)",
    )
    serve.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="write the figure data and summary as JSON (CI artifact)",
    )
    _add_trace_options(serve, replay=True)
    _add_executor_options(serve)

    faults = subparsers.add_parser(
        "faults",
        help="run the resilience study (serving mixes under fault plans)",
    )
    faults.add_argument(
        "--mix", nargs="+", default=None, choices=list(MIX_NAMES),
        help="serving mixes to chaos-test (default: "
        + ", ".join(DEFAULT_RESILIENCE_MIXES) + ")",
    )
    faults.add_argument(
        "--plans", nargs="+", default=None, choices=list(FAULT_PLAN_NAMES),
        help="fault plans to inject (default: the healthy baseline plus "
        "every single-cause plan; the baseline is always included)",
    )
    faults.add_argument(
        "--policies",
        nargs="+",
        default=[p.name for p in RESILIENCE_POLICIES],
        help="policy names (default: CacheRW plus the AB/CR optimizations)",
    )
    faults.add_argument(
        "--topology", default="dual-chiplet", choices=list(TOPOLOGY_NAMES),
        help="system topology (default: dual-chiplet -- the smallest "
        "system where every fault kind can fire)",
    )
    faults.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="write the figure data and summary as JSON (CI artifact)",
    )
    faults.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="sweep checkpoint file: an interrupted run re-invoked with "
        "the same path resumes without re-simulating finished cells",
    )
    _add_trace_options(faults, replay=True)
    _add_executor_options(faults)

    trace = subparsers.add_parser(
        "trace",
        help="record a Chrome/Perfetto trace of one instrumented run",
    )
    trace_source = trace.add_mutually_exclusive_group(required=True)
    trace_source.add_argument(
        "--workload", choices=list(WORKLOAD_NAMES),
        help="single workload to trace",
    )
    trace_source.add_argument(
        "--mix", choices=list(MIX_NAMES),
        help="serving mix to trace (concurrent streams)",
    )
    trace.add_argument(
        "--policy", default="CacheRW",
        help="policy name (default: CacheRW)",
    )
    trace.add_argument(
        "--topology", default=None, choices=list(TOPOLOGY_NAMES),
        help="trace on a registered multi-device topology",
    )
    trace.add_argument(
        "--plan", default=None, choices=list(FAULT_PLAN_NAMES),
        help="fault plan to inject during the traced run",
    )
    trace.add_argument(
        "--out", default="trace.json", metavar="FILE",
        help="trace artifact path (default: trace.json; open in "
        "https://ui.perfetto.dev or chrome://tracing)",
    )
    trace.add_argument(
        "--metrics-interval", type=int, default=None, metavar="CYCLES",
        help="also sample windowed counter time-series every CYCLES cycles "
        "(embedded in the trace artifact)",
    )
    trace.add_argument(
        "--telemetry-out", default=argparse.SUPPRESS, metavar="FILE",
        help="write the host-side profiling summary (events/sec, "
        "per-component attribution) as JSON",
    )
    trace.add_argument(
        "--json", action="store_true", help="emit the run summary as JSON"
    )
    trace.add_argument(
        "--ledger", default=argparse.SUPPRESS, metavar="FILE",
        help="append this run's provenance entry to the JSONL run ledger",
    )
    trace.add_argument(
        "--alerts", action="store_true",
        help="run the anomaly detectors over the traced run and surface "
        "the findings (alerts also land on the trace timeline)",
    )

    cache = subparsers.add_parser(
        "cache", help="persistent result-store lifecycle (stats/clear/prune)"
    )
    cache.add_argument("action", choices=["stats", "clear", "prune"])
    cache.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="prune: delete entries older than this many days (required)",
    )
    cache.add_argument("--json", action="store_true", help="emit the result as JSON")
    _add_executor_options(cache)

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("number", choices=sorted(_FIGURES, key=int))
    figure.add_argument(
        "--workloads", nargs="+", default=None, help="subset of workloads (default: all 17)"
    )
    _add_executor_options(figure)

    table = subparsers.add_parser("table", help="print Table 1 or Table 2")
    table.add_argument("number", choices=["1", "2"])

    ledger = subparsers.add_parser(
        "ledger", help="cross-run provenance ledger (list/show/prune)"
    )
    ledger.add_argument("action", choices=["list", "show", "prune"])
    ledger.add_argument(
        "ref", nargs="?", default="-1",
        help="show: entry reference -- an index (-1 is the newest, 0 the "
        "oldest) or a fingerprint hex prefix (default: -1)",
    )
    ledger.add_argument(
        "--ledger", default=argparse.SUPPRESS, metavar="FILE",
        help="ledger file (default: $REPRO_LEDGER or <cache dir>/ledger.jsonl)",
    )
    ledger.add_argument(
        "--count", type=int, default=10, metavar="N",
        help="list: how many recent entries to show (default: 10)",
    )
    ledger.add_argument(
        "--keep", type=int, default=None, metavar="N",
        help="prune: retain only the newest N entries",
    )
    ledger.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="prune: drop entries older than this many days",
    )
    ledger.add_argument("--json", action="store_true", help="emit the result as JSON")

    diff = subparsers.add_parser(
        "diff", help="counter-for-counter comparison of two runs"
    )
    diff.add_argument(
        "ref_a", metavar="A",
        help="run reference: a report JSON file, a store fingerprint "
        "(unique prefix), or a ledger index/fingerprint",
    )
    diff.add_argument("ref_b", metavar="B", help="second run reference (same forms)")
    diff.add_argument(
        "--threshold", type=float, default=0.0, metavar="FRAC",
        help="only list counters whose relative change is at least FRAC "
        "(default: 0, list every changed counter)",
    )
    diff.add_argument(
        "--fail-on-drift", action="store_true",
        help="exit 1 unless the runs are counter-for-counter identical (CI gate)",
    )
    diff_format = diff.add_mutually_exclusive_group()
    diff_format.add_argument("--json", action="store_true", help="emit the diff as JSON")
    diff_format.add_argument(
        "--markdown", action="store_true", help="emit the diff as Markdown tables"
    )
    _add_executor_options(diff)

    bench = subparsers.add_parser(
        "bench", help="throughput regression sentinel (record/check)"
    )
    bench.add_argument("action", choices=["record", "check"])
    bench.add_argument(
        "--benchmark", choices=["core", "effective"], default="core",
        help="which sentinel to measure: the exact core run, or the "
        "accelerated (sampled + sharded) effective-throughput run "
        "(default: core)",
    )
    bench.add_argument(
        "--samples", type=int, default=3, metavar="N",
        help="timed repetitions; the median is the measurement (default: 3)",
    )
    bench.add_argument(
        "--history", default=None, metavar="FILE",
        help="bench history file (default: $REPRO_BENCH_HISTORY or "
        "BENCH_history.jsonl at the repo root)",
    )
    bench.add_argument(
        "--use-last", action="store_true",
        help="check: judge the newest recorded history entry instead of "
        "re-measuring",
    )
    bench.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRAC",
        help="flat floor: fail below (1 - FRAC) x the committed baseline "
        "(default: 0.25)",
    )
    bench.add_argument(
        "--mad-factor", type=float, default=4.0, metavar="K",
        help="robust floor: fail below history median - K * 1.4826 * MAD "
        "(default: 4.0)",
    )
    bench.add_argument(
        "--min-history", type=int, default=5, metavar="N",
        help="history samples needed before the MAD gate arms (default: 5)",
    )
    bench.add_argument("--json", action="store_true", help="emit the verdict as JSON")

    return parser


def _system_config(args: argparse.Namespace):
    if args.cus is not None:
        return scaled_config(args.cus)
    return default_config()


def _cache_dir(args: argparse.Namespace, default_to_conventional: bool = False) -> str | None:
    """Resolve the store directory from --cache-dir / --no-cache."""
    if args.no_cache:
        return None
    if args.cache_dir is not None:
        return args.cache_dir
    if default_to_conventional:
        return str(default_cache_dir())
    return None


def _runner(
    args: argparse.Namespace, workload_names: Sequence[str] | None = None
) -> ExperimentRunner:
    """Build the experiment runner the sweep-style commands share."""
    return ExperimentRunner(
        scale=args.scale,
        config=_system_config(args),
        workload_names=workload_names,
        jobs=args.jobs,
        cache_dir=_cache_dir(args),
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        ledger_path=args.ledger,
    )


def _telemetry_config(args: argparse.Namespace, profile: bool = False) -> TelemetryConfig | None:
    """The :class:`TelemetryConfig` the run-level flags request (or None)."""
    trace_out = getattr(args, "trace_out", None)
    interval = getattr(args, "metrics_interval", None) or 0
    if not interval and getattr(args, "alerts", False):
        # the anomaly detectors read windowed metrics, so --alerts without
        # an explicit --metrics-interval gets the detectors' default cadence
        interval = AlertConfig().default_metrics_interval
    if not trace_out and not interval and not profile:
        return None
    return TelemetryConfig(trace=bool(trace_out), metrics_interval=interval, profile=profile)


def _obs_config(args: argparse.Namespace) -> ObsConfig | None:
    """The :class:`ObsConfig` the run-level flags request (or None)."""
    ledger = getattr(args, "ledger", None)
    alerts = AlertConfig() if getattr(args, "alerts", False) else None
    if ledger is None and alerts is None:
        return None
    return ObsConfig(ledger_path=ledger, alerts=alerts)


def _print_alerts(report, command: str) -> None:
    """Surface fired anomaly detectors on stderr (stdout stays clean)."""
    if not report.alerts:
        print(f"[{command}] alerts: none fired", file=sys.stderr)
        return
    for alert in report.alerts:
        stream = f" stream={alert['stream']}" if "stream" in alert else ""
        print(
            f"[{command}] ALERT {alert['severity']}: {alert['kind']} "
            f"@cycle {alert['cycle']}{stream} -- {alert['message']}",
            file=sys.stderr,
        )


def _format_ts(ts: object) -> str:
    """Ledger timestamp as local wall-clock minutes (or a dash ruler)."""
    if not isinstance(ts, (int, float)):
        return "-" * 16
    return time.strftime("%Y-%m-%d %H:%M", time.localtime(ts))


def _write_trace(path: str, session: SimulationSession, command: str) -> None:
    """Validate and atomically write the session's recorded trace.

    When the session also sampled windowed metrics, the windows ride along
    under ``otherData.metricsWindows`` (the trace-event format reserves
    ``otherData`` for free-form payload), so one artifact carries the full
    observability record of the run.
    """
    recorder = session.recorder
    assert recorder is not None  # callers only trace with trace=True
    blob = recorder.to_dict()
    if session.sampler is not None:
        other = blob["otherData"]
        assert isinstance(other, dict)
        other["metricsWindows"] = [dict(window) for window in session.sampler.windows]
    validate_trace(blob)
    atomic_write_json(path, blob, indent=None)
    events = blob["traceEvents"]
    assert isinstance(events, list)
    print(
        f"[{command}] wrote {len(events)} trace events to {path}"
        + (" (truncated)" if recorder.truncated else ""),
        file=sys.stderr,
    )
    if recorder.truncated:
        print(
            f"[{command}] warning: the trace hit the {recorder.max_events}-event "
            "cap and later events were dropped; reduce --scale or trace a "
            "narrower run for a complete timeline",
            file=sys.stderr,
        )


def _write_executor_telemetry(args: argparse.Namespace, runner: ExperimentRunner) -> None:
    """Write the ``--telemetry-out`` executor artifact, when requested.

    Also the single point where a ledger-carrying sweep appends its
    aggregate entry (store hit-rate, worker utilization, retry pressure) --
    every sweep-style command funnels through here after its grid runs.
    """
    executor = runner.executor
    if getattr(executor, "ledger", None) is not None:
        executor.record_sweep(label=args.command, workers=args.jobs)
    path = getattr(args, "telemetry_out", None)
    if not path:
        return
    blob = {
        "schema": 1,
        "command": args.command,
        "executor": runner.executor.stats.telemetry(workers=args.jobs),
    }
    atomic_write_json(path, blob)
    print(f"[{args.command}] wrote executor telemetry to {path}", file=sys.stderr)


def _list_payload() -> dict[str, object]:
    """The registries as primitives: what ``list --json`` emits.

    CI and scripts enumerate scenarios from this instead of parsing the
    human-formatted table, so the schema is part of the CLI contract.
    """
    return {
        "schema": 1,
        "workloads": [
            {
                "name": name,
                "suite": workload.metadata.suite,
                "description": workload.metadata.description,
            }
            for name, workload in (
                (name, get_workload(name)) for name in WORKLOAD_NAMES
            )
        ],
        "policies": [
            {
                "name": policy.name,
                "cache_loads_l1": policy.cache_loads_l1,
                "cache_loads_l2": policy.cache_loads_l2,
                "cache_stores_l2": policy.cache_stores_l2,
                "allocation_bypass": policy.allocation_bypass,
                "cache_rinsing": policy.cache_rinsing,
                "pc_bypass": policy.pc_bypass,
            }
            for policy in ALL_POLICIES
        ],
        "adaptive": {
            "default_candidates": [p.name for p in AdaptiveConfig().candidates],
        },
        "topologies": {
            name: topology.describe() for name, topology in TOPOLOGIES.items()
        },
        "serving_mixes": {
            name: mix.describe() for name, mix in SERVING_MIXES.items()
        },
        "fault_plans": {
            name: {
                "description": plan.description,
                "events": list(plan.describe()["events"]),
            }
            for name, plan in FAULT_PLANS.items()
        },
    }


def _cmd_list(args: argparse.Namespace) -> int:
    if args.json:
        print(json.dumps(_list_payload(), indent=1, sort_keys=True))
        return 0
    print("Workloads:")
    for name in WORKLOAD_NAMES:
        workload = get_workload(name)
        print(f"  {name:10s} {workload.metadata.suite:25s} {workload.metadata.description}")
    print("\nPolicies:")
    for policy in ALL_POLICIES:
        print(
            f"  {policy.name:14s} loads L1/L2: {policy.cache_loads_l1}/{policy.cache_loads_l2}  "
            f"stores L2: {policy.cache_stores_l2}  AB/CR/PCby: "
            f"{policy.allocation_bypass}/{policy.cache_rinsing}/{policy.pc_bypass}"
        )
    print("\nAdaptive candidates (default):")
    print("  " + ", ".join(p.name for p in AdaptiveConfig().candidates))
    print("\nTopologies:")
    for name, topology in TOPOLOGIES.items():
        print(
            f"  {name:14s} devices: {topology.num_devices}  "
            f"remote latency: {topology.remote_latency_cycles}cy  "
            f"fabric: {topology.fabric_requests_per_cycle} req/cy"
        )
    print("\nServing mixes:")
    for name, mix in SERVING_MIXES.items():
        tenants = ", ".join(
            f"{s.workload}@{s.launch_cycle}" for s in mix.streams
        )
        print(f"  {name:18s} [{tenants}]  {mix.description}")
    print("\nFault plans:")
    for name, plan in FAULT_PLANS.items():
        print(f"  {name:18s} events: {len(plan.events)}  {plan.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload, scale=args.scale)
    policy = policy_by_name(args.policy)
    topology = topology_by_name(args.topology) if args.topology else None
    telemetry = _telemetry_config(args)
    obs = _obs_config(args)
    sampling = SamplingConfig() if getattr(args, "sampling", False) else None
    if telemetry is None and obs is None:
        report = simulate(
            workload,
            policy,
            config=_system_config(args),
            topology=topology,
            sampling=sampling,
        )
    else:
        session = SimulationSession(
            policy=policy,
            config=_system_config(args),
            topology=topology,
            sampling=sampling,
            telemetry=telemetry,
            obs=obs,
        )
        report = session.run(workload)
        if args.trace_out:
            _write_trace(args.trace_out, session, "run")
    label = f"{args.workload} under {policy.name}"
    if topology is not None:
        label += f" on {topology.label}"
    payload = report.as_dict()
    if report.metrics:
        # windowed time-series only exist when --metrics-interval asked for
        # them, so plain runs keep the historical flat payload byte-for-byte
        payload["metrics"] = report.metrics
    if report.alerts:
        # same touched-gating: only --alerts runs can populate this
        payload["alerts"] = report.alerts
    if report.sampling:
        # only accelerated runs carry this block, so exact runs keep the
        # historical payload byte-for-byte
        payload["sampling"] = report.sampling
        if report.error_estimates:
            payload["max_error_estimate"] = max(report.error_estimates.values())
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        if report.metrics:
            payload["metrics"] = f"{len(report.metrics)} windows"
        if report.alerts:
            payload["alerts"] = f"{len(report.alerts)} fired"
        if report.sampling:
            skipped = report.sampling.get("skipped_fraction", 0.0)
            payload["sampling"] = f"{float(skipped):.0%} kernels skipped"
        print(render_kv_table(label, payload))
    if getattr(args, "alerts", False):
        _print_alerts(report, "run")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload_name = args.workload
    runner = _runner(args, workload_names=[workload_name])
    sweep = runner.sweep(policies=[policy_by_name(name) for name in args.policies])
    comparison = sweep.comparison(workload_name)
    data = {
        workload_name: comparison.normalized_exec_time(
            baseline=args.policies[0] if "Uncached" not in comparison.reports else "Uncached"
        )
    }
    print(render_series_table(f"Execution time for {workload_name} (normalized)", data))
    dram = {workload_name: comparison.metric(lambda r: float(r.dram_accesses))}
    print(render_series_table(f"DRAM accesses for {workload_name}", dram, value_format="{:.0f}"))
    _write_executor_telemetry(args, runner)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    title, builder, fmt = _FIGURES[args.number]
    runner = _runner(args, workload_names=args.workloads)
    data = builder(runner)
    print(render_series_table(title, data, value_format=fmt))
    _write_executor_telemetry(args, runner)
    return 0


def _cmd_sweep_all(args: argparse.Namespace) -> int:
    """Materialize the full grid once, then print every requested figure.

    The sweep submits the whole (workload x policy) grid to the executor in
    one batch, so ``--jobs N`` runs up to N grid cells concurrently; with
    the persistent store warm, a repeat invocation simulates nothing and
    prints identical figures.  The cache-effectiveness summary goes to
    stderr so stdout stays byte-identical between cold and warm runs.
    """
    cache_dir = _cache_dir(args, default_to_conventional=True)
    runner = ExperimentRunner(
        scale=args.scale,
        config=_system_config(args),
        workload_names=args.workloads,
        jobs=args.jobs,
        cache_dir=cache_dir,
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        ledger_path=args.ledger,
    )
    policies = [policy_by_name(name) for name in args.policies]
    runner.sweep(policies=policies)
    for number in args.figures:
        title, builder, fmt = _FIGURES[number]
        print(render_series_table(title, builder(runner), value_format=fmt))
    stats = runner.stats()
    print(
        f"[sweep-all] grid={len(runner.workload_names)}x{len(policies)} "
        f"jobs={args.jobs} store={cache_dir or 'disabled'} "
        f"simulated={stats['runs_simulated']} loaded={stats['runs_loaded']}",
        file=sys.stderr,
    )
    _write_executor_telemetry(args, runner)
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    """Run the dynamic-vs-static comparison and print/record Figure 14.

    Like ``sweep-all``, the command defaults to the conventional persistent
    store, so the static envelope (shared with Figures 6-13) and finished
    dynamic cells are never re-simulated; the cache-effectiveness line goes
    to stderr so stdout stays identical between cold and warm runs.
    """
    overrides: dict[str, object] = {
        "candidates": tuple(policy_by_name(name) for name in args.candidates),
        "mid_kernel_switching": bool(args.mid_kernel),
    }
    if args.epoch_cycles is not None:
        overrides["epoch_cycles"] = args.epoch_cycles
    if args.leader_sets is not None:
        overrides["leader_sets_per_policy"] = args.leader_sets
    adaptive_config = AdaptiveConfig(**overrides)  # type: ignore[arg-type]

    cache_dir = _cache_dir(args, default_to_conventional=True)
    runner = ExperimentRunner(
        scale=args.scale,
        config=_system_config(args),
        workload_names=args.workloads,
        jobs=args.jobs,
        cache_dir=cache_dir,
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        ledger_path=args.ledger,
    )
    figure = figure14_adaptive(runner, adaptive_config=adaptive_config)
    summary = adaptive_summary(figure)
    print(
        render_series_table(
            "Figure 14: dynamic policy vs static envelope "
            "(execution time normalized to best static)",
            figure,
        )
    )
    print(render_series_table("Figure 14 geomean summary", summary))

    if args.json_out:
        blob = {
            "schema": 1,
            "adaptive": {
                "fingerprint": adaptive_config.fingerprint(),
                "candidates": [p.name for p in adaptive_config.candidates],
                "epoch_cycles": adaptive_config.epoch_cycles,
                "leader_sets_per_policy": adaptive_config.leader_sets_per_policy,
                "mid_kernel_switching": adaptive_config.mid_kernel_switching,
            },
            "scale": args.scale,
            "num_cus": runner.config.gpu.num_cus,
            "figure14": figure,
            "summary": summary,
        }
        atomic_write_json(args.json_out, blob)
        print(f"[adaptive] wrote figure data to {args.json_out}", file=sys.stderr)

    stats = runner.stats()
    print(
        f"[adaptive] workloads={len(figure)} jobs={args.jobs} "
        f"store={cache_dir or 'disabled'} "
        f"simulated={stats['runs_simulated']} loaded={stats['runs_loaded']}",
        file=sys.stderr,
    )
    _write_executor_telemetry(args, runner)
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    """Run the device-scaling study and print/record its figure.

    Like ``sweep-all`` and ``adaptive``, the command defaults to the
    conventional persistent store: every cell's fingerprint includes the
    :class:`TopologyConfig`, so a warm repeat simulates nothing and the
    cache-effectiveness line on stderr proves it.
    """
    devices = sorted(set(args.devices))
    if 1 not in devices:
        print(
            "error: --devices must include the 1-device baseline "
            "(speedups are normalized to it)",
            file=sys.stderr,
        )
        return 2
    if any(count < 1 for count in devices):
        print("error: device counts must be positive", file=sys.stderr)
        return 2
    base = topology_by_name(args.fabric) if args.fabric else TopologyConfig()
    overrides: dict[str, object] = {}
    if args.remote_latency is not None:
        overrides["remote_latency_cycles"] = args.remote_latency
    if args.fabric_bandwidth is not None:
        overrides["fabric_requests_per_cycle"] = args.fabric_bandwidth
    if args.interleave_lines is not None:
        overrides["interleave_lines"] = args.interleave_lines
    if args.replicate_weights:
        overrides["replicate_weights"] = True
    if overrides:
        base = dataclasses.replace(base, **overrides)

    cache_dir = _cache_dir(args, default_to_conventional=True)
    workload_names = tuple(args.workloads) if args.workloads else SCALING_WORKLOADS
    runner = ExperimentRunner(
        scale=args.scale,
        config=_system_config(args),
        workload_names=workload_names,
        jobs=args.jobs,
        cache_dir=cache_dir,
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        ledger_path=args.ledger,
    )
    policies = [policy_by_name(name) for name in args.policies]
    figure = figure_scaling(
        runner,
        devices=devices,
        policies=policies,
        workload_names=workload_names,
        topology=base,
    )
    summary = scaling_summary(figure)
    print(
        render_series_table(
            "Device scaling: speedup over the same policy at 1 device",
            scaling_series(figure, "speedup"),
        )
    )
    print(
        render_series_table(
            "Device scaling: remote traffic fraction",
            scaling_series(figure, "remote_fraction"),
        )
    )
    print(
        render_series_table(
            "Device scaling summary (geomean speedup / mean remote fraction)",
            summary,
        )
    )

    if args.json_out:
        blob = scaling_artifact(
            figure,
            summary,
            devices=devices,
            workload_names=workload_names,
            fabric=base.describe(),
            fingerprints={
                str(count): base.with_devices(count).fingerprint()
                for count in devices
            },
            scale=args.scale,
            cus_per_device=runner.config.gpu.num_cus,
            policies=[p.name for p in policies],
        )
        atomic_write_json(args.json_out, blob)
        print(f"[topology] wrote figure data to {args.json_out}", file=sys.stderr)

    stats = runner.stats()
    print(
        f"[topology] grid={len(workload_names)}x{len(policies)}x{len(devices)} "
        f"jobs={args.jobs} store={cache_dir or 'disabled'} "
        f"simulated={stats['runs_simulated']} loaded={stats['runs_loaded']}",
        file=sys.stderr,
    )
    _write_executor_telemetry(args, runner)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant interference study and print/record its figure.

    Like the other sweep commands, ``serve`` defaults to the conventional
    persistent store: every cell's fingerprint covers the full stream
    configurations, and the solo baselines are plain single-workload
    cells shared with the ordinary sweeps, so a warm repeat simulates
    nothing and the cache-effectiveness line on stderr proves it.
    """
    mixes = [mix_by_name(name) for name in (args.mix or MIX_NAMES)]
    policies = [policy_by_name(name) for name in args.policies]
    modes = list(CU_MODES) if args.cu_partition == "both" else [args.cu_partition]

    cache_dir = _cache_dir(args, default_to_conventional=True)
    runner = ExperimentRunner(
        scale=args.scale,
        config=_system_config(args),
        jobs=args.jobs,
        cache_dir=cache_dir,
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        ledger_path=args.ledger,
    )
    if "partitioned" in modes:
        for mix in mixes:
            if not mix_is_partitionable(mix, runner.config.gpu.num_cus):
                print(
                    f"[serve] note: {mix.name} has {mix.num_streams} streams but "
                    f"the system has {runner.config.gpu.num_cus} CUs per device; "
                    "its partitioned cells are skipped",
                    file=sys.stderr,
                )
        if modes == ["partitioned"] and not any(
            mix_is_partitionable(mix, runner.config.gpu.num_cus) for mix in mixes
        ):
            print(
                "error: no requested mix fits a CU partition on this system; "
                "add --cus, pick narrower mixes, or use --cu-partition shared/both",
                file=sys.stderr,
            )
            return 2
    figure = figure_interference(runner, mixes=mixes, policies=policies, modes=modes)
    summary = interference_summary(figure)
    print(
        render_series_table(
            "Multi-tenant interference: mean per-tenant slowdown vs solo",
            interference_series(figure, "mean_slowdown"),
        )
    )
    print(
        render_series_table(
            "Multi-tenant interference: unfairness (max/min tenant slowdown)",
            interference_series(figure, "unfairness"),
        )
    )
    print(
        render_series_table(
            "Serving summary (geomean slowdown / mean unfairness)", summary
        )
    )

    if args.json_out:
        blob = interference_artifact(
            figure,
            summary,
            mixes=mixes,
            modes=modes,
            policies=[p.name for p in policies],
            scale=args.scale,
            num_cus=runner.config.gpu.num_cus,
        )
        atomic_write_json(args.json_out, blob)
        print(f"[serve] wrote figure data to {args.json_out}", file=sys.stderr)

    if args.trace_out or args.alerts:
        # the sweep's cells ran in workers (or came from the store), so the
        # trace/alert observers attach to an inline replay of the first
        # runnable cell of the grid
        cell = next(
            (
                (mix, mode)
                for mix in mixes
                for mode in modes
                if mode != "partitioned"
                or mix_is_partitionable(mix, runner.config.gpu.num_cus)
            ),
            None,
        )
        if cell is None:  # pragma: no cover - figure_interference errors first
            print("[serve] note: no runnable cell to trace", file=sys.stderr)
        else:
            mix, mode = cell
            session = SimulationSession(
                policy=policies[0],
                config=_system_config(args),
                streams=mix.with_cu_share(mode).scaled(args.scale),
                telemetry=_telemetry_config(args),
                obs=_obs_config(args),
            )
            replay = session.run()
            if args.trace_out:
                _write_trace(args.trace_out, session, "serve")
            print(
                f"[serve] {'traced' if args.trace_out else 'replayed'} "
                f"{mix.name} under {policies[0].name} ({mode} CUs)",
                file=sys.stderr,
            )
            if args.alerts:
                _print_alerts(replay, "serve")

    stats = runner.stats()
    print(
        f"[serve] grid={len(mixes)}x{len(policies)}x{len(modes)} "
        f"jobs={args.jobs} store={cache_dir or 'disabled'} "
        f"simulated={stats['runs_simulated']} loaded={stats['runs_loaded']}",
        file=sys.stderr,
    )
    _write_executor_telemetry(args, runner)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Run the resilience study and print/record its figure.

    Plans that need more devices than the chosen topology provides abort
    up front (exit 2: the user asked for something the system cannot
    host); plans that merely target streams a narrow mix lacks skip that
    mix's cell with a note on stderr, matching how ``serve`` treats
    unpartitionable mixes.  Determinism makes chaos cacheable, so like the
    other sweep commands ``faults`` defaults to the conventional
    persistent store -- a warm repeat simulates nothing.
    """
    mixes = [mix_by_name(name) for name in (args.mix or DEFAULT_RESILIENCE_MIXES)]
    policies = [policy_by_name(name) for name in args.policies]
    plans = [
        fault_plan_by_name(name)
        for name in (args.plans or DEFAULT_RESILIENCE_PLANS)
    ]
    if not any(plan.empty for plan in plans):
        plans.insert(0, FAULT_PLANS["none"])
    topology = topology_by_name(args.topology)

    num_devices = topology.num_devices
    for plan in plans:
        needed = plan.requires_devices()
        if needed > num_devices:
            print(
                f"error: fault plan {plan.label!r} needs {needed} devices but "
                f"topology {topology.label!r} has {num_devices}; pick a wider "
                "--topology or drop the plan",
                file=sys.stderr,
            )
            return 2
    for mix in mixes:
        for plan in plans:
            reason = plan_is_runnable(plan, topology, mix.num_streams)
            if reason is not None:
                print(
                    f"[faults] note: plan {plan.label} skipped for {mix.name}: "
                    f"{reason}",
                    file=sys.stderr,
                )

    cache_dir = _cache_dir(args, default_to_conventional=True)
    runner = ExperimentRunner(
        scale=args.scale,
        config=_system_config(args),
        jobs=args.jobs,
        cache_dir=cache_dir,
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        ledger_path=args.ledger,
    )
    try:
        figure = figure_resilience(
            runner,
            mixes=mixes,
            policies=policies,
            plans=plans,
            topology=topology,
            checkpoint_path=args.checkpoint,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = resilience_summary(figure)
    print(
        render_series_table(
            "Resilience: slowdown vs the healthy baseline (same policy)",
            resilience_series(figure, "slowdown"),
        )
    )
    print(
        render_series_table(
            "Resilience: availability (fraction of the run with no fault active)",
            resilience_series(figure, "availability"),
        )
    )
    print(
        render_series_table(
            "Resilience summary (geomean slowdown / mean availability)", summary
        )
    )

    if args.json_out:
        blob = resilience_artifact(
            figure,
            summary,
            plans=plans,
            policies=[p.name for p in policies],
            topology=topology.describe(),
            scale=args.scale,
            num_cus=runner.config.gpu.num_cus,
        )
        atomic_write_json(args.json_out, blob)
        print(f"[faults] wrote figure data to {args.json_out}", file=sys.stderr)

    if args.trace_out or args.alerts:
        # inline replay of the first mix's first runnable cell, preferring a
        # plan that actually injects faults so the trace shows degraded
        # intervals (and the availability detector has something to judge);
        # falls back to the healthy baseline
        mix = mixes[0]
        runnable = [
            plan
            for plan in plans
            if plan_is_runnable(plan, topology, mix.num_streams) is None
        ]
        plan = next((p for p in runnable if not p.empty), None) or (
            runnable[0] if runnable else None
        )
        if plan is None:
            print(
                f"[faults] note: no runnable plan for {mix.name}; trace skipped",
                file=sys.stderr,
            )
        else:
            session = SimulationSession(
                policy=policies[0],
                config=_system_config(args),
                streams=mix.scaled(args.scale),
                topology=topology,
                faults=plan,
                telemetry=_telemetry_config(args),
                obs=_obs_config(args),
            )
            replay = session.run()
            if args.trace_out:
                _write_trace(args.trace_out, session, "faults")
            print(
                f"[faults] {'traced' if args.trace_out else 'replayed'} "
                f"{mix.name} under {policies[0].name} with plan {plan.label}",
                file=sys.stderr,
            )
            if args.alerts:
                _print_alerts(replay, "faults")

    stats = runner.stats()
    print(
        f"[faults] grid={len(mixes)}x{len(policies)}x{len(plans)} "
        f"topology={topology.label} jobs={args.jobs} "
        f"store={cache_dir or 'disabled'} "
        f"simulated={stats['runs_simulated']} loaded={stats['runs_loaded']} "
        f"failed={stats['runs_failed']}",
        file=sys.stderr,
    )
    _write_executor_telemetry(args, runner)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record one fully instrumented run and write its trace artifact.

    The session runs with every observer attached: the Chrome trace
    recorder (always), the windowed metrics sampler (with
    ``--metrics-interval``), and the host profiler (always -- the summary
    reports simulator throughput and per-component callback attribution).
    The trace is validated before it is written.
    """
    policy = policy_by_name(args.policy)
    topology = topology_by_name(args.topology) if args.topology else None
    plan = fault_plan_by_name(args.plan) if args.plan else None
    interval = args.metrics_interval or 0
    if not interval and args.alerts:
        interval = AlertConfig().default_metrics_interval
    telemetry = TelemetryConfig(
        trace=True,
        metrics_interval=interval,
        profile=True,
    )
    obs = _obs_config(args)
    try:
        if args.mix:
            session = SimulationSession(
                policy=policy,
                config=_system_config(args),
                topology=topology,
                streams=mix_by_name(args.mix).scaled(args.scale),
                faults=plan,
                telemetry=telemetry,
                obs=obs,
            )
            report = session.run()
        else:
            session = SimulationSession(
                policy=policy,
                config=_system_config(args),
                topology=topology,
                faults=plan,
                telemetry=telemetry,
                obs=obs,
            )
            report = session.run(get_workload(args.workload, scale=args.scale))
    except ValueError as exc:  # e.g. a fault plan the system cannot host
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _write_trace(args.out, session, "trace")

    recorder, profiler = session.recorder, session.profiler
    assert recorder is not None and profiler is not None
    latency = session.stats.histogram_summary("gpu.mem_latency")
    summary: dict[str, object] = {
        "workload": report.workload,
        "policy": report.policy,
        "cycles": report.cycles,
        "trace_events": len(recorder.events),
        "trace_truncated": recorder.truncated,
        "kernel_spans": len(recorder.spans("kernel")),
        "wavefront_spans": len(recorder.spans("wavefront")),
        "metrics_windows": len(session.sampler.windows) if session.sampler else 0,
        "sim_events": profiler.events,
        "wall_seconds": round(profiler.wall_seconds, 6),
        "events_per_second": round(profiler.events_per_second, 1),
        "mem_latency_p50": latency["p50"],
        "mem_latency_p95": latency["p95"],
        "mem_latency_p99": latency["p99"],
    }
    if args.alerts:
        summary["alerts"] = len(report.alerts)
        _print_alerts(report, "trace")
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(render_kv_table(f"Trace of {report.workload} under {report.policy}", summary))
    if args.telemetry_out:
        blob = {
            "schema": 1,
            "command": "trace",
            "profiler": profiler.summary(),
            "run": summary,
        }
        atomic_write_json(args.telemetry_out, blob)
        print(f"[trace] wrote profiling telemetry to {args.telemetry_out}", file=sys.stderr)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Result-store lifecycle: occupancy stats, full clear, age-based prune."""
    cache_dir = _cache_dir(args, default_to_conventional=True)
    if cache_dir is None:
        print("error: cache command needs a store (--cache-dir)", file=sys.stderr)
        return 2
    from pathlib import Path

    if not Path(cache_dir).expanduser().is_dir():
        # the lifecycle commands inspect an existing store; creating a
        # directory as a side effect would make a typo look like a
        # healthy empty store
        print(f"error: no result store at {cache_dir}", file=sys.stderr)
        return 2
    if args.action == "prune":
        if args.max_age_days is None:
            print("error: cache prune requires --max-age-days", file=sys.stderr)
            return 2
        if args.max_age_days < 0:
            print("error: --max-age-days must be non-negative", file=sys.stderr)
            return 2
    store = ResultStore(cache_dir)
    if args.action == "stats":
        payload: dict[str, object] = dict(store.stats())
        # when a run ledger lives alongside the store, fold its fleet-level
        # view in: how many runs/jobs it has seen, and the store hit-rate
        # and worker utilization of the most recent sweep aggregate --
        # visible without hunting for a --telemetry-out artifact
        ledger_file = Path(cache_dir).expanduser() / "ledger.jsonl"
        if ledger_file.is_file():
            entries = RunLedger(ledger_file).entries()
            payload["ledger_entries"] = len(entries)
            kinds: dict[str, int] = {}
            for entry in entries:
                kind = str(entry.get("kind", "?"))
                kinds[kind] = kinds.get(kind, 0) + 1
            for kind in sorted(kinds):
                payload[f"ledger_{kind}_entries"] = kinds[kind]
            last_sweep = next(
                (e for e in reversed(entries) if e.get("kind") == "sweep"), None
            )
            if last_sweep is not None:
                telemetry = last_sweep.get("telemetry") or {}
                for key in (
                    "runs_simulated",
                    "runs_loaded",
                    "store_hit_rate",
                    "worker_utilization",
                ):
                    if key in telemetry:
                        payload[f"last_sweep_{key}"] = telemetry[key]
    elif args.action == "clear":
        payload = {"root": str(store.root), "removed": store.clear()}
    else:  # prune
        payload = {
            "root": str(store.root),
            "max_age_days": args.max_age_days,
            "removed": store.prune(args.max_age_days),
        }
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(render_kv_table(f"Result store {args.action}", payload))
    return 0


def _ledger_for(args: argparse.Namespace) -> RunLedger:
    """The ledger the --ledger flag names (or the conventional default)."""
    path = getattr(args, "ledger", None)
    return RunLedger(path) if path else RunLedger()


def _cmd_ledger(args: argparse.Namespace) -> int:
    """Inspect or prune the cross-run provenance ledger."""
    ledger = _ledger_for(args)
    if args.action == "list":
        if args.count < 1:
            print(f"error: --count must be at least 1, got {args.count}", file=sys.stderr)
            return 2
        entries = ledger.entries()
        shown = entries[-args.count :]
        if args.json:
            print(
                json.dumps(
                    {
                        "schema": 1,
                        "path": str(ledger.path),
                        "total": len(entries),
                        "entries": shown,
                    },
                    indent=1,
                    sort_keys=True,
                )
            )
            return 0
        if not entries:
            print(f"ledger {ledger.path}: empty")
            return 0
        print(f"ledger {ledger.path}: {len(entries)} entries")
        first_index = len(entries) - len(shown)
        for offset, entry in enumerate(shown):
            fingerprint_hex = entry.get("fingerprint")
            prefix = fingerprint_hex[:12] if isinstance(fingerprint_hex, str) else "-"
            cell = f"{entry.get('workload', '?')}/{entry.get('policy', '?')}"
            line = (
                f"  [{first_index + offset}] {_format_ts(entry.get('ts'))}  "
                f"{str(entry.get('kind', '?')):5s} {cell:24s} fp={prefix:12s}"
            )
            if entry.get("cycles") is not None:
                line += f" cycles={entry['cycles']}"
            if entry.get("events_per_sec") is not None:
                line += f" ev/s={entry['events_per_sec']}"
            alerts = entry.get("alerts")
            if alerts:
                line += f" alerts={len(alerts)}"
            print(line)
        return 0
    if args.action == "show":
        entry = ledger.find(args.ref)
        if entry is None:
            print(
                f"error: no ledger entry matches {args.ref!r} in {ledger.path}",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(entry, indent=1, sort_keys=True))
        return 0
    # prune
    if args.keep is None and args.max_age_days is None:
        print(
            "error: ledger prune needs --keep N and/or --max-age-days D",
            file=sys.stderr,
        )
        return 2
    try:
        removed = ledger.prune(keep=args.keep, max_age_days=args.max_age_days)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = {"path": str(ledger.path), "removed": removed, "remaining": len(ledger)}
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(render_kv_table("Ledger prune", payload))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """Counter-for-counter comparison of two runs.

    Each operand may be a report JSON file (``run --json`` output is
    rejected with guidance -- it lacks raw counters), a result-store
    fingerprint prefix, or a ledger index/fingerprint.  Two runs of the
    same fingerprint diffing to zero drift is the determinism contract
    made checkable (``--fail-on-drift`` turns it into a CI gate).
    """
    if args.threshold < 0:
        print(
            f"error: --threshold must be non-negative, got {args.threshold}",
            file=sys.stderr,
        )
        return 2
    store = None
    cache_dir = _cache_dir(args, default_to_conventional=True)
    if cache_dir is not None and Path(cache_dir).expanduser().is_dir():
        store = ResultStore(cache_dir)
    try:
        report_a, label_a = resolve_report(args.ref_a, store=store, ledger=_ledger_for(args))
        report_b, label_b = resolve_report(args.ref_b, store=store, ledger=_ledger_for(args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_reports(
        report_a, report_b, threshold=args.threshold, a_label=label_a, b_label=label_b
    )
    if args.json:
        print(json.dumps(diff, indent=1, sort_keys=True))
    elif args.markdown:
        print(render_diff_markdown(diff))
    else:
        print(render_diff_table(diff))
    if args.fail_on_drift and not diff["identical"]:
        print("[diff] drift detected (--fail-on-drift)", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """The regression sentinel: record throughput history, check floors.

    ``record`` appends a median-of-N measurement to the history file;
    ``check`` judges a measurement (fresh, or ``--use-last`` for the
    newest recorded one) against the committed-baseline flat floor and the
    history's robust median - k*MAD floor, exiting 1 on regression.
    """
    if args.samples < 1:
        print(f"error: --samples must be at least 1, got {args.samples}", file=sys.stderr)
        return 2
    history_path = Path(args.history).expanduser() if args.history else default_history_path()
    effective = getattr(args, "benchmark", "core") == "effective"
    measure = measure_effective_throughput if effective else measure_core_throughput
    benchmark_name = EFFECTIVE_BENCHMARK if effective else CORE_BENCHMARK
    baseline_section = "effective" if effective else None
    if args.action == "record":
        measurement = measure(samples=args.samples)
        entry = append_history(history_path, measurement)
        if args.json:
            print(json.dumps(entry, indent=1, sort_keys=True))
        else:
            print(
                render_kv_table(
                    "Bench record",
                    {
                        "benchmark": entry["benchmark"],
                        "events_per_sec": entry["events_per_sec"],
                        "median_seconds": entry["median_seconds"],
                        "samples": entry["samples"],
                        "history": str(history_path),
                        "history_entries": len(
                            load_history(history_path, benchmark=benchmark_name)
                        ),
                    },
                )
            )
        return 0
    # check
    history = load_history(history_path, benchmark=benchmark_name)
    if args.use_last:
        if not history:
            print(
                f"error: no bench history at {history_path}; "
                "run 'bench record' first",
                file=sys.stderr,
            )
            return 2
        value, prior = history[-1], history[:-1]
    else:
        measurement = measure(samples=args.samples)
        value, prior = measurement.events_per_sec, history
    verdict = evaluate_measurement(
        value,
        history=prior,
        baseline=committed_baseline(section=baseline_section),
        max_regression=args.max_regression,
        mad_factor=args.mad_factor,
        min_history=args.min_history,
    )
    payload = dict(verdict.as_dict())
    payload["history_path"] = str(history_path)
    payload["history_samples_used"] = len(prior)
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        shown = {
            key: ("-" if value is None else value)
            for key, value in payload.items()
            if key != "reasons"
        }
        print(render_kv_table("Bench check", shown))
    for reason in verdict.reasons:
        print(f"[bench] {reason}", file=sys.stderr)
    if not verdict.ok:
        print("[bench] REGRESSION: throughput below floor", file=sys.stderr)
        return 1
    print("[bench] ok", file=sys.stderr)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == "1":
        tables = table1_system_configuration(config=_system_config(args))
        print(render_kv_table("Table 1 (simulated, scaled configuration)", tables["simulated"]))
        print(render_kv_table("Table 1 (paper reference configuration)", tables["paper"]))
        return 0
    rows = table2_workloads(scale=args.scale)
    data = {
        str(row["name"]): {
            "paper kernels": float(row["paper_total_kernels"]),
            "sim kernels": float(row["sim_kernels"]),
            "sim requests": float(row["sim_line_requests"]),
            "sim footprint KB": row["sim_footprint_bytes"] / 1024.0,
        }
        for row in rows
    }
    print(render_series_table("Table 2: studied MI workloads (paper vs simulated)", data,
                              value_format="{:.0f}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be at least 1, got {args.jobs}")
    if args.job_timeout is not None and args.job_timeout <= 0:
        parser.error(f"--job-timeout must be positive, got {args.job_timeout}")
    if args.job_retries < 0:
        parser.error(f"--job-retries must be >= 0, got {args.job_retries}")
    interval = getattr(args, "metrics_interval", None)
    if interval is not None and interval < 0:
        parser.error(f"--metrics-interval must be non-negative, got {interval}")
    if args.log_level or args.log_file or args.log_json:
        # structured logging is an observer: it never touches results, so
        # enabling it here is safe for every subcommand
        configure_logging(
            level=args.log_level or "info",
            path=args.log_file,
            json_lines=args.log_json,
        )
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "sweep-all":
            return _cmd_sweep_all(args)
        if args.command == "adaptive":
            return _cmd_adaptive(args)
        if args.command == "topology":
            return _cmd_topology(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "table":
            return _cmd_table(args)
        if args.command == "ledger":
            return _cmd_ledger(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "bench":
            return _cmd_bench(args)
    except OSError as exc:  # unusable --cache-dir target (file, unwritable, ...)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
