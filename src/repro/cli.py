"""Command-line interface.

Installed as ``repro-gpu-cache`` (see ``pyproject.toml``) and runnable as
``python -m repro.cli``.  Subcommands:

* ``list``     -- show the available workloads and policies.
* ``run``      -- simulate one workload under one policy and print the report.
* ``sweep``    -- simulate a workload under several policies and print a
  normalized comparison.
* ``figure``   -- regenerate one of the paper's figures (4-13) as a text table.
* ``table``    -- print Table 1 (system configuration) or Table 2 (workloads).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.config import default_config, scaled_config
from repro.core.policies import ALL_POLICIES, STATIC_POLICIES, policy_by_name
from repro.experiments import (
    ExperimentRunner,
    figure4_gvops,
    figure5_gmrs,
    figure6_execution_time,
    figure7_dram_accesses,
    figure8_cache_stalls,
    figure9_row_hit_rate,
    figure10_execution_time,
    figure11_dram_accesses,
    figure12_cache_stalls,
    figure13_row_hit_rate,
    render_series_table,
    table1_system_configuration,
    table2_workloads,
)
from repro.experiments.render import render_kv_table
from repro.session import simulate
from repro.stats.comparison import PolicyComparison
from repro.workloads.registry import WORKLOAD_NAMES, get_workload

__all__ = ["main", "build_parser"]

_FIGURES = {
    "4": ("Figure 4: compute bandwidth (GVOPS), CacheR", figure4_gvops, "{:.1f}"),
    "5": ("Figure 5: memory request bandwidth (GMR/s), CacheR", figure5_gmrs, "{:.3f}"),
    "6": ("Figure 6: execution time normalized to Uncached", figure6_execution_time, "{:.3f}"),
    "7": ("Figure 7: DRAM accesses normalized to Uncached", figure7_dram_accesses, "{:.3f}"),
    "8": ("Figure 8: cache stalls per memory request", figure8_cache_stalls, "{:.3f}"),
    "9": ("Figure 9: DRAM row-buffer hit ratio", figure9_row_hit_rate, "{:.3f}"),
    "10": ("Figure 10: execution time normalized to best static", figure10_execution_time, "{:.3f}"),
    "11": ("Figure 11: DRAM accesses normalized to Uncached", figure11_dram_accesses, "{:.3f}"),
    "12": ("Figure 12: cache stalls per memory request", figure12_cache_stalls, "{:.3f}"),
    "13": ("Figure 13: DRAM row-buffer hit ratio", figure13_row_hit_rate, "{:.3f}"),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-gpu-cache",
        description="GPU cache-policy reproduction for MI workloads (IISWC 2019)",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    parser.add_argument("--cus", type=int, default=None, help="number of compute units")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list workloads and policies")

    run = subparsers.add_parser("run", help="simulate one workload under one policy")
    run.add_argument("--workload", required=True, choices=list(WORKLOAD_NAMES))
    run.add_argument("--policy", required=True)
    run.add_argument("--json", action="store_true", help="emit the report as JSON")

    sweep = subparsers.add_parser("sweep", help="compare several policies on one workload")
    sweep.add_argument("--workload", required=True, choices=list(WORKLOAD_NAMES))
    sweep.add_argument(
        "--policies",
        nargs="+",
        default=[p.name for p in STATIC_POLICIES],
        help="policy names (default: the three static policies)",
    )

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("number", choices=sorted(_FIGURES, key=int))
    figure.add_argument(
        "--workloads", nargs="+", default=None, help="subset of workloads (default: all 17)"
    )

    table = subparsers.add_parser("table", help="print Table 1 or Table 2")
    table.add_argument("number", choices=["1", "2"])

    return parser


def _system_config(args: argparse.Namespace):
    if args.cus is not None:
        return scaled_config(args.cus)
    return default_config()


def _cmd_list() -> int:
    print("Workloads:")
    for name in WORKLOAD_NAMES:
        workload = get_workload(name)
        print(f"  {name:10s} {workload.metadata.suite:25s} {workload.metadata.description}")
    print("\nPolicies:")
    for policy in ALL_POLICIES:
        print(
            f"  {policy.name:14s} loads L1/L2: {policy.cache_loads_l1}/{policy.cache_loads_l2}  "
            f"stores L2: {policy.cache_stores_l2}  AB/CR/PCby: "
            f"{policy.allocation_bypass}/{policy.cache_rinsing}/{policy.pc_bypass}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload, scale=args.scale)
    policy = policy_by_name(args.policy)
    report = simulate(workload, policy, config=_system_config(args))
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(render_kv_table(f"{args.workload} under {policy.name}", report.as_dict()))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload_name = args.workload
    comparison = PolicyComparison(workload=workload_name)
    config = _system_config(args)
    for name in args.policies:
        policy = policy_by_name(name)
        workload = get_workload(workload_name, scale=args.scale)
        comparison.add(simulate(workload, policy, config=config))
    data = {
        workload_name: comparison.normalized_exec_time(
            baseline=args.policies[0] if "Uncached" not in comparison.reports else "Uncached"
        )
    }
    print(render_series_table(f"Execution time for {workload_name} (normalized)", data))
    dram = {workload_name: comparison.metric(lambda r: float(r.dram_accesses))}
    print(render_series_table(f"DRAM accesses for {workload_name}", dram, value_format="{:.0f}"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    title, builder, fmt = _FIGURES[args.number]
    runner = ExperimentRunner(
        scale=args.scale, config=_system_config(args), workload_names=args.workloads
    )
    data = builder(runner)
    print(render_series_table(title, data, value_format=fmt))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == "1":
        tables = table1_system_configuration(config=_system_config(args))
        print(render_kv_table("Table 1 (simulated, scaled configuration)", tables["simulated"]))
        print(render_kv_table("Table 1 (paper reference configuration)", tables["paper"]))
        return 0
    rows = table2_workloads(scale=args.scale)
    data = {
        str(row["name"]): {
            "paper kernels": float(row["paper_total_kernels"]),
            "sim kernels": float(row["sim_kernels"]),
            "sim requests": float(row["sim_line_requests"]),
            "sim footprint KB": row["sim_footprint_bytes"] / 1024.0,
        }
        for row in rows
    }
    print(render_series_table("Table 2: studied MI workloads (paper vs simulated)", data,
                              value_format="{:.0f}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "table":
        return _cmd_table(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
