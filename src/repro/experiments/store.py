"""Persistent on-disk store for simulation results.

Simulating the paper's full 17-workload x 6-policy grid is by far the most
expensive thing this repository does, and the CLI, the benchmark harness and
the examples all need (subsets of) the same grid.  :class:`ResultStore`
caches each finished :class:`~repro.stats.report.RunReport` as a small JSON
blob keyed by a content hash of the *inputs* of the run (workload, scale,
policy, system configuration -- see
:meth:`repro.experiments.jobs.JobSpec.fingerprint`), so any process that
asks for the same cell again gets it back without simulating.

Layout: one ``<key>.json`` file per result under the store root, written
atomically (temp file + ``os.replace``) so concurrent workers and readers
never observe a torn blob.  Corrupt or schema-incompatible blobs are
treated as misses, never as errors: the store is a cache, and the worst
outcome of losing an entry is re-simulating it.  A *corrupt* entry (the
file exists but cannot be parsed -- e.g. truncated by a full disk or a
killed process) additionally emits a :class:`RuntimeWarning` naming the
file, so silent re-simulation never masks a sick cache directory; an entry
from a different schema/code version is silently stale, not corrupt.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Iterator, Mapping, Optional

from repro.fingerprint import SCHEMA_VERSION
from repro.ioutil import atomic_write_json
from repro.stats.report import RunReport

__all__ = ["ResultStore", "default_cache_dir"]


def default_cache_dir() -> Path:
    """The conventional store location: ``$REPRO_CACHE_DIR`` if set, else
    ``$XDG_CACHE_HOME/repro-gpu-cache`` (``~/.cache/repro-gpu-cache``)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-gpu-cache"


class ResultStore:
    """Directory of JSON result blobs keyed by job fingerprint.

    Args:
        root: store directory; created (with parents) on first use.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise NotADirectoryError(
                f"result store path {self.root} exists and is not a directory"
            ) from exc

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        if not key or any(ch in key for ch in "/\\."):
            raise ValueError(f"invalid store key {key!r}")
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[RunReport]:
        """Return the stored report for ``key``, or ``None`` on a miss.

        Every failure mode is a miss (the caller re-simulates); a file
        that exists but cannot be parsed or rebuilt into a report is
        reported with a :class:`RuntimeWarning` so operators learn about
        truncated/corrupt entries instead of paying for silent
        re-simulation forever.
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None  # a clean miss
        except OSError as exc:
            self._warn_corrupt(path, f"unreadable ({exc})")
            return None
        try:
            blob = json.loads(raw)
        except ValueError as exc:
            # malformed/truncated JSON (JSONDecodeError) or non-UTF-8
            # bytes (UnicodeDecodeError)
            self._warn_corrupt(path, f"malformed JSON ({exc})")
            return None
        if not isinstance(blob, Mapping):
            self._warn_corrupt(path, f"expected an object, found {type(blob).__name__}")
            return None
        if blob.get("schema") != SCHEMA_VERSION:
            return None  # a stale-schema entry is expected, not corrupt
        report = blob.get("report")
        if not isinstance(report, Mapping):
            self._warn_corrupt(path, "entry has no report object")
            return None
        try:
            return RunReport.from_dict(report)
        except (ValueError, TypeError) as exc:
            self._warn_corrupt(path, f"report does not deserialize ({exc})")
            return None

    @staticmethod
    def _warn_corrupt(path: Path, reason: str) -> None:
        warnings.warn(
            f"result store entry {path} is corrupt: {reason}; "
            "ignoring it and re-simulating",
            RuntimeWarning,
            stacklevel=3,
        )

    def save(self, key: str, report: RunReport, job: Optional[Mapping[str, object]] = None) -> None:
        """Persist ``report`` under ``key`` atomically.

        Args:
            key: the job fingerprint.
            job: optional human-readable summary of the job inputs, stored
                alongside the report so blobs can be audited with ``jq``.
        """
        path = self._path(key)
        blob: dict[str, object] = {"schema": SCHEMA_VERSION, "key": key, "report": report.to_dict()}
        if job is not None:
            blob["job"] = dict(job)
        # the ".tmp-" prefix keeps writer orphans visible to prune()/stats()
        # (and excluded from keys()) exactly as before the shared writer
        atomic_write_json(
            path,
            blob,
            indent=None,
            sort_keys=True,
            trailing_newline=False,
            tmp_prefix=".tmp-",
        )

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Iterate over the keys currently stored.

        Writer orphans (``.tmp-*.json``, matched by pathlib's dotfile-
        inclusive glob) are skipped -- their stems are not valid keys and
        would make ``load`` reject this method's own output.
        """
        for path in self.root.glob("*.json"):
            if not path.name.startswith(".tmp-"):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def clear(self) -> int:
        """Delete every stored blob; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_age_days: float) -> int:
        """Delete blobs older than ``max_age_days``; returns the count removed.

        Age is the entry file's modification time -- a blob is re-written
        (and therefore refreshed) whenever its cell is re-simulated, so
        pruning removes results no sweep has produced recently: stale
        configurations, abandoned scales, and entries from old code
        versions that the schema/code-digest keys already treat as misses.
        Leftover ``.tmp-*`` files from crashed writers past the cutoff are
        removed too (they are invisible to :meth:`load` but hold disk).
        The benchmark harness's ``.bench_store`` grows without bound
        otherwise; ``repro-gpu-cache cache prune`` drives this.
        """
        if max_age_days < 0:
            raise ValueError(f"max_age_days must be non-negative, got {max_age_days}")
        cutoff = time.time() - max_age_days * 86400.0
        removed = 0
        # pathlib's glob matches dotfiles, so "*.json" also finds the
        # ".tmp-*.json" orphans -- union the two patterns by path
        for path in {*self.root.glob("*.json"), *self.root.glob(".tmp-*")}:
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                pass  # raced with a writer or another pruner: not our entry to count
        return removed

    def stats(self) -> dict[str, object]:
        """Occupancy summary: entry count, bytes on disk, and age range.

        Ages are in days (``None`` when the store is empty); ``stale_tmp``
        counts orphaned temp files from interrupted writes.  Rendered by
        ``repro-gpu-cache cache stats``.
        """
        now = time.time()
        entries = 0
        total_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for path in self.root.glob("*.json"):
            if path.name.startswith(".tmp-"):
                continue  # writer orphans are reported via stale_tmp, not entries
            try:
                stat = path.stat()
            except OSError:
                continue
            entries += 1
            total_bytes += stat.st_size
            age = now - stat.st_mtime
            oldest = age if oldest is None else max(oldest, age)
            newest = age if newest is None else min(newest, age)
        stale_tmp = sum(1 for _ in self.root.glob(".tmp-*"))
        day = 86400.0
        return {
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total_bytes,
            "oldest_age_days": round(oldest / day, 3) if oldest is not None else None,
            "newest_age_days": round(newest / day, 3) if newest is not None else None,
            "stale_tmp": stale_tmp,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, entries={len(self)})"
