"""Experiment drivers that regenerate the paper's tables and figures.

Each module corresponds to a block of the paper's evaluation:

* :mod:`repro.experiments.tables` -- Table 1 (system configuration) and
  Table 2 (workload inventory).
* :mod:`repro.experiments.characterization` -- Figure 4 (GVOPS) and
  Figure 5 (GMR/s), measured under the CacheR policy.
* :mod:`repro.experiments.static_policies` -- Figures 6-9: execution time,
  DRAM accesses, cache stalls and DRAM row-hit rate for the three static
  policies, normalized to Uncached.
* :mod:`repro.experiments.optimizations` -- Figures 10-13: the same metrics
  for the best/worst static policies and the cumulative optimization stack
  (CacheRW-AB, CacheRW-CR, CacheRW-PCby).
* :mod:`repro.experiments.adaptive` -- Figure 14: the online dynamic
  policy (set dueling + phase detection) against the static envelope and
  the optimization stack.
* :mod:`repro.experiments.scaling` -- the device-scaling study: policies
  across 1/2/4-device NUMA topologies (speedup and remote-traffic
  fraction per cell).
* :mod:`repro.experiments.interference` -- the multi-tenant interference
  study: serving mixes of concurrent streams under shared vs partitioned
  CU dispatch (per-tenant slowdown and unfairness per cell).
* :mod:`repro.experiments.resilience` -- the chaos study: serving mixes
  under deterministic fault plans (link brownouts, device outages, DRAM
  storms, tenant churn), reporting slowdown and availability per cell.
* :mod:`repro.experiments.jobs` -- the job-based sweep executor:
  :class:`JobSpec` grid cells, serial and process-pool backends, and the
  store-aware :class:`SweepExecutor`.
* :mod:`repro.experiments.store` -- the persistent on-disk result store
  keyed by job fingerprints.
* :mod:`repro.experiments.runner` -- :class:`ExperimentRunner`, the
  memoizing front-end used by all of the above and the benchmark harness.
"""

from repro.experiments.jobs import (
    JobFailure,
    JobSpec,
    ProcessPoolBackend,
    SerialBackend,
    SweepCheckpoint,
    SweepExecutor,
    execute_job,
)
from repro.experiments.store import ResultStore, default_cache_dir
from repro.experiments.runner import ExperimentRunner, SweepResult
from repro.experiments.characterization import figure4_gvops, figure5_gmrs
from repro.experiments.static_policies import (
    figure6_execution_time,
    figure7_dram_accesses,
    figure8_cache_stalls,
    figure9_row_hit_rate,
    static_policy_sweep,
)
from repro.experiments.optimizations import (
    figure10_execution_time,
    figure11_dram_accesses,
    figure12_cache_stalls,
    figure13_row_hit_rate,
    optimization_sweep,
)
from repro.experiments.adaptive import (
    adaptive_summary,
    adaptive_sweep,
    figure14_adaptive,
)
from repro.experiments.scaling import (
    figure_scaling,
    scaling_summary,
    scaling_topologies,
)
from repro.experiments.interference import (
    figure_interference,
    interference_summary,
    interference_series,
)
from repro.experiments.resilience import (
    figure_resilience,
    resilience_series,
    resilience_summary,
)
from repro.experiments.tables import table1_system_configuration, table2_workloads
from repro.experiments.render import render_series_table

__all__ = [
    "ExperimentRunner",
    "SweepResult",
    "JobSpec",
    "JobFailure",
    "SerialBackend",
    "ProcessPoolBackend",
    "SweepCheckpoint",
    "SweepExecutor",
    "ResultStore",
    "default_cache_dir",
    "execute_job",
    "figure4_gvops",
    "figure5_gmrs",
    "figure6_execution_time",
    "figure7_dram_accesses",
    "figure8_cache_stalls",
    "figure9_row_hit_rate",
    "figure10_execution_time",
    "figure11_dram_accesses",
    "figure12_cache_stalls",
    "figure13_row_hit_rate",
    "static_policy_sweep",
    "optimization_sweep",
    "adaptive_sweep",
    "figure14_adaptive",
    "adaptive_summary",
    "figure_scaling",
    "scaling_summary",
    "scaling_topologies",
    "figure_interference",
    "interference_summary",
    "interference_series",
    "figure_resilience",
    "resilience_summary",
    "resilience_series",
    "table1_system_configuration",
    "table2_workloads",
    "render_series_table",
]
