"""Tables 1 and 2 of the paper.

Table 1 lists the simulated system parameters; Table 2 lists the seventeen
studied MI workloads with their input configuration, kernel counts and GPU
memory footprint.  The reproduction renders both from the live
configuration and trace generators so they always reflect what the
simulator actually runs.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig, default_config, paper_config
from repro.workloads.registry import workload_metadata_table

__all__ = ["table1_system_configuration", "table2_workloads"]


def table1_system_configuration(
    config: Optional[SystemConfig] = None, include_paper_reference: bool = True
) -> dict[str, dict[str, str]]:
    """Table 1: key simulated system parameters.

    Returns a mapping with the simulated (scaled) configuration and, when
    requested, the paper's unscaled reference configuration side by side.
    """
    config = config or default_config()
    tables = {"simulated": config.describe()}
    if include_paper_reference:
        tables["paper"] = paper_config().describe()
    return tables


def table2_workloads(scale: float = 1.0) -> list[dict[str, object]]:
    """Table 2: the studied MI workloads.

    Each row carries the paper's reported metadata (input, kernel counts,
    footprint) plus the scaled trace statistics actually simulated, so the
    substitution documented in DESIGN.md is visible in the artifact itself.
    """
    return workload_metadata_table(scale=scale)
