"""The device-scaling study: cache policies across 1/2/4-device systems.

The paper evaluates its policies on one GPU; modern MI training runs on
multi-chiplet packages and multi-GPU nodes where the local-vs-remote
asymmetry of a distributed L2 dominates how much a caching policy can pay
off.  This driver sweeps (workload x policy x device count) through the
shared :class:`~repro.experiments.jobs.SweepExecutor` -- every cell is an
ordinary :class:`~repro.experiments.jobs.JobSpec` whose fingerprint
includes the :class:`~repro.topology.config.TopologyConfig`, so the cells
parallelize across worker processes and persist in the result store
exactly like static and adaptive runs (a warm repeat simulates nothing).

Two quantities are reported per cell:

* **speedup** -- execution time at 1 device divided by execution time at
  N devices, same policy (strong scaling: a fixed workload is split
  across N devices, each adding CUs, an L2 slice and a DRAM partition,
  so ideal is N and the distance below N is what the fabric + NUMA
  effects cost);
* **remote fraction** -- the fraction of slice-bound requests homed on a
  remote device (always 0 at 1 device).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.core.policies import STATIC_POLICIES, PolicySpec
from repro.experiments.adaptive import geomean
from repro.experiments.runner import ExperimentRunner
from repro.topology.config import TopologyConfig

__all__ = [
    "SCALING_DEVICES",
    "SCALING_WORKLOADS",
    "scaling_topologies",
    "figure_scaling",
    "scaling_summary",
    "scaling_series",
    "scaling_artifact",
]

#: device counts of the scaling axis (1 is the baseline)
SCALING_DEVICES: tuple[int, ...] = (1, 2, 4)

#: default workload subset: one dense GEMM, one streaming-heavy kernel,
#: one many-kernel RNN, and the transformer attention layer the NUMA
#: literature singles out as fabric-sensitive
SCALING_WORKLOADS: tuple[str, ...] = ("DGEMM", "SGEMM", "FwLSTM", "MHA")


def scaling_topologies(
    devices: Sequence[int] = SCALING_DEVICES,
    template: Optional[TopologyConfig] = None,
) -> list[TopologyConfig]:
    """The topology per device count, holding the fabric parameters fixed.

    ``template`` supplies the fabric (defaults to a fresh
    :class:`TopologyConfig`, the chiplet-ish defaults); only the device
    count varies along the sweep axis.
    """
    base = template or TopologyConfig()
    return [base.with_devices(n) for n in devices]


def figure_scaling(
    runner: Optional[ExperimentRunner] = None,
    devices: Sequence[int] = SCALING_DEVICES,
    policies: Iterable[PolicySpec] = STATIC_POLICIES,
    workload_names: Optional[Sequence[str]] = None,
    topology: Optional[TopologyConfig] = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """The scaling figure: speedup and remote fraction per grid cell.

    Returns ``{workload: {"<policy>@<n>dev": {"speedup": s,
    "remote_fraction": r, "cycles": c}}}``.  The 1-device cells anchor
    every policy's speedup at 1.0 by construction.
    """
    runner = runner or ExperimentRunner()
    if 1 not in devices:
        raise ValueError("the scaling sweep needs the 1-device baseline in `devices`")
    names = tuple(workload_names or SCALING_WORKLOADS)
    policy_list = tuple(policies)
    topologies = scaling_topologies(devices, template=topology)
    by_devices = dict(zip(devices, topologies))
    reports = runner.topology_sweep(policy_list, topologies, workload_names=names)

    result: dict[str, dict[str, dict[str, float]]] = {}
    for workload in names:
        series: dict[str, dict[str, float]] = {}
        for policy in policy_list:
            baseline = reports[
                (workload, policy.name, by_devices[1].fingerprint())
            ].cycles
            for count in devices:
                report = reports[(workload, policy.name, by_devices[count].fingerprint())]
                series[f"{policy.name}@{count}dev"] = {
                    "speedup": baseline / report.cycles if report.cycles else 0.0,
                    "remote_fraction": report.remote_fraction,
                    "cycles": float(report.cycles),
                }
        result[workload] = series
    return result


def scaling_series(
    figure: Mapping[str, Mapping[str, Mapping[str, float]]], metric: str
) -> dict[str, dict[str, float]]:
    """Project one metric (``"speedup"``/``"remote_fraction"``/``"cycles"``)
    out of the scaling figure, in the shape ``render_series_table`` takes.

    Shared by the CLI and the benchmark so their tables can never drift.
    """
    return {
        workload: {series: cell[metric] for series, cell in data.items()}
        for workload, data in figure.items()
    }


def scaling_artifact(
    figure: Mapping[str, Mapping[str, Mapping[str, float]]],
    summary: Mapping[str, Mapping[str, float]],
    devices: Sequence[int],
    workload_names: Sequence[str],
    **extra: object,
) -> dict[str, object]:
    """The JSON blob recorded for the scaling figure (CI artifact schema).

    One schema for every producer (``repro-gpu-cache topology --json-out``
    and ``benchmarks/test_fig_scaling.py``); producers may attach
    additional context via ``extra`` (fabric parameters, scale, policies)
    without changing the core shape consumers read.
    """
    blob: dict[str, object] = {
        "schema": 1,
        "devices": list(devices),
        "workloads": list(workload_names),
        "figure_scaling": {
            workload: {series: dict(cell) for series, cell in data.items()}
            for workload, data in figure.items()
        },
        "summary": {series: dict(values) for series, values in summary.items()},
    }
    blob.update(extra)
    return blob


def scaling_summary(
    figure: Mapping[str, Mapping[str, Mapping[str, float]]],
) -> dict[str, dict[str, float]]:
    """Geomean speedup and mean remote fraction of every series.

    Keyed like the figure's series (``"<policy>@<n>dev"``); the summary is
    what the scaling benchmark asserts on and what the CLI prints last.
    """
    series_names: list[str] = []
    for series in figure.values():
        for name in series:
            if name not in series_names:
                series_names.append(name)
    summary: dict[str, dict[str, float]] = {}
    for name in series_names:
        cells = [series[name] for series in figure.values() if name in series]
        summary[name] = {
            "speedup_geomean": geomean(cell["speedup"] for cell in cells),
            "remote_fraction_mean": sum(cell["remote_fraction"] for cell in cells)
            / len(cells),
        }
    return summary
