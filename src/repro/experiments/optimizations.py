"""Figures 10-13: the cumulative caching-optimization stack.

The paper evaluates three optimizations applied cumulatively on top of the
CacheRW policy -- allocation bypass (CacheRW-AB), DBI-based cache rinsing
(CacheRW-CR) and PC-based L2 bypassing (CacheRW-PCby) -- and compares them
against the best and worst *static* policy for each workload (as measured
in Figure 6):

* Figure 10 -- execution time, normalized to the best static policy.
* Figure 11 -- DRAM accesses, normalized to Uncached.
* Figure 12 -- cache stalls per GPU memory request.
* Figure 13 -- DRAM row-buffer hit ratio.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies import OPTIMIZED_POLICIES, STATIC_POLICIES, UNCACHED
from repro.experiments.runner import ExperimentRunner, SweepResult
from repro.experiments.static_policies import static_policy_sweep
from repro.stats.report import RunReport

__all__ = [
    "optimization_sweep",
    "figure10_execution_time",
    "figure11_dram_accesses",
    "figure12_cache_stalls",
    "figure13_row_hit_rate",
    "STATIC_BEST",
    "STATIC_WORST",
]

#: series labels used by Figures 10-13
STATIC_BEST = "StaticBest"
STATIC_WORST = "StaticWorst"


def optimization_sweep(runner: Optional[ExperimentRunner] = None) -> SweepResult:
    """Static policies plus the optimization stack for every workload."""
    runner = runner or ExperimentRunner()
    static = runner.sweep(policies=STATIC_POLICIES)
    optimized = runner.sweep(policies=OPTIMIZED_POLICIES)
    return static.merged(optimized)


def _series_reports(sweep: SweepResult, workload: str) -> dict[str, RunReport]:
    """Best/worst static plus the three optimized configurations."""
    comparison = sweep.comparison(workload)
    static_names = [p.name for p in STATIC_POLICIES]
    best = comparison.static_best(static_names)
    worst = comparison.static_worst(static_names)
    series: dict[str, RunReport] = {
        STATIC_BEST: sweep.get(workload, best),
        STATIC_WORST: sweep.get(workload, worst),
    }
    for policy in OPTIMIZED_POLICIES:
        series[policy.name] = sweep.get(workload, policy.name)
    return series


def figure10_execution_time(
    runner: Optional[ExperimentRunner] = None, sweep: Optional[SweepResult] = None
) -> dict[str, dict[str, float]]:
    """Figure 10: execution time normalized to the best static policy."""
    sweep = sweep or optimization_sweep(runner)
    result: dict[str, dict[str, float]] = {}
    for workload in sweep.workloads():
        series = _series_reports(sweep, workload)
        baseline = series[STATIC_BEST].cycles
        result[workload] = {
            name: report.cycles / baseline for name, report in series.items()
        }
    return result


def figure11_dram_accesses(
    runner: Optional[ExperimentRunner] = None, sweep: Optional[SweepResult] = None
) -> dict[str, dict[str, float]]:
    """Figure 11: DRAM accesses normalized to Uncached."""
    sweep = sweep or optimization_sweep(runner)
    result: dict[str, dict[str, float]] = {}
    for workload in sweep.workloads():
        series = _series_reports(sweep, workload)
        baseline = sweep.get(workload, UNCACHED.name).dram_accesses
        result[workload] = {
            name: (report.dram_accesses / baseline if baseline else 0.0)
            for name, report in series.items()
        }
    return result


def figure12_cache_stalls(
    runner: Optional[ExperimentRunner] = None, sweep: Optional[SweepResult] = None
) -> dict[str, dict[str, float]]:
    """Figure 12: cache stall cycles per GPU memory request."""
    sweep = sweep or optimization_sweep(runner)
    result: dict[str, dict[str, float]] = {}
    for workload in sweep.workloads():
        series = _series_reports(sweep, workload)
        result[workload] = {
            name: report.cache_stalls_per_request for name, report in series.items()
        }
    return result


def figure13_row_hit_rate(
    runner: Optional[ExperimentRunner] = None, sweep: Optional[SweepResult] = None
) -> dict[str, dict[str, float]]:
    """Figure 13: DRAM row-buffer hit ratio."""
    sweep = sweep or optimization_sweep(runner)
    result: dict[str, dict[str, float]] = {}
    for workload in sweep.workloads():
        series = _series_reports(sweep, workload)
        result[workload] = {
            name: report.dram_row_hit_rate for name, report in series.items()
        }
    return result
