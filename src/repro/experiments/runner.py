"""Shared sweep executor for the experiment drivers and benchmarks.

Running the full evaluation requires simulating every workload under up to
six policies.  :class:`ExperimentRunner` memoizes individual runs so that
the figures which share data (e.g. Figures 6-9 all use the static-policy
sweep) only pay for each simulation once within a process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.config import SystemConfig, default_config
from repro.core.policies import STATIC_POLICIES, PolicySpec
from repro.session import simulate
from repro.stats.comparison import PolicyComparison
from repro.stats.report import RunReport
from repro.workloads.registry import WORKLOAD_NAMES, get_workload

__all__ = ["ExperimentRunner", "SweepResult"]


@dataclass
class SweepResult:
    """Reports for a (workload x policy) grid."""

    reports: dict[tuple[str, str], RunReport] = field(default_factory=dict)

    def add(self, report: RunReport) -> None:
        self.reports[(report.workload, report.policy)] = report

    def get(self, workload: str, policy: str) -> RunReport:
        return self.reports[(workload, policy)]

    def workloads(self) -> list[str]:
        seen: list[str] = []
        for workload, _policy in self.reports:
            if workload not in seen:
                seen.append(workload)
        return seen

    def policies(self) -> list[str]:
        seen: list[str] = []
        for _workload, policy in self.reports:
            if policy not in seen:
                seen.append(policy)
        return seen

    def comparison(self, workload: str) -> PolicyComparison:
        """All of one workload's reports as a :class:`PolicyComparison`."""
        comparison = PolicyComparison(workload=workload)
        for (name, _policy), report in self.reports.items():
            if name == workload:
                comparison.add(report)
        if not comparison.reports:
            raise KeyError(f"no reports recorded for workload {workload!r}")
        return comparison

    def merged(self, other: "SweepResult") -> "SweepResult":
        """Union of two sweeps (other wins on conflicts)."""
        merged = SweepResult(reports=dict(self.reports))
        merged.reports.update(other.reports)
        return merged


class ExperimentRunner:
    """Runs and memoizes (workload, policy) simulations.

    Args:
        scale: workload scale factor passed to the trace generators.
        config: system configuration (defaults to the scaled 8-CU system).
        workload_names: subset of workloads to evaluate (defaults to all 17).
    """

    def __init__(
        self,
        scale: float = 1.0,
        config: Optional[SystemConfig] = None,
        workload_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.scale = scale
        self.config = config or default_config()
        self.workload_names = tuple(workload_names or WORKLOAD_NAMES)
        self._cache: dict[tuple[str, str], RunReport] = {}

    # ------------------------------------------------------------------
    def run_one(self, workload_name: str, policy: PolicySpec) -> RunReport:
        """Simulate one (workload, policy) pair, memoized."""
        key = (workload_name, policy.name)
        if key not in self._cache:
            workload = get_workload(workload_name, scale=self.scale)
            self._cache[key] = simulate(workload, policy, config=self.config)
        return self._cache[key]

    def sweep(
        self,
        policies: Iterable[PolicySpec] = STATIC_POLICIES,
        workload_names: Optional[Sequence[str]] = None,
    ) -> SweepResult:
        """Simulate every requested workload under every requested policy."""
        result = SweepResult()
        names = tuple(workload_names or self.workload_names)
        for name in names:
            for policy in policies:
                result.add(self.run_one(name, policy))
        return result

    def cached_runs(self) -> int:
        """Number of simulations memoized so far."""
        return len(self._cache)
