"""Shared sweep executor for the experiment drivers and benchmarks.

Running the full evaluation requires simulating every workload under up to
six policies.  :class:`ExperimentRunner` turns (workload, policy) requests
into :class:`~repro.experiments.jobs.JobSpec` jobs and delegates them to a
:class:`~repro.experiments.jobs.SweepExecutor`, which can fan independent
grid cells out across worker processes and persist finished reports in an
on-disk :class:`~repro.experiments.store.ResultStore`.  The runner keeps
its own in-process memo as an L1 over the store, so figures that share
data (e.g. Figures 6-9 all use the static-policy sweep) only pay for each
simulation once within a process -- and, with a store attached, only once
*ever* for a given configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.adaptive.config import AdaptiveConfig
from repro.config import SystemConfig, default_config
from repro.core.policies import STATIC_POLICIES, PolicySpec
from repro.experiments.jobs import (
    JobSpec,
    ProcessPoolBackend,
    SerialBackend,
    SweepCheckpoint,
    SweepExecutor,
)
from repro.experiments.store import ResultStore
from repro.faults.config import FaultPlan
from repro.obs.ledger import RunLedger
from repro.stats.comparison import PolicyComparison
from repro.stats.report import RunReport
from repro.streams.config import ServingMix
from repro.topology.config import TopologyConfig
from repro.workloads.registry import WORKLOAD_NAMES

__all__ = ["ExperimentRunner", "SweepResult"]


@dataclass
class SweepResult:
    """Reports for a (workload x policy) grid."""

    reports: dict[tuple[str, str], RunReport] = field(default_factory=dict)

    def add(self, report: RunReport) -> None:
        self.reports[(report.workload, report.policy)] = report

    def get(self, workload: str, policy: str) -> RunReport:
        return self.reports[(workload, policy)]

    def workloads(self) -> list[str]:
        seen: list[str] = []
        for workload, _policy in self.reports:
            if workload not in seen:
                seen.append(workload)
        return seen

    def policies(self) -> list[str]:
        seen: list[str] = []
        for _workload, policy in self.reports:
            if policy not in seen:
                seen.append(policy)
        return seen

    def comparison(self, workload: str) -> PolicyComparison:
        """All of one workload's reports as a :class:`PolicyComparison`."""
        comparison = PolicyComparison(workload=workload)
        for (name, _policy), report in self.reports.items():
            if name == workload:
                comparison.add(report)
        if not comparison.reports:
            raise KeyError(f"no reports recorded for workload {workload!r}")
        return comparison

    def merged(self, other: "SweepResult") -> "SweepResult":
        """Union of two sweeps (other wins on conflicts)."""
        merged = SweepResult(reports=dict(self.reports))
        merged.reports.update(other.reports)
        return merged


class ExperimentRunner:
    """Runs and memoizes (workload, policy) simulations.

    Args:
        scale: workload scale factor passed to the trace generators.
        config: system configuration (defaults to the scaled 8-CU system).
        workload_names: subset of workloads to evaluate (defaults to all 17).
        executor: a (possibly shared) :class:`SweepExecutor`.  When given,
            ``jobs`` and ``cache_dir`` are ignored -- the executor already
            fixes the backend and store.
        jobs: worker process count; values above 1 select a
            :class:`ProcessPoolBackend` that fans the grid out across cores.
        cache_dir: directory for the persistent result store; ``None``
            keeps results in-process only (the pre-existing behaviour).
        job_timeout: with a process pool, seconds each batch may run
            before its stragglers are abandoned (and retried, if
            ``job_retries`` allows).
        job_retries: with a process pool, how many times a dead or hung
            job is retried on a fresh pool before its failure is raised.
        ledger_path: run-ledger JSONL file every simulated cell (and the
            sweep aggregate, via ``executor.record_sweep``) is recorded
            into; ``None`` disables provenance recording.  Ignored when an
            ``executor`` is supplied.
    """

    def __init__(
        self,
        scale: float = 1.0,
        config: Optional[SystemConfig] = None,
        workload_names: Optional[Sequence[str]] = None,
        executor: Optional[SweepExecutor] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        job_timeout: Optional[float] = None,
        job_retries: int = 0,
        ledger_path: Optional[str] = None,
    ) -> None:
        self.scale = scale
        self.config = config or default_config()
        self.workload_names = tuple(workload_names or WORKLOAD_NAMES)
        if executor is None:
            backend = (
                ProcessPoolBackend(
                    max_workers=jobs, timeout=job_timeout, retries=job_retries
                )
                if jobs is not None and jobs > 1
                else SerialBackend()
            )
            store = ResultStore(cache_dir) if cache_dir is not None else None
            ledger = RunLedger(ledger_path) if ledger_path is not None else None
            executor = SweepExecutor(backend=backend, store=store, ledger=ledger)
        self.executor = executor
        self._cache: dict[tuple[str, str], RunReport] = {}
        self._memo_hits = 0

    # ------------------------------------------------------------------
    def job_for(self, workload_name: str, policy: PolicySpec) -> JobSpec:
        """The :class:`JobSpec` this runner submits for one grid cell."""
        return JobSpec(
            workload=workload_name,
            policy=policy,
            scale=self.scale,
            config=self.config,
        )

    def run_one(self, workload_name: str, policy: PolicySpec) -> RunReport:
        """Simulate one (workload, policy) pair, memoized."""
        key = (workload_name, policy.name)
        if key in self._cache:
            self._memo_hits += 1
            return self._cache[key]
        report = self.executor.run_one(self.job_for(workload_name, policy))
        self._cache[key] = report
        return report

    def sweep(
        self,
        policies: Iterable[PolicySpec] = STATIC_POLICIES,
        workload_names: Optional[Sequence[str]] = None,
    ) -> SweepResult:
        """Simulate every requested workload under every requested policy.

        The cells missing from the in-process memo are submitted to the
        executor as one batch, which is what lets a process-pool backend
        run the whole grid concurrently.
        """
        names = tuple(workload_names or self.workload_names)
        policy_list = tuple(policies)
        grid = [(name, policy) for name in names for policy in policy_list]
        pending = [
            (name, policy)
            for name, policy in grid
            if (name, policy.name) not in self._cache
        ]
        self._memo_hits += len(grid) - len(pending)
        if pending:
            reports = self.executor.run(
                [self.job_for(name, policy) for name, policy in pending]
            )
            for (name, policy), report in zip(pending, reports):
                self._cache[(name, policy.name)] = report
        result = SweepResult()
        for name, policy in grid:
            result.add(self._cache[(name, policy.name)])
        return result

    # ------------------------------------------------------------------
    def adaptive_job_for(self, workload_name: str, adaptive: AdaptiveConfig) -> JobSpec:
        """The :class:`JobSpec` for one online-adaptive (dynamic) run."""
        return JobSpec(
            workload=workload_name,
            policy=adaptive.initial_policy,
            scale=self.scale,
            config=self.config,
            adaptive=adaptive,
        )

    def adaptive_sweep(
        self,
        adaptive: AdaptiveConfig,
        workload_names: Optional[Sequence[str]] = None,
    ) -> dict[str, RunReport]:
        """One dynamic run per workload, memoized like the static cells.

        The in-process memo keys dynamic cells by the adaptive
        configuration's fingerprint, so two differently-tuned adaptive
        studies sharing one runner never collide, and the executor
        accounting (`runs_simulated + runs_loaded == cached_runs`) holds
        for mixed static/dynamic usage.
        """
        names = tuple(workload_names or self.workload_names)
        memo_tag = f"adaptive:{adaptive.fingerprint()}"
        pending = [name for name in names if (name, memo_tag) not in self._cache]
        self._memo_hits += len(names) - len(pending)
        if pending:
            reports = self.executor.run(
                [self.adaptive_job_for(name, adaptive) for name in pending]
            )
            for name, report in zip(pending, reports):
                self._cache[(name, memo_tag)] = report
        return {name: self._cache[(name, memo_tag)] for name in names}

    # ------------------------------------------------------------------
    def topology_job_for(
        self, workload_name: str, policy: PolicySpec, topology: TopologyConfig
    ) -> JobSpec:
        """The :class:`JobSpec` for one multi-device (topology) run."""
        return JobSpec(
            workload=workload_name,
            policy=policy,
            scale=self.scale,
            config=self.config,
            topology=topology,
        )

    def topology_sweep(
        self,
        policies: Iterable[PolicySpec],
        topologies: Sequence[TopologyConfig],
        workload_names: Optional[Sequence[str]] = None,
    ) -> dict[tuple[str, str, str], RunReport]:
        """One run per (workload, policy, topology) cell, memoized.

        Returns reports keyed by ``(workload, policy name, topology
        fingerprint)``.  Cells missing from the in-process memo are
        submitted to the executor as a single batch -- the parallel
        fan-out point -- and, with a store attached, persist under
        fingerprints that include the :class:`TopologyConfig`, so a warm
        repeat of a scaling sweep performs zero simulations.
        """
        names = tuple(workload_names or self.workload_names)
        policy_list = tuple(policies)
        grid: list[tuple[str, PolicySpec, TopologyConfig, str]] = [
            (name, policy, topology, topology.fingerprint())
            for name in names
            for policy in policy_list
            for topology in topologies
        ]
        pending = [
            cell
            for cell in grid
            if (cell[0], f"{cell[1].name}@topo:{cell[3]}") not in self._cache
        ]
        self._memo_hits += len(grid) - len(pending)
        if pending:
            reports = self.executor.run(
                [
                    self.topology_job_for(name, policy, topology)
                    for name, policy, topology, _tag in pending
                ]
            )
            for (name, policy, _topology, tag), report in zip(pending, reports):
                self._cache[(name, f"{policy.name}@topo:{tag}")] = report
        return {
            (name, policy.name, tag): self._cache[(name, f"{policy.name}@topo:{tag}")]
            for name, policy, _topology, tag in grid
        }

    # ------------------------------------------------------------------
    def serving_job_for(self, mix: ServingMix, policy: PolicySpec) -> JobSpec:
        """The :class:`JobSpec` for one multi-tenant serving (mix) run.

        The mix's per-stream scales are multiplied by the runner's scale
        (the same knob that scales every other cell), and the mix name is
        recorded as the job's display label.
        """
        scaled = mix.scaled(self.scale)
        return JobSpec(
            workload=mix.name,
            policy=policy,
            config=self.config,
            streams=scaled.streams,
        )

    def solo_job_for(self, workload_name: str, scale: float, policy: PolicySpec) -> JobSpec:
        """The single-workload baseline cell of one serving tenant.

        A plain static job -- its fingerprint coincides with the ordinary
        sweep cells of the same (workload, scale, policy, config), so solo
        baselines are shared with every other experiment through the store.
        """
        return JobSpec(
            workload=workload_name,
            policy=policy,
            scale=scale * self.scale,
            config=self.config,
        )

    def solo_sweep(
        self,
        tenants: Sequence[tuple[str, float]],
        policies: Iterable[PolicySpec],
    ) -> dict[tuple[str, float, str], RunReport]:
        """One single-workload baseline per (workload, scale, policy), memoized.

        ``tenants`` are (workload, per-stream scale) pairs as they appear
        in serving mixes; the runner's own scale multiplies on top, the
        same way it does for the mix cells.  Returns reports keyed by
        ``(workload, scale, policy name)``.  The jobs are ordinary static
        cells, so with a store attached they share entries with the plain
        sweeps of the same configuration.
        """
        cells = sorted(set(tenants))
        policy_list = tuple(policies)
        grid = [(w, s, policy) for (w, s) in cells for policy in policy_list]
        pending = [
            cell
            for cell in grid
            if (cell[0], f"{cell[2].name}@solo:{cell[1]}") not in self._cache
        ]
        self._memo_hits += len(grid) - len(pending)
        if pending:
            reports = self.executor.run(
                [self.solo_job_for(w, s, policy) for w, s, policy in pending]
            )
            for (w, s, policy), report in zip(pending, reports):
                self._cache[(w, f"{policy.name}@solo:{s}")] = report
        return {
            (w, s, policy.name): self._cache[(w, f"{policy.name}@solo:{s}")]
            for w, s, policy in grid
        }

    def serving_sweep(
        self,
        mixes: Sequence[ServingMix],
        policies: Iterable[PolicySpec],
    ) -> dict[tuple[str, str], RunReport]:
        """One run per (mix, policy) cell, memoized.

        Returns reports keyed by ``(mix fingerprint, policy name)``.
        Cells missing from the in-process memo are submitted to the
        executor as a single batch; with a store attached they persist
        under fingerprints that include every stream configuration, so a
        warm repeat of an interference sweep performs zero simulations.
        """
        policy_list = tuple(policies)
        grid = [
            (mix, policy, mix.fingerprint()) for mix in mixes for policy in policy_list
        ]
        pending = [
            cell
            for cell in grid
            if (f"mix:{cell[2]}", cell[1].name) not in self._cache
        ]
        self._memo_hits += len(grid) - len(pending)
        if pending:
            reports = self.executor.run(
                [self.serving_job_for(mix, policy) for mix, policy, _tag in pending]
            )
            for (_mix, policy, tag), report in zip(pending, reports):
                self._cache[(f"mix:{tag}", policy.name)] = report
        return {
            (tag, policy.name): self._cache[(f"mix:{tag}", policy.name)]
            for _mix, policy, tag in grid
        }

    # ------------------------------------------------------------------
    def resilience_job_for(
        self,
        mix: ServingMix,
        policy: PolicySpec,
        topology: Optional[TopologyConfig],
        faults: Optional[FaultPlan],
    ) -> JobSpec:
        """The :class:`JobSpec` for one chaos cell: a serving mix on a
        (possibly multi-device) system with a fault plan injected.

        With an empty plan (or ``None``) the job fingerprints identically
        to the corresponding healthy serving run, so the baseline column
        of a resilience figure is shared with the interference study
        through the store.
        """
        scaled = mix.scaled(self.scale)
        return JobSpec(
            workload=mix.name,
            policy=policy,
            config=self.config,
            streams=scaled.streams,
            topology=topology,
            faults=faults,
        )

    def resilience_sweep(
        self,
        mixes: Sequence[ServingMix],
        policies: Iterable[PolicySpec],
        plans: Sequence[FaultPlan],
        topology: Optional[TopologyConfig] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
    ) -> dict[tuple[str, str, str], RunReport]:
        """One run per (mix, policy, fault plan) cell, memoized.

        Returns reports keyed by ``(mix fingerprint, policy name, plan
        fingerprint)``.  Cells missing from the in-process memo go to the
        executor as one batch (optionally progress-tracked by
        ``checkpoint``); with a store attached, a warm repeat of a chaos
        sweep performs zero simulations -- determinism makes even fault
        injection cacheable.
        """
        policy_list = tuple(policies)
        topo_tag = "" if topology is None else topology.fingerprint()
        grid = [
            (mix, policy, plan, mix.fingerprint(), plan.fingerprint())
            for mix in mixes
            for policy in policy_list
            for plan in plans
        ]

        def memo_key(cell: tuple) -> tuple[str, str]:
            _mix, policy, _plan, mix_tag, plan_tag = cell
            return (
                f"mix:{mix_tag}",
                f"{policy.name}@topo:{topo_tag}@faults:{plan_tag}",
            )

        pending = [cell for cell in grid if memo_key(cell) not in self._cache]
        self._memo_hits += len(grid) - len(pending)
        if pending:
            reports = self.executor.run(
                [
                    self.resilience_job_for(mix, policy, topology, plan)
                    for mix, policy, plan, _mix_tag, _plan_tag in pending
                ],
                checkpoint=checkpoint,
            )
            for cell, report in zip(pending, reports):
                self._cache[memo_key(cell)] = report
        return {
            (mix_tag, policy.name, plan_tag): self._cache[memo_key(cell)]
            for cell in grid
            for _mix, policy, _plan, mix_tag, plan_tag in [cell]
        }

    # ------------------------------------------------------------------
    def cached_runs(self) -> int:
        """Number of simulations memoized in-process so far."""
        return len(self._cache)

    @property
    def runs_simulated(self) -> int:
        """Reports this runner's executor actually simulated."""
        return self.executor.stats.runs_simulated

    @property
    def runs_loaded(self) -> int:
        """Reports this runner's executor served from the persistent store."""
        return self.executor.stats.runs_loaded

    @property
    def memo_hits(self) -> int:
        """Requests answered from the in-process memo (L1) alone."""
        return self._memo_hits

    def stats(self) -> dict[str, int]:
        """Cache-effectiveness accounting for benchmarks and the CLI.

        Note: ``runs_simulated``/``runs_loaded`` come from the executor, so
        when several runners share one executor (the benchmark harness)
        they aggregate across all of them.
        """
        return {
            "runs_simulated": self.runs_simulated,
            "runs_loaded": self.runs_loaded,
            "runs_failed": self.executor.stats.runs_failed,
            "memo_hits": self._memo_hits,
            "cached_runs": len(self._cache),
        }
