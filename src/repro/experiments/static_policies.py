"""Figures 6-9: characterization of the three static caching policies.

One sweep (every workload under Uncached, CacheR and CacheRW) provides the
data for all four figures:

* Figure 6 -- execution time normalized to Uncached.
* Figure 7 -- GPU memory requests reaching DRAM, normalized to Uncached.
* Figure 8 -- cache stalls per GPU memory request (log scale in the paper).
* Figure 9 -- DRAM row-buffer hit ratio.
"""

from __future__ import annotations

from typing import Optional

from repro.core.classification import WorkloadCategory, classify
from repro.core.policies import STATIC_POLICIES, UNCACHED
from repro.experiments.runner import ExperimentRunner, SweepResult

__all__ = [
    "static_policy_sweep",
    "figure6_execution_time",
    "figure7_dram_accesses",
    "figure8_cache_stalls",
    "figure9_row_hit_rate",
    "measured_categories",
]


def static_policy_sweep(runner: Optional[ExperimentRunner] = None) -> SweepResult:
    """Every workload under the three static policies (shared by Figs 6-9)."""
    runner = runner or ExperimentRunner()
    return runner.sweep(policies=STATIC_POLICIES)


def _per_workload(
    sweep: SweepResult, metric: str, normalize_to_uncached: bool
) -> dict[str, dict[str, float]]:
    result: dict[str, dict[str, float]] = {}
    for workload in sweep.workloads():
        comparison = sweep.comparison(workload)
        if metric == "exec_time":
            values = (
                comparison.normalized_exec_time(UNCACHED.name)
                if normalize_to_uncached
                else comparison.exec_times()
            )
        elif metric == "dram":
            values = (
                comparison.normalized_dram_accesses(UNCACHED.name)
                if normalize_to_uncached
                else comparison.metric(lambda r: float(r.dram_accesses))
            )
        elif metric == "stalls":
            values = comparison.stalls_per_request()
        elif metric == "row_hits":
            values = comparison.row_hit_rates()
        else:
            raise ValueError(f"unknown metric {metric!r}")
        result[workload] = values
    return result


def figure6_execution_time(
    runner: Optional[ExperimentRunner] = None, sweep: Optional[SweepResult] = None
) -> dict[str, dict[str, float]]:
    """Figure 6: execution time per static policy, normalized to Uncached."""
    sweep = sweep or static_policy_sweep(runner)
    return _per_workload(sweep, "exec_time", normalize_to_uncached=True)


def figure7_dram_accesses(
    runner: Optional[ExperimentRunner] = None, sweep: Optional[SweepResult] = None
) -> dict[str, dict[str, float]]:
    """Figure 7: DRAM accesses per static policy, normalized to Uncached."""
    sweep = sweep or static_policy_sweep(runner)
    return _per_workload(sweep, "dram", normalize_to_uncached=True)


def figure8_cache_stalls(
    runner: Optional[ExperimentRunner] = None, sweep: Optional[SweepResult] = None
) -> dict[str, dict[str, float]]:
    """Figure 8: cache stall cycles per GPU memory request."""
    sweep = sweep or static_policy_sweep(runner)
    return _per_workload(sweep, "stalls", normalize_to_uncached=False)


def figure9_row_hit_rate(
    runner: Optional[ExperimentRunner] = None, sweep: Optional[SweepResult] = None
) -> dict[str, dict[str, float]]:
    """Figure 9: DRAM row-buffer hit ratio per static policy."""
    sweep = sweep or static_policy_sweep(runner)
    return _per_workload(sweep, "row_hits", normalize_to_uncached=False)


def measured_categories(
    sweep: SweepResult, band: float = 0.05
) -> dict[str, WorkloadCategory]:
    """Classify every workload from the measured static-policy results."""
    categories: dict[str, WorkloadCategory] = {}
    for workload in sweep.workloads():
        comparison = sweep.comparison(workload)
        categories[workload] = classify(comparison.exec_times(), baseline=UNCACHED.name, band=band)
    return categories
