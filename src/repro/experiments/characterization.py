"""Figures 4 and 5: policy-independent workload characterization.

The paper characterizes each workload's compute bandwidth (giga vector
operations per second, Figure 4) and memory request bandwidth (giga GPU
memory requests per second, Figure 5) while running under the CacheR
policy.  Workloads with low compute bandwidth and high memory request
bandwidth are the ones most likely to be sensitive to the caching policy.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies import CACHE_R
from repro.experiments.runner import ExperimentRunner, SweepResult

__all__ = ["characterization_sweep", "figure4_gvops", "figure5_gmrs"]


def characterization_sweep(runner: Optional[ExperimentRunner] = None) -> SweepResult:
    """Run every workload under CacheR (the policy Figures 4 and 5 use)."""
    runner = runner or ExperimentRunner()
    return runner.sweep(policies=(CACHE_R,))


def figure4_gvops(runner: Optional[ExperimentRunner] = None) -> dict[str, dict[str, float]]:
    """Figure 4: compute bandwidth (GVOPS) per workload under CacheR."""
    sweep = characterization_sweep(runner)
    return {
        workload: {"GVOPS": sweep.get(workload, CACHE_R.name).gvops}
        for workload in sweep.workloads()
    }


def figure5_gmrs(runner: Optional[ExperimentRunner] = None) -> dict[str, dict[str, float]]:
    """Figure 5: memory request bandwidth (GMR/s) per workload under CacheR."""
    sweep = characterization_sweep(runner)
    return {
        workload: {"GMR/s": sweep.get(workload, CACHE_R.name).gmrs}
        for workload in sweep.workloads()
    }
