"""The resilience study: serving mixes under cache policies while faults fire.

The paper evaluates its policies on a healthy machine; a production fleet
sees link brownouts, DRAM latency storms, whole-device failures and tenant
churn.  This driver chaos-tests the simulated fleet: every requested
serving mix is simulated under every requested policy against every
requested :class:`~repro.faults.config.FaultPlan` (always including the
empty plan as the healthy baseline), on a multi-device topology by
default, and each cell reports

* **slowdown** -- the mix's cycles under the plan divided by its cycles
  under the empty plan (same policy): the performance cost of surviving
  the faults;
* **availability** -- the fraction of the run executed with no fault
  active (1.0 on the baseline by construction);
* **degraded_cycles**, **faults_injected**, **recovery_cycles** -- the raw
  resilience counters behind those ratios.

Determinism makes chaos cacheable: a fault plan is a pure function of its
seed/schedule, it is part of the job fingerprint, and the injected run is
bit-identical across repeats and backends -- so a warm repeat of a chaos
sweep performs zero simulations, and the empty-plan baselines share store
entries with the interference study's healthy serving runs.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.core.policies import CACHE_RW, CACHE_RW_AB, CACHE_RW_CR, PolicySpec
from repro.experiments.adaptive import geomean
from repro.experiments.jobs import SweepCheckpoint
from repro.experiments.runner import ExperimentRunner
from repro.faults.config import FAULT_PLANS, FaultPlan
from repro.streams.config import SERVING_MIXES, ServingMix
from repro.topology.config import TopologyConfig, topology_by_name

__all__ = [
    "RESILIENCE_POLICIES",
    "DEFAULT_RESILIENCE_MIXES",
    "DEFAULT_RESILIENCE_PLANS",
    "default_resilience_topology",
    "plan_is_runnable",
    "figure_resilience",
    "resilience_series",
    "resilience_summary",
    "resilience_artifact",
]

#: default policy axis: the caching baseline plus the two paper
#: optimizations whose overheads faults amplify (allocation stalls under
#: degraded links -> bypass, dirty-flush storms on evacuation -> rinsing)
RESILIENCE_POLICIES: tuple[PolicySpec, ...] = (CACHE_RW, CACHE_RW_AB, CACHE_RW_CR)

#: default mix axis: one latency-critical pair and one throughput batch
DEFAULT_RESILIENCE_MIXES: tuple[str, ...] = ("mha+fwlstm", "gemm-burst")

#: default fault-plan axis: the healthy baseline plus every single-cause
#: plan (the seeded chaos plan stays opt-in: its composite slowdown is
#: real but uninterpretable as a figure column)
DEFAULT_RESILIENCE_PLANS: tuple[str, ...] = (
    "none",
    "link-brownout",
    "device-outage",
    "dram-storm",
    "tenant-churn",
)


def default_resilience_topology() -> TopologyConfig:
    """Two chiplets: the smallest system where every fault kind can fire."""
    return topology_by_name("dual-chiplet")


def plan_is_runnable(
    plan: FaultPlan, topology: Optional[TopologyConfig], num_streams: int
) -> Optional[str]:
    """Why ``plan`` cannot run on this system, or ``None`` if it can.

    The single predicate the study and the CLI's skip warnings consult --
    the same checks :class:`~repro.faults.injector.FaultInjector` enforces
    at simulation time, asked up front so a sweep never wastes cells on
    jobs that would abort.
    """
    num_devices = 1 if topology is None else topology.num_devices
    needed = plan.requires_devices()
    if needed > num_devices:
        return f"needs {needed} devices, system has {num_devices}"
    needed = plan.requires_streams()
    if needed > num_streams:
        return f"targets stream {needed - 1}, mix has {num_streams} streams"
    return None


def _resolve_plans(plans: Optional[Sequence[FaultPlan]]) -> list[FaultPlan]:
    if plans is None:
        return [FAULT_PLANS[name] for name in DEFAULT_RESILIENCE_PLANS]
    resolved = list(plans)
    if not any(plan.empty for plan in resolved):
        # the baseline is not optional: slowdown needs a denominator
        resolved.insert(0, FAULT_PLANS["none"])
    return resolved


def figure_resilience(
    runner: Optional[ExperimentRunner] = None,
    mixes: Optional[Sequence[ServingMix]] = None,
    policies: Iterable[PolicySpec] = RESILIENCE_POLICIES,
    plans: Optional[Sequence[FaultPlan]] = None,
    topology: Optional[TopologyConfig] = None,
    checkpoint_path: Optional[Union[str, os.PathLike]] = None,
) -> dict[str, dict[str, dict[str, object]]]:
    """The resilience figure: slowdown and availability per chaos cell.

    Returns ``{mix: {"<policy>@<plan>": {"cycles": c, "slowdown": s,
    "availability": a, "degraded_cycles": d, "faults_injected": n,
    "recovery_cycles": r}}}``.  Plans the system cannot host (device
    faults on a single-device topology, stream kills past the mix's
    width) are dropped per cell rather than aborting the study; the CLI
    reports the skips on stderr via :func:`plan_is_runnable`.

    Each mix's cells go to the runner's executor as one batch -- the
    parallel fan-out point.  With ``checkpoint_path`` given, a
    :class:`~repro.experiments.jobs.SweepCheckpoint` over the whole grid
    tracks every completion, so a killed sweep re-run against the same
    path resumes without re-simulating finished cells.
    """
    runner = runner or ExperimentRunner()
    if topology is None:
        topology = default_resilience_topology()
    mix_list = (
        list(mixes)
        if mixes is not None
        else [SERVING_MIXES[name] for name in DEFAULT_RESILIENCE_MIXES]
    )
    policy_list = tuple(policies)
    plan_list = _resolve_plans(plans)
    if not mix_list:
        raise ValueError("the resilience study needs at least one serving mix")

    baseline = next(plan for plan in plan_list if plan.empty)
    runnable: dict[str, list[FaultPlan]] = {}
    for mix in mix_list:
        fits = [
            plan
            for plan in plan_list
            if plan_is_runnable(plan, topology, mix.num_streams) is None
        ]
        if len(fits) > 1:  # a mix with only its baseline has nothing to say
            runnable[mix.name] = fits
    if not runnable:
        raise ValueError(
            "no runnable cells: every requested fault plan needs more devices "
            f"or streams than the system provides (topology {topology.label}) "
            "-- widen the topology/mixes or pick other plans"
        )

    checkpoint: Optional[SweepCheckpoint] = None
    if checkpoint_path is not None:
        checkpoint = SweepCheckpoint(
            checkpoint_path,
            [
                runner.resilience_job_for(mix, policy, topology, plan).fingerprint()
                for mix in mix_list
                if mix.name in runnable
                for policy in policy_list
                for plan in runnable[mix.name]
            ],
        )

    # per-mix plan subsets can differ, so sweep mix by mix; the runner's
    # memo and the shared checkpoint keep the accounting unified
    reports: dict[tuple[str, str, str], object] = {}
    for mix in mix_list:
        if mix.name not in runnable:
            continue
        reports.update(
            runner.resilience_sweep(
                [mix], policy_list, runnable[mix.name], topology, checkpoint
            )
        )

    figure: dict[str, dict[str, dict[str, object]]] = {}
    for mix in mix_list:
        if mix.name not in runnable:
            continue
        mix_tag = mix.fingerprint()
        for policy in policy_list:
            base = reports[(mix_tag, policy.name, baseline.fingerprint())]
            for plan in runnable[mix.name]:
                report = reports[(mix_tag, policy.name, plan.fingerprint())]
                cell: dict[str, object] = {
                    "cycles": float(report.cycles),
                    "slowdown": report.cycles / base.cycles if base.cycles else 0.0,
                    "availability": report.availability,
                    "degraded_cycles": report.degraded_cycles,
                    "faults_injected": report.faults_injected,
                    "recovery_cycles": report.recovery_cycles,
                }
                figure.setdefault(mix.name, {})[f"{policy.name}@{plan.label}"] = cell
    return figure


def resilience_series(
    figure: Mapping[str, Mapping[str, Mapping[str, object]]], metric: str
) -> dict[str, dict[str, float]]:
    """Project one scalar metric out of the resilience figure, in the
    shape ``render_series_table`` takes (shared by the CLI and benchmark)."""
    return {
        mix: {series: float(cell[metric]) for series, cell in data.items()}
        for mix, data in figure.items()
    }


def resilience_summary(
    figure: Mapping[str, Mapping[str, Mapping[str, object]]],
) -> dict[str, dict[str, float]]:
    """Geomean slowdown and mean availability of every ``policy@plan``
    series -- what the benchmark asserts on and the CLI prints last."""
    series_names: list[str] = []
    for data in figure.values():
        for name in data:
            if name not in series_names:
                series_names.append(name)
    summary: dict[str, dict[str, float]] = {}
    for name in series_names:
        cells = [data[name] for data in figure.values() if name in data]
        summary[name] = {
            "slowdown_geomean": geomean(float(cell["slowdown"]) for cell in cells),
            "availability_mean": sum(float(cell["availability"]) for cell in cells)
            / len(cells),
        }
    return summary


def resilience_artifact(
    figure: Mapping[str, Mapping[str, Mapping[str, object]]],
    summary: Mapping[str, Mapping[str, float]],
    plans: Sequence[FaultPlan],
    **extra: object,
) -> dict[str, object]:
    """The JSON blob recorded for the resilience figure (CI artifact).

    One schema for both producers (``repro-gpu-cache faults --json-out``
    and ``benchmarks/test_fig_resilience.py``); ``extra`` attaches context
    (scale, CU count, topology, policies) without changing the core shape.
    """
    blob: dict[str, object] = {
        "schema": 1,
        "plans": {
            plan.label: {"events": len(plan.events), "description": plan.description}
            for plan in plans
        },
        "figure_resilience": {
            mix: {series: dict(cell) for series, cell in data.items()}
            for mix, data in figure.items()
        },
        "summary": {series: dict(values) for series, values in summary.items()},
    }
    blob.update(extra)
    return blob
