"""Figure 14: the online dynamic policy versus the static envelope.

The paper's conclusion asks for "smart and adaptive cache policies"; this
driver measures the online subsystem of :mod:`repro.adaptive` against the
quantities the paper uses to frame the opportunity:

* **StaticBest / StaticWorst** -- the per-workload best and worst of the
  three static policies (the oracle envelope of Figures 10-13).
* **CacheRW-PCby** -- the paper's full cumulative optimization stack.
* **Dynamic** -- one run per workload that starts with no knowledge of the
  workload and lets set dueling plus phase detection pick the policy
  online.

All runs go through the shared :class:`~repro.experiments.runner
.ExperimentRunner`/:class:`~repro.experiments.jobs.SweepExecutor` path:
dynamic runs are ordinary :class:`~repro.experiments.jobs.JobSpec` cells
whose fingerprint includes the :class:`~repro.adaptive.config
.AdaptiveConfig`, so they parallelize across worker processes and persist
in the result store exactly like static runs.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Sequence

from repro.adaptive.config import AdaptiveConfig
from repro.core.classification import PAPER_CATEGORIES, WorkloadCategory
from repro.core.policies import CACHE_RW_PCBY, STATIC_POLICIES
from repro.experiments.optimizations import STATIC_BEST, STATIC_WORST
from repro.experiments.runner import ExperimentRunner
from repro.stats.report import RunReport

__all__ = [
    "DYNAMIC",
    "adaptive_sweep",
    "figure14_adaptive",
    "adaptive_summary",
    "geomean",
]

#: series label of the online adaptive runs in Figure 14
DYNAMIC = "Dynamic"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for ratios)."""
    values = list(values)
    if not values:
        raise ValueError("geomean needs at least one value")
    if any(value <= 0 for value in values):
        raise ValueError("geomean is only defined for positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def adaptive_sweep(
    runner: ExperimentRunner,
    adaptive_config: Optional[AdaptiveConfig] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> dict[str, RunReport]:
    """One dynamic run per workload, through the runner's executor.

    The jobs are submitted as a single batch, so a process-pool backend
    runs them concurrently and the persistent store caches them under the
    adaptive configuration's fingerprint.
    """
    config = adaptive_config or AdaptiveConfig()
    return runner.adaptive_sweep(config, workload_names)


def figure14_adaptive(
    runner: Optional[ExperimentRunner] = None,
    adaptive_config: Optional[AdaptiveConfig] = None,
    workload_names: Optional[Sequence[str]] = None,
) -> dict[str, dict[str, float]]:
    """Figure 14: execution time normalized to the best static policy.

    Series: StaticBest (1.0 by construction), StaticWorst, the paper's
    full optimization stack (CacheRW-PCby), and the online Dynamic policy.
    """
    runner = runner or ExperimentRunner()
    names = tuple(workload_names or runner.workload_names)
    static = runner.sweep(policies=STATIC_POLICIES, workload_names=names)
    optimized = runner.sweep(policies=(CACHE_RW_PCBY,), workload_names=names)
    dynamic = adaptive_sweep(runner, adaptive_config, names)

    static_names = [policy.name for policy in STATIC_POLICIES]
    result: dict[str, dict[str, float]] = {}
    for workload in names:
        comparison = static.comparison(workload)
        best = comparison.static_best(static_names)
        worst = comparison.static_worst(static_names)
        baseline = static.get(workload, best).cycles
        result[workload] = {
            STATIC_BEST: 1.0,
            STATIC_WORST: static.get(workload, worst).cycles / baseline,
            CACHE_RW_PCBY.name: optimized.get(workload, CACHE_RW_PCBY.name).cycles
            / baseline,
            DYNAMIC: dynamic[workload].cycles / baseline,
        }
    return result


def adaptive_summary(
    figure: Mapping[str, Mapping[str, float]],
) -> dict[str, dict[str, float]]:
    """Geomean of every Figure 14 series, overall and per paper category.

    The acceptance question for the dynamic policy reads directly off this
    summary: ``Dynamic`` must beat ``StaticWorst`` overall and sit inside
    the StaticBest/optimization-stack envelope on the reuse-sensitive
    group.
    """
    groups: dict[str, list[str]] = {"All": list(figure)}
    for category in WorkloadCategory:
        members = [
            workload
            for workload in figure
            if PAPER_CATEGORIES.get(workload) is category
        ]
        if members:
            groups[str(category)] = members

    summary: dict[str, dict[str, float]] = {}
    for group, members in groups.items():
        series_names = figure[members[0]].keys()
        summary[group] = {
            series: geomean(figure[workload][series] for workload in members)
            for series in series_names
        }
    return summary
