"""Plain-text rendering of figure data.

The paper's figures are bar charts over the 17 workloads with one series
per policy.  The harness renders the same data as aligned text tables (one
row per workload, one column per series), which is what the benchmark
output files and EXPERIMENTS.md record.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_series_table", "render_kv_table"]


def render_series_table(
    title: str,
    data: Mapping[str, Mapping[str, float]],
    series: Sequence[str] | None = None,
    value_format: str = "{:.3f}",
    workload_order: Sequence[str] | None = None,
) -> str:
    """Render ``{workload: {series: value}}`` as an aligned text table.

    Args:
        title: heading line.
        data: per-workload, per-series values.
        series: column order; defaults to the union of all series seen.
        value_format: format applied to each value.
        workload_order: row order; defaults to insertion order of ``data``.
    """
    if not data:
        return f"{title}\n(no data)\n"
    workloads = list(workload_order) if workload_order else list(data.keys())
    if series is None:
        seen: list[str] = []
        for row in data.values():
            for name in row:
                if name not in seen:
                    seen.append(name)
        series = seen

    name_width = max(len("Workload"), max(len(w) for w in workloads))
    col_widths = [
        max(len(s), max(len(value_format.format(data[w].get(s, float("nan")))) for w in workloads))
        for s in series
    ]
    lines = [title]
    header = "Workload".ljust(name_width) + "  " + "  ".join(
        s.rjust(width) for s, width in zip(series, col_widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload in workloads:
        row = data.get(workload, {})
        cells = []
        for s, width in zip(series, col_widths):
            if s in row:
                cells.append(value_format.format(row[s]).rjust(width))
            else:
                cells.append("-".rjust(width))
        lines.append(workload.ljust(name_width) + "  " + "  ".join(cells))
    return "\n".join(lines) + "\n"


def render_kv_table(title: str, rows: Mapping[str, object]) -> str:
    """Render a two-column key/value table (used for Table 1)."""
    if not rows:
        return f"{title}\n(no data)\n"
    key_width = max(len(k) for k in rows)
    lines = [title, "-" * len(title)]
    for key, value in rows.items():
        lines.append(f"{key.ljust(key_width)}  {value}")
    return "\n".join(lines) + "\n"
