"""The multi-tenant interference study: serving mixes under cache policies.

The paper evaluates its policies one workload at a time; a GPU serving
production traffic co-schedules many tenants, and co-running kernels
thrash the shared caches (CIAO, arXiv:1805.07718).  This driver measures
that interference and whether the paper's policies mitigate it: every
registered :class:`~repro.streams.config.ServingMix` is simulated under
every requested policy in both CU-share modes (``shared`` round-robin and
``partitioned`` static CU blocks), next to each tenant's *solo* run on the
same system, and three quantities are reported per cell:

* **per-tenant slowdown** -- the tenant's cycles in the mix (arrival to
  completion) divided by its solo cycles; 1.0 means no interference;
* **unfairness** -- max over min tenant slowdown (the multi-tenancy
  fairness metric); 1.0 means every tenant pays equally;
* **makespan** -- the whole mix's execution time.

Every cell is an ordinary :class:`~repro.experiments.jobs.JobSpec` whose
fingerprint covers the stream configurations, so mixes parallelize across
worker processes and persist in the result store exactly like static,
adaptive and topology runs (a warm repeat simulates nothing) -- and the
solo baselines share store entries with the ordinary single-workload
sweeps of the same (workload, scale, policy, configuration).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.core.policies import CACHE_RW, CACHE_RW_AB, CACHE_RW_CR, PolicySpec
from repro.experiments.adaptive import geomean
from repro.experiments.runner import ExperimentRunner
from repro.streams.config import SERVING_MIXES, ServingMix

__all__ = [
    "INTERFERENCE_POLICIES",
    "CU_MODES",
    "mix_is_partitionable",
    "figure_interference",
    "interference_summary",
    "interference_series",
    "interference_artifact",
]

#: default policy axis: the caching baseline plus the two optimizations
#: the paper proposes for exactly the overheads interference amplifies
#: (allocation stalls -> bypass, dirty-flush row disruption -> rinsing)
INTERFERENCE_POLICIES: tuple[PolicySpec, ...] = (CACHE_RW, CACHE_RW_AB, CACHE_RW_CR)

#: CU-share modes of the study's isolation axis
CU_MODES: tuple[str, ...] = ("shared", "partitioned")


def mix_is_partitionable(mix: ServingMix, num_cus_per_device: int) -> bool:
    """Whether ``mix`` can statically partition a device's CUs.

    The stream scheduler gives every stream a contiguous CU block *per
    device* (the ``SystemConfig`` describes one device), so the bound is
    one CU per stream per device.  The single predicate both the study
    and the CLI's skip warning consult -- they must never drift apart.
    """
    return mix.num_streams <= num_cus_per_device


def figure_interference(
    runner: Optional[ExperimentRunner] = None,
    mixes: Optional[Sequence[ServingMix]] = None,
    policies: Iterable[PolicySpec] = INTERFERENCE_POLICIES,
    modes: Sequence[str] = CU_MODES,
) -> dict[str, dict[str, dict[str, object]]]:
    """The interference figure: per-tenant slowdown and unfairness per cell.

    Returns ``{mix: {"<policy>@<mode>": {"mean_slowdown": s,
    "max_slowdown": m, "unfairness": u, "cycles": c,
    "tenants": {label: slowdown}}}}``.  Mix cells and solo baselines each
    go to the runner's executor as one memoized batch (the parallel
    fan-out points).
    """
    runner = runner or ExperimentRunner()
    mix_list = list(mixes) if mixes is not None else list(SERVING_MIXES.values())
    policy_list = tuple(policies)
    mode_list = tuple(modes)
    if not mix_list:
        raise ValueError("the interference study needs at least one serving mix")

    # one cell per (mix, policy, mode); the runner dedupes the solo
    # baselines of tenants shared between mixes.  Partitioning needs one
    # CU per stream (per device): mixes too wide for the configured system
    # drop their partitioned cells (an absent column in the figure, which
    # the CLI calls out on stderr) rather than abort the whole study.
    cus_per_device = runner.config.gpu.num_cus
    mix_cells = []
    for mix in mix_list:
        for policy in policy_list:
            for mode in mode_list:
                if mode == "partitioned" and not mix_is_partitionable(
                    mix, cus_per_device
                ):
                    continue
                mix_cells.append((mix, policy, mode, mix.with_cu_share(mode)))
    if not mix_cells:
        raise ValueError(
            "no runnable cells: every requested mix has more streams than the "
            f"{cus_per_device} CUs per device a partition could split -- add "
            "CUs, narrow the mixes, or include the shared mode"
        )
    unique_mode_mixes: dict[str, ServingMix] = {
        mode_mix.fingerprint(): mode_mix for _mix, _policy, _mode, mode_mix in mix_cells
    }
    mix_reports = runner.serving_sweep(list(unique_mode_mixes.values()), policy_list)
    # solo baselines only for tenants whose mix actually produced cells --
    # a fully skipped mix must not cost discarded simulations
    active_mixes: dict[str, ServingMix] = {
        mix.name: mix for mix, _policy, _mode, _mode_mix in mix_cells
    }
    solo_reports = runner.solo_sweep(
        [
            (stream.workload, stream.scale)
            for mix in active_mixes.values()
            for stream in mix.streams
        ],
        policy_list,
    )

    figure: dict[str, dict[str, dict[str, object]]] = {}
    for mix, policy, mode, mode_mix in mix_cells:
        report = mix_reports[(mode_mix.fingerprint(), policy.name)]
        solo_cycles = [
            solo_reports[(stream.workload, stream.scale, policy.name)].cycles
            for stream in mix.streams
        ]
        metrics = report.interference(solo_cycles)
        cell: dict[str, object] = {
            "mean_slowdown": metrics["mean_slowdown"],
            "max_slowdown": metrics["max_slowdown"],
            "unfairness": metrics["unfairness"],
            "cycles": float(report.cycles),
            "tenants": dict(zip(mix.tenant_labels(), metrics["slowdowns"])),
        }
        figure.setdefault(mix.name, {})[f"{policy.name}@{mode}"] = cell
    return figure


def interference_series(
    figure: Mapping[str, Mapping[str, Mapping[str, object]]], metric: str
) -> dict[str, dict[str, float]]:
    """Project one scalar metric out of the interference figure, in the
    shape ``render_series_table`` takes (shared by the CLI and benchmark)."""
    return {
        mix: {series: float(cell[metric]) for series, cell in data.items()}
        for mix, data in figure.items()
    }


def interference_summary(
    figure: Mapping[str, Mapping[str, Mapping[str, object]]],
) -> dict[str, dict[str, float]]:
    """Geomean slowdown and mean unfairness of every ``policy@mode`` series.

    What the serving benchmark asserts on and what the CLI prints last.
    """
    series_names: list[str] = []
    for data in figure.values():
        for name in data:
            if name not in series_names:
                series_names.append(name)
    summary: dict[str, dict[str, float]] = {}
    for name in series_names:
        cells = [data[name] for data in figure.values() if name in data]
        summary[name] = {
            "slowdown_geomean": geomean(float(cell["mean_slowdown"]) for cell in cells),
            "unfairness_mean": sum(float(cell["unfairness"]) for cell in cells)
            / len(cells),
        }
    return summary


def interference_artifact(
    figure: Mapping[str, Mapping[str, Mapping[str, object]]],
    summary: Mapping[str, Mapping[str, float]],
    mixes: Sequence[ServingMix],
    **extra: object,
) -> dict[str, object]:
    """The JSON blob recorded for the interference figure (CI artifact).

    One schema for both producers (``repro-gpu-cache serve --json-out``
    and ``benchmarks/test_fig_interference.py``); ``extra`` attaches
    context (scale, CU count, policies) without changing the core shape.
    """
    blob: dict[str, object] = {
        "schema": 1,
        "mixes": {mix.name: mix.describe() for mix in mixes},
        "figure_interference": {
            mix: {series: dict(cell) for series, cell in data.items()}
            for mix, data in figure.items()
        },
        "summary": {series: dict(values) for series, values in summary.items()},
    }
    blob.update(extra)
    return blob
