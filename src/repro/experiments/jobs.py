"""Job-based sweep execution: one job per (workload, policy) grid cell.

The experiment drivers used to run every simulation inline and serially.
This module splits the *what* from the *how*:

* :class:`JobSpec` names one simulation -- workload, scale, policy, system
  configuration -- and derives a stable content fingerprint from those
  inputs, which doubles as the key in the persistent
  :class:`~repro.experiments.store.ResultStore`.
* Backends turn a batch of jobs into reports: :class:`SerialBackend` runs
  them in-process (no overhead, deterministic ordering), while
  :class:`ProcessPoolBackend` fans independent jobs out across worker
  processes with :class:`concurrent.futures.ProcessPoolExecutor`.  Grid
  cells share no state, so the parallel speedup is essentially linear
  until the machine runs out of cores.
* :class:`SweepExecutor` composes a backend with an optional store:
  store hits are loaded, misses are simulated on the backend and written
  back, and both counts are tracked so callers can assert cache
  effectiveness.

Every simulation is deterministic, so a report loaded from the store (or
computed in a worker process) is bit-identical to one computed inline.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

from repro.adaptive.config import AdaptiveConfig
from repro.config import SystemConfig, default_config
from repro.core.policies import PolicySpec
from repro.core.reuse_predictor import PredictorConfig
from repro.experiments.store import ResultStore
from repro.fingerprint import fingerprint
from repro.session import simulate
from repro.stats.report import RunReport
from repro.streams.config import StreamConfig
from repro.topology.config import TopologyConfig
from repro.workloads.registry import get_workload

__all__ = [
    "JobSpec",
    "ExecutorStats",
    "SerialBackend",
    "ProcessPoolBackend",
    "SweepExecutor",
    "execute_job",
]


@dataclass(frozen=True)
class JobSpec:
    """Complete, picklable description of one simulation run.

    Attributes:
        workload: registry name of the workload (paper figure label).
        policy: the caching policy to simulate under.  For adaptive jobs
            this records the *initial* policy (the candidates are in the
            adaptive configuration).
        scale: workload scale factor passed to the trace generator.
        config: full system configuration.
        predictor_config: optional reuse-predictor geometry override.
        dbi_max_rows: optional dirty-block-index capacity bound.
        adaptive: when given, the run uses the online adaptive subsystem
            (set dueling + phase-aware dynamic policy selection) instead of
            the static ``policy``.
        topology: when given, the run simulates a multi-device NUMA system
            (``config`` then describes one device); the topology is part
            of the fingerprint, so runs at different device counts or
            fabric parameters never share a store entry.
        streams: when given, the run is a multi-tenant serving mix: each
            :class:`~repro.streams.config.StreamConfig` names its own
            workload/scale/arrival/CU-share, executed concurrently.
            ``workload`` is then a display label and ``scale`` is ignored
            (per-stream scales govern); the stream configurations are part
            of the fingerprint, so two mixes differing in any tenant
            parameter never share a store entry.
    """

    workload: str
    policy: PolicySpec
    scale: float = 1.0
    config: SystemConfig = field(default_factory=default_config)
    predictor_config: Optional[PredictorConfig] = None
    dbi_max_rows: Optional[int] = None
    adaptive: Optional[AdaptiveConfig] = None
    topology: Optional[TopologyConfig] = None
    streams: Optional[tuple[StreamConfig, ...]] = None

    def fingerprint(self) -> str:
        """Stable key over every input that can affect the result.

        Same inputs always hash to the same key (across processes and
        sessions); changing the workload, scale, policy, system
        configuration or any optional override changes it.
        """
        return fingerprint(
            {
                # for serving jobs the per-stream configs are authoritative;
                # the workload label must not split identical mixes
                "workload": self.workload if self.streams is None else None,
                "scale": self.scale if self.streams is None else None,
                "policy": self.policy,
                "config": self.config,
                "predictor_config": self.predictor_config,
                "dbi_max_rows": self.dbi_max_rows,
                "adaptive": self.adaptive,
                # physical parameters only: the display name must not
                # split identical simulations across store entries
                "topology": None if self.topology is None else self.topology.describe(),
                "streams": (
                    None
                    if self.streams is None
                    else [stream.describe() for stream in self.streams]
                ),
            },
            kind="JobSpec",
        )

    def summary(self) -> dict[str, object]:
        """Human-readable inputs, stored next to cached blobs for auditing."""
        summary: dict[str, object] = {
            "workload": self.workload,
            "policy": self.policy.name,
            "scale": self.scale,
            "num_cus": self.config.gpu.num_cus,
        }
        if self.adaptive is not None:
            summary["adaptive"] = self.adaptive.name
            summary["candidates"] = [p.name for p in self.adaptive.candidates]
        if self.topology is not None:
            summary["topology"] = self.topology.label
            summary["num_devices"] = self.topology.num_devices
        if self.streams is not None:
            summary["streams"] = [stream.describe() for stream in self.streams]
        return summary


def execute_job(job: JobSpec) -> RunReport:
    """Simulate one job to completion (the unit of work for all backends)."""
    if job.streams is not None:
        return simulate(
            policy=job.policy,
            config=job.config,
            predictor_config=job.predictor_config,
            dbi_max_rows=job.dbi_max_rows,
            adaptive=job.adaptive,
            topology=job.topology,
            streams=job.streams,
        )
    workload = get_workload(job.workload, scale=job.scale)
    return simulate(
        workload,
        job.policy,
        config=job.config,
        predictor_config=job.predictor_config,
        dbi_max_rows=job.dbi_max_rows,
        adaptive=job.adaptive,
        topology=job.topology,
    )


def _execute_job_payload(job: JobSpec) -> dict[str, object]:
    """Worker-side entry point: ship the report back as primitives.

    Returning ``to_dict()`` output instead of the dataclass keeps the
    parent<->worker contract identical to the store's JSON contract, so a
    report that crossed a process boundary compares equal to one that was
    simulated inline or loaded from disk.
    """
    return execute_job(job).to_dict()


#: per-result callback: (index within the batch, finished report)
ResultCallback = Callable[[int, RunReport], None]


class SweepBackend(Protocol):
    """Anything that can turn a batch of jobs into reports, in order.

    ``on_result`` (when given) is invoked in the *calling* process as each
    job finishes, before the batch completes -- the executor uses it to
    persist results incrementally, so an interrupted sweep keeps every
    cell that finished.
    """

    def run_jobs(
        self, jobs: Sequence[JobSpec], on_result: Optional[ResultCallback] = None
    ) -> list[RunReport]:
        ...  # pragma: no cover - protocol


class SerialBackend:
    """Run every job in the calling process, one after another."""

    def run_jobs(
        self, jobs: Sequence[JobSpec], on_result: Optional[ResultCallback] = None
    ) -> list[RunReport]:
        reports = []
        for index, job in enumerate(jobs):
            report = execute_job(job)
            if on_result is not None:
                on_result(index, report)
            reports.append(report)
        return reports

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


class ProcessPoolBackend:
    """Fan independent jobs out across worker processes.

    Args:
        max_workers: worker process count (``None`` lets
            :class:`~concurrent.futures.ProcessPoolExecutor` use one per
            core).

    The pool is created per batch rather than held open: sweep batches are
    coarse (each job is a whole simulation), so the fork cost is noise, and
    a short-lived pool cannot leak workers into test runners or the CLI.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers

    def run_jobs(
        self, jobs: Sequence[JobSpec], on_result: Optional[ResultCallback] = None
    ) -> list[RunReport]:
        jobs = list(jobs)
        if not jobs:
            return []
        if len(jobs) == 1:
            # a pool fork for a single job is pure overhead
            report = execute_job(jobs[0])
            if on_result is not None:
                on_result(0, report)
            return [report]
        workers = self.max_workers
        if workers is not None:
            workers = min(workers, len(jobs))
        reports: list[Optional[RunReport]] = [None] * len(jobs)
        first_error: Optional[BaseException] = None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # submit + as_completed (rather than pool.map) so the callback
            # fires the moment any job lands, in completion order -- a slow
            # or failing early job cannot hold finished results hostage
            futures = {
                pool.submit(_execute_job_payload, job): index
                for index, job in enumerate(jobs)
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    report = RunReport.from_dict(future.result())
                except BaseException as exc:  # keep draining: persist survivors
                    if first_error is None:
                        first_error = exc
                    continue
                if on_result is not None:
                    on_result(index, report)
                reports[index] = report
        if first_error is not None:
            raise first_error
        assert all(report is not None for report in reports)
        return reports  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessPoolBackend(max_workers={self.max_workers})"


@dataclass
class ExecutorStats:
    """Where the executor's reports came from (cumulative)."""

    runs_simulated: int = 0
    runs_loaded: int = 0

    @property
    def total(self) -> int:
        return self.runs_simulated + self.runs_loaded

    def as_dict(self) -> dict[str, int]:
        return {
            "runs_simulated": self.runs_simulated,
            "runs_loaded": self.runs_loaded,
        }


class SweepExecutor:
    """A backend plus an optional persistent store, with hit accounting.

    Args:
        backend: how cache-missing jobs are simulated (default: serial).
        store: persistent result store consulted before simulating and
            updated afterwards; ``None`` disables persistence.

    One executor may be shared by any number of
    :class:`~repro.experiments.runner.ExperimentRunner` instances (the
    benchmark harness does exactly that), in which case its statistics
    aggregate across all of them.
    """

    def __init__(
        self,
        backend: Optional[SweepBackend] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        self.backend: SweepBackend = backend or SerialBackend()
        self.store = store
        self.stats = ExecutorStats()

    def run(self, jobs: Sequence[JobSpec]) -> list[RunReport]:
        """Resolve every job to a report, in input order.

        Store hits are loaded; the rest are simulated on the backend in one
        batch (the parallel fan-out point) and written back to the store as
        each one finishes, so even an interrupted sweep keeps its completed
        cells.  Duplicate jobs within a batch are simulated only once.
        """
        jobs = list(jobs)
        reports: list[Optional[RunReport]] = [None] * len(jobs)
        loaded: dict[str, RunReport] = {}
        pending: dict[str, list[int]] = {}
        for index, job in enumerate(jobs):
            key = job.fingerprint()
            if key in loaded:  # duplicate of a store hit: no re-read, no recount
                reports[index] = loaded[key]
                continue
            if key in pending:  # duplicate within this batch
                pending[key].append(index)
                continue
            cached = self.store.load(key) if self.store is not None else None
            if cached is not None:
                loaded[key] = cached
                reports[index] = cached
                self.stats.runs_loaded += 1
            else:
                pending[key] = [index]
        if pending:
            keys = list(pending)
            batch = [jobs[pending[key][0]] for key in keys]

            def persist(batch_index: int, report: RunReport) -> None:
                self.stats.runs_simulated += 1
                if self.store is not None:
                    key = keys[batch_index]
                    self.store.save(key, report, job=batch[batch_index].summary())

            fresh = self.backend.run_jobs(batch, on_result=persist)
            for key, report in zip(keys, fresh):
                for index in pending[key]:
                    reports[index] = report
        assert all(report is not None for report in reports)
        return reports  # type: ignore[return-value]

    def run_one(self, job: JobSpec) -> RunReport:
        """Convenience wrapper for a single job."""
        return self.run([job])[0]
