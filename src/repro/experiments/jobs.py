"""Job-based sweep execution: one job per (workload, policy) grid cell.

The experiment drivers used to run every simulation inline and serially.
This module splits the *what* from the *how*:

* :class:`JobSpec` names one simulation -- workload, scale, policy, system
  configuration -- and derives a stable content fingerprint from those
  inputs, which doubles as the key in the persistent
  :class:`~repro.experiments.store.ResultStore`.
* Backends turn a batch of jobs into reports: :class:`SerialBackend` runs
  them in-process (no overhead, deterministic ordering), while
  :class:`ProcessPoolBackend` fans independent jobs out across worker
  processes with :class:`concurrent.futures.ProcessPoolExecutor`.  Grid
  cells share no state, so the parallel speedup is essentially linear
  until the machine runs out of cores.
* :class:`SweepExecutor` composes a backend with an optional store:
  store hits are loaded, misses are simulated on the backend and written
  back, and both counts are tracked so callers can assert cache
  effectiveness.

Every simulation is deterministic, so a report loaded from the store (or
computed in a worker process) is bit-identical to one computed inline.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Protocol, Sequence

from repro.accel.config import SamplingConfig, ShardConfig
from repro.adaptive.config import AdaptiveConfig
from repro.config import SystemConfig, default_config
from repro.core.policies import PolicySpec
from repro.core.reuse_predictor import PredictorConfig
from repro.experiments.store import ResultStore
from repro.faults.config import FaultPlan
from repro.fingerprint import SCHEMA_VERSION, fingerprint
from repro.ioutil import atomic_write_json
from repro.log import get_logger
from repro.obs.ledger import RunLedger, run_entry
from repro.session import simulate
from repro.stats.report import RunReport
from repro.streams.config import StreamConfig
from repro.topology.config import TopologyConfig
from repro.workloads.registry import get_workload

__all__ = [
    "JobSpec",
    "JobFailure",
    "ExecutorStats",
    "SerialBackend",
    "ProcessPoolBackend",
    "SweepCheckpoint",
    "SweepExecutor",
    "execute_job",
]

#: run-scoped structured logger (silent unless repro.log.configure ran)
_log = get_logger("executor")


@dataclass(frozen=True)
class JobSpec:
    """Complete, picklable description of one simulation run.

    Attributes:
        workload: registry name of the workload (paper figure label).
        policy: the caching policy to simulate under.  For adaptive jobs
            this records the *initial* policy (the candidates are in the
            adaptive configuration).
        scale: workload scale factor passed to the trace generator.
        config: full system configuration.
        predictor_config: optional reuse-predictor geometry override.
        dbi_max_rows: optional dirty-block-index capacity bound.
        adaptive: when given, the run uses the online adaptive subsystem
            (set dueling + phase-aware dynamic policy selection) instead of
            the static ``policy``.
        topology: when given, the run simulates a multi-device NUMA system
            (``config`` then describes one device); the topology is part
            of the fingerprint, so runs at different device counts or
            fabric parameters never share a store entry.
        streams: when given, the run is a multi-tenant serving mix: each
            :class:`~repro.streams.config.StreamConfig` names its own
            workload/scale/arrival/CU-share, executed concurrently.
            ``workload`` is then a display label and ``scale`` is ignored
            (per-stream scales govern); the stream configurations are part
            of the fingerprint, so two mixes differing in any tenant
            parameter never share a store entry.
        faults: when given, the run injects this
            :class:`~repro.faults.config.FaultPlan`'s events.  The event
            schedule is part of the fingerprint, so chaos sweeps cache
            like healthy ones; the *empty* plan fingerprints identically
            to no plan at all (it is bit-identical by construction), so
            the healthy baseline of a resilience sweep shares its store
            entry with ordinary serving runs.
        sampling: when given (and enabled), the run fast-forwards
            steady-state kernel repeats and extrapolates their counters
            (:mod:`repro.accel.sampling`).  Sampled results are
            approximations, so the sampling parameters are part of the
            fingerprint: a sampled run can never collide with an exact
            one in the store.  A *disabled* config fingerprints
            identically to no config (exact mode is bit-identical by
            construction), so exact baselines keep their warm cells.
        shards: when given (and ``num_shards > 1``), the run executes as
            epoch-synchronized worker processes
            (:mod:`repro.accel.shard`).  Merged shard reports differ
            from monolithic ones (``shard.*`` counters, merge rounding),
            so the shard geometry is fingerprinted the same way: a
            single-shard config hashes as ``None``.
    """

    workload: str
    policy: PolicySpec
    scale: float = 1.0
    config: SystemConfig = field(default_factory=default_config)
    predictor_config: Optional[PredictorConfig] = None
    dbi_max_rows: Optional[int] = None
    adaptive: Optional[AdaptiveConfig] = None
    topology: Optional[TopologyConfig] = None
    streams: Optional[tuple[StreamConfig, ...]] = None
    faults: Optional[FaultPlan] = None
    sampling: Optional[SamplingConfig] = None
    shards: Optional[ShardConfig] = None

    def fingerprint(self) -> str:
        """Stable key over every input that can affect the result.

        Same inputs always hash to the same key (across processes and
        sessions); changing the workload, scale, policy, system
        configuration or any optional override changes it.
        """
        return fingerprint(
            {
                # for serving jobs the per-stream configs are authoritative;
                # the workload label must not split identical mixes
                "workload": self.workload if self.streams is None else None,
                "scale": self.scale if self.streams is None else None,
                "policy": self.policy,
                "config": self.config,
                "predictor_config": self.predictor_config,
                "dbi_max_rows": self.dbi_max_rows,
                "adaptive": self.adaptive,
                # physical parameters only: the display name must not
                # split identical simulations across store entries
                "topology": None if self.topology is None else self.topology.describe(),
                "streams": (
                    None
                    if self.streams is None
                    else [stream.describe() for stream in self.streams]
                ),
                # the empty plan is bit-identical to no plan: both hash as
                # None so resilience baselines reuse healthy store entries
                "faults": (
                    None
                    if self.faults is None or self.faults.empty
                    else self.faults.describe()
                ),
                # same idiom for the fast modes: exact mode (sampling
                # disabled, one shard) hashes as None, so sampled/sharded
                # runs never collide with exact baselines in the store
                "sampling": (
                    None
                    if self.sampling is None or self.sampling.empty
                    else self.sampling.describe()
                ),
                "shards": (
                    None
                    if self.shards is None or self.shards.empty
                    else self.shards.describe()
                ),
            },
            kind="JobSpec",
        )

    def summary(self) -> dict[str, object]:
        """Human-readable inputs, stored next to cached blobs for auditing."""
        summary: dict[str, object] = {
            "workload": self.workload,
            "policy": self.policy.name,
            "scale": self.scale,
            "num_cus": self.config.gpu.num_cus,
        }
        if self.adaptive is not None:
            summary["adaptive"] = self.adaptive.name
            summary["candidates"] = [p.name for p in self.adaptive.candidates]
        if self.topology is not None:
            summary["topology"] = self.topology.label
            summary["num_devices"] = self.topology.num_devices
        if self.streams is not None:
            summary["streams"] = [stream.describe() for stream in self.streams]
        if self.faults is not None and not self.faults.empty:
            summary["faults"] = self.faults.label
            summary["fault_events"] = len(self.faults.events)
        if self.sampling is not None and not self.sampling.empty:
            summary["sampling"] = self.sampling.describe()
        if self.shards is not None and not self.shards.empty:
            summary["shards"] = self.shards.describe()
        return summary


def execute_job(job: JobSpec) -> RunReport:
    """Simulate one job to completion (the unit of work for all backends)."""
    if job.streams is not None:
        return simulate(
            policy=job.policy,
            config=job.config,
            predictor_config=job.predictor_config,
            dbi_max_rows=job.dbi_max_rows,
            adaptive=job.adaptive,
            topology=job.topology,
            streams=job.streams,
            faults=job.faults,
            sampling=job.sampling,
            shards=job.shards,
        )
    workload = get_workload(job.workload, scale=job.scale)
    return simulate(
        workload,
        job.policy,
        config=job.config,
        predictor_config=job.predictor_config,
        dbi_max_rows=job.dbi_max_rows,
        adaptive=job.adaptive,
        topology=job.topology,
        faults=job.faults,
        sampling=job.sampling,
        shards=job.shards,
    )


def _execute_job_payload(job: JobSpec) -> dict[str, object]:
    """Worker-side entry point: ship the report back as primitives.

    Returning ``to_dict()`` output instead of the dataclass keeps the
    parent<->worker contract identical to the store's JSON contract, so a
    report that crossed a process boundary compares equal to one that was
    simulated inline or loaded from disk.  The worker also measures its own
    wall time -- queueing and pickling excluded -- which feeds the sweep
    telemetry's worker-utilization accounting.
    """
    started = time.perf_counter()
    report = execute_job(job).to_dict()
    return {"report": report, "elapsed_seconds": time.perf_counter() - started}


#: per-result callback: (index within the batch, finished report)
ResultCallback = Callable[[int, RunReport], None]


@dataclass(frozen=True)
class JobFailure:
    """Structured record of one job that a backend could not complete.

    Backends keep the batch draining when a worker dies, times out or
    raises; every job still unfinished after the final retry becomes one
    of these on ``backend.failures`` (and, via the executor, on
    ``ExecutorStats.failures``) -- a worker crash is data, not a silent
    hole in the sweep.
    """

    #: position of the job in the submitted batch
    index: int
    #: the job's store fingerprint (joins failures to grid cells)
    fingerprint: str
    #: human-readable job inputs (:meth:`JobSpec.summary`)
    job: dict[str, object]
    #: ``repr`` of the final exception (a TimeoutError for hung jobs)
    error: str
    #: batch attempts made before giving up (1 = no retries)
    attempts: int

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "fingerprint": self.fingerprint,
            "job": dict(self.job),
            "error": self.error,
            "attempts": self.attempts,
        }


class SweepBackend(Protocol):
    """Anything that can turn a batch of jobs into reports, in order.

    ``on_result`` (when given) is invoked in the *calling* process as each
    job finishes, before the batch completes -- the executor uses it to
    persist results incrementally, so an interrupted sweep keeps every
    cell that finished.
    """

    def run_jobs(
        self, jobs: Sequence[JobSpec], on_result: Optional[ResultCallback] = None
    ) -> list[RunReport]:
        ...  # pragma: no cover - protocol


def _failure(job: JobSpec, index: int, exc: BaseException, attempts: int) -> JobFailure:
    return JobFailure(
        index=index,
        fingerprint=job.fingerprint(),
        job=job.summary(),
        error=repr(exc),
        attempts=attempts,
    )


class SerialBackend:
    """Run every job in the calling process, one after another.

    A raising job still stops the batch (serial runs are the debugging
    path; fail fast, keep the traceback), but the failure is recorded on
    :attr:`failures` first so the executor can account for it.
    """

    def __init__(self) -> None:
        #: structured records of jobs that raised, reset per batch
        self.failures: list[JobFailure] = []
        #: per-batch wall seconds of each finished job, by batch index
        self.job_seconds: dict[int, float] = {}
        #: batch attempts of the last run (serial never retries)
        self.last_attempts = 1

    def run_jobs(
        self, jobs: Sequence[JobSpec], on_result: Optional[ResultCallback] = None
    ) -> list[RunReport]:
        self.failures = []
        self.job_seconds = {}
        reports = []
        for index, job in enumerate(jobs):
            started = time.perf_counter()
            try:
                report = execute_job(job)
            except BaseException as exc:
                self.failures.append(_failure(job, index, exc, attempts=1))
                raise
            self.job_seconds[index] = time.perf_counter() - started
            if on_result is not None:
                on_result(index, report)
            reports.append(report)
        return reports

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


class ProcessPoolBackend:
    """Fan independent jobs out across worker processes.

    Args:
        max_workers: worker process count (``None`` lets
            :class:`~concurrent.futures.ProcessPoolExecutor` use one per
            core).
        timeout: wall-clock seconds the whole batch may go without any job
            finishing before the remaining jobs are declared hung and the
            pool abandoned (``None`` waits forever).  Hung jobs are
            retried like crashed ones.
        retries: extra whole-pool attempts for jobs that crash, hang or
            raise.  A worker killed by the OS (OOM, SIGKILL) poisons the
            entire pool, so each retry starts a fresh pool containing only
            the still-unfinished jobs.
        retry_backoff: base seconds slept before retry ``n`` (exponential:
            ``retry_backoff * 2**(n-1)``); ``0`` retries immediately.

    The pool is created per attempt rather than held open: sweep batches
    are coarse (each job is a whole simulation), so the fork cost is noise,
    a short-lived pool cannot leak workers into test runners or the CLI,
    and a broken pool (dead worker) never contaminates the retry.

    After every batch, jobs that still failed after the final attempt are
    recorded on :attr:`failures` as :class:`JobFailure` entries; the first
    error is then re-raised so callers that expect exceptions keep working.
    Finished jobs were already delivered through ``on_result``, so a sweep
    with a persistent store loses nothing but the failed cells.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        retry_backoff: float = 0.5,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.max_workers = max_workers
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        #: structured records of jobs unfinished after the final attempt
        self.failures: list[JobFailure] = []
        #: per-batch worker-side wall seconds of each finished job
        self.job_seconds: dict[int, float] = {}
        #: pool attempts the last batch needed (1 = no retries)
        self.last_attempts = 1

    def _sleep_before_retry(self, attempt: int) -> None:
        if self.retry_backoff > 0:
            time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def run_jobs(
        self, jobs: Sequence[JobSpec], on_result: Optional[ResultCallback] = None
    ) -> list[RunReport]:
        jobs = list(jobs)
        self.failures = []
        self.job_seconds = {}
        self.last_attempts = 1
        if not jobs:
            return []
        if len(jobs) == 1:
            return self._run_single(jobs[0], on_result)
        reports: list[Optional[RunReport]] = [None] * len(jobs)
        pending = list(range(len(jobs)))
        errors: dict[int, BaseException] = {}
        attempt = 0
        while pending:
            attempt += 1
            self.last_attempts = attempt
            if attempt > 1:
                self._sleep_before_retry(attempt - 1)
            errors_now = self._run_attempt(
                jobs, pending, reports, on_result, attempt
            )
            errors.update(errors_now)
            pending = sorted(errors_now)
            if pending and _log.enabled:
                _log.warning(
                    "batch_attempt_failed",
                    attempt=attempt,
                    failed=len(pending),
                    retries_left=max(0, self.retries + 1 - attempt),
                    first_error=repr(errors[pending[0]]),
                )
            if attempt >= self.retries + 1:
                break
        if pending:
            for index in pending:
                self.failures.append(
                    _failure(jobs[index], index, errors[index], attempts=attempt)
                )
            _log.error(
                "jobs_failed",
                count=len(pending),
                attempts=attempt,
                error=repr(errors[pending[0]]),
            )
            raise errors[pending[0]]
        assert all(report is not None for report in reports)
        return reports  # type: ignore[return-value]

    def _run_single(
        self, job: JobSpec, on_result: Optional[ResultCallback]
    ) -> list[RunReport]:
        # a pool fork for a single job is pure overhead: run in-process,
        # still honouring the retry budget (timeouts need a pool; a single
        # in-process job cannot be interrupted, so none is enforced here)
        attempt = 0
        while True:
            attempt += 1
            self.last_attempts = attempt
            started = time.perf_counter()
            try:
                report = execute_job(job)
                break
            except BaseException as exc:
                if attempt >= self.retries + 1:
                    self.failures.append(_failure(job, 0, exc, attempts=attempt))
                    _log.error("job_failed", attempts=attempt, error=repr(exc))
                    raise
                _log.warning(
                    "job_retry",
                    attempt=attempt,
                    retries_left=self.retries + 1 - attempt,
                    error=repr(exc),
                )
                self._sleep_before_retry(attempt)
        self.job_seconds[0] = time.perf_counter() - started
        if on_result is not None:
            on_result(0, report)
        return [report]

    def _run_attempt(
        self,
        jobs: Sequence[JobSpec],
        pending: Sequence[int],
        reports: list[Optional[RunReport]],
        on_result: Optional[ResultCallback],
        attempt: int,
    ) -> dict[int, BaseException]:
        """One fresh pool over the still-unfinished jobs; returns its errors."""
        workers = self.max_workers
        if workers is not None:
            workers = min(workers, len(pending))
        errors: dict[int, BaseException] = {}
        abandon = False
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            # submit + as_completed (rather than pool.map) so the callback
            # fires the moment any job lands, in completion order -- a slow
            # or failing early job cannot hold finished results hostage
            futures = {
                pool.submit(_execute_job_payload, jobs[index]): index
                for index in pending
            }
            try:
                for future in as_completed(futures, timeout=self.timeout):
                    index = futures[future]
                    try:
                        payload = future.result()
                        report = RunReport.from_dict(payload["report"])
                    except BaseException as exc:  # keep draining the batch
                        errors[index] = exc
                        continue
                    self.job_seconds[index] = float(
                        payload.get("elapsed_seconds", 0.0)
                    )
                    reports[index] = report
                    if on_result is not None:
                        on_result(index, report)
            except FuturesTimeoutError:
                abandon = True
                for index in futures.values():
                    if reports[index] is None and index not in errors:
                        errors[index] = FuturesTimeoutError(
                            f"job did not finish within {self.timeout}s "
                            f"(attempt {attempt})"
                        )
            except BaseException:
                # a non-job exception escaping the drain loop (an
                # on_result callback raising, KeyboardInterrupt, ...)
                # must not wait on still-running -- possibly stuck --
                # workers either; abandon the pool and let it propagate
                abandon = True
                raise
        finally:
            # never hold the sweep hostage for a pool being discarded:
            # on timeout or any escaping exception, shut down without
            # waiting and let a fresh pool run the retry
            pool.shutdown(wait=not abandon, cancel_futures=True)
        return errors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessPoolBackend(max_workers={self.max_workers}, "
            f"timeout={self.timeout}, retries={self.retries})"
        )


@dataclass
class ExecutorStats:
    """Where the executor's reports came from (cumulative), plus the sweep
    telemetry: batch and per-job wall time, retry pressure, and the worker
    utilization they imply."""

    runs_simulated: int = 0
    runs_loaded: int = 0
    runs_failed: int = 0
    #: structured records behind :attr:`runs_failed` (cumulative)
    failures: list[JobFailure] = field(default_factory=list)
    #: backend batches dispatched (store-only sweeps dispatch none)
    batches: int = 0
    #: wall seconds spent inside backend batches, end to end
    batch_seconds: float = 0.0
    #: summed per-job wall seconds (worker-side, so pool overhead excluded)
    job_seconds: float = 0.0
    #: jobs with a recorded wall time (failed jobs have none)
    jobs_timed: int = 0
    #: slowest single job observed (the sweep's straggler)
    max_job_seconds: float = 0.0
    #: extra batch attempts beyond the first (crashes, hangs, retries)
    retry_attempts: int = 0

    @property
    def total(self) -> int:
        return self.runs_simulated + self.runs_loaded

    @property
    def mean_job_seconds(self) -> float:
        return self.job_seconds / self.jobs_timed if self.jobs_timed else 0.0

    def worker_utilization(self, workers: int = 1) -> float:
        """Fraction of the worker-pool's batch capacity spent simulating.

        ``sum(job time) / (batch wall time * workers)``: 1.0 means every
        worker simulated the whole batch; low values expose pool overhead,
        stragglers or an oversized pool.  0.0 before any batch ran.
        """
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        capacity = self.batch_seconds * workers
        return self.job_seconds / capacity if capacity > 0 else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "runs_simulated": self.runs_simulated,
            "runs_loaded": self.runs_loaded,
            "runs_failed": self.runs_failed,
        }

    def telemetry(self, workers: int = 1) -> dict[str, object]:
        """JSON-ready sweep profile (the ``--telemetry-out`` artifact)."""
        return {
            "runs_simulated": self.runs_simulated,
            "runs_loaded": self.runs_loaded,
            "runs_failed": self.runs_failed,
            "store_hit_rate": self.runs_loaded / self.total if self.total else 0.0,
            "batches": self.batches,
            "batch_seconds": self.batch_seconds,
            "job_seconds": self.job_seconds,
            "jobs_timed": self.jobs_timed,
            "mean_job_seconds": self.mean_job_seconds,
            "max_job_seconds": self.max_job_seconds,
            "retry_attempts": self.retry_attempts,
            "workers": workers,
            "worker_utilization": self.worker_utilization(workers),
        }


class SweepCheckpoint:
    """Crash-safe progress record for one sweep: which cells finished.

    The persistent :class:`~repro.experiments.store.ResultStore` already
    holds every finished report; what it cannot say is *which sweep* those
    entries belong to or how far that sweep got.  A checkpoint records the
    sweep's identity (a fingerprint over its sorted job keys) and the set
    of completed keys, rewritten atomically after every completion -- so a
    SIGKILLed sweep re-run with the same checkpoint path resumes exactly
    where it died: already-done cells come back as store hits and the
    checkpoint proves none of them were re-simulated.

    A checkpoint file for a *different* sweep (or a torn/alien file) is
    ignored and overwritten rather than trusted: resuming is an
    optimization, never a correctness hazard.
    """

    def __init__(self, path: str | os.PathLike[str], keys: Sequence[str]) -> None:
        self.path = Path(path)
        unique = sorted(set(keys))
        self.sweep_id = fingerprint(unique, kind="SweepCheckpoint")
        self.total = len(unique)
        self._keys = set(unique)
        self.done: set[str] = set()
        #: True when a prior run's progress was loaded from ``path``
        self.resumed = False
        self._load()

    def _load(self) -> None:
        try:
            blob = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # missing or torn: start fresh
        if not isinstance(blob, dict) or blob.get("schema") != SCHEMA_VERSION:
            return
        if blob.get("sweep") != self.sweep_id:
            return  # different sweep: do not inherit its progress
        done = blob.get("done")
        if not isinstance(done, list):
            return
        self.done = {str(key) for key in done} & self._keys
        self.resumed = bool(self.done)

    @property
    def complete(self) -> bool:
        return len(self.done) >= self.total

    @property
    def remaining(self) -> int:
        return self.total - len(self.done)

    def mark_done(self, key: str) -> None:
        """Record one finished cell and persist the file atomically."""
        if key in self.done:
            return
        self.done.add(key)
        self.write()

    def write(self) -> None:
        blob = {
            "schema": SCHEMA_VERSION,
            "sweep": self.sweep_id,
            "total": self.total,
            "done": sorted(self.done),
            "completed": self.complete,
        }
        atomic_write_json(
            self.path,
            blob,
            indent=None,
            sort_keys=True,
            trailing_newline=False,
            tmp_prefix=self.path.name + ".",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepCheckpoint({str(self.path)!r}, done={len(self.done)}/"
            f"{self.total}, resumed={self.resumed})"
        )


class SweepExecutor:
    """A backend plus an optional persistent store, with hit accounting.

    Args:
        backend: how cache-missing jobs are simulated (default: serial).
        store: persistent result store consulted before simulating and
            updated afterwards; ``None`` disables persistence.
        ledger: run ledger every *simulated* cell is recorded into as it
            finishes (store hits are provenance the ledger already has --
            they ride on the sweep-level entry instead, so a warm sweep
            does not duplicate its whole history).  ``None`` disables
            recording.

    One executor may be shared by any number of
    :class:`~repro.experiments.runner.ExperimentRunner` instances (the
    benchmark harness does exactly that), in which case its statistics
    aggregate across all of them.
    """

    def __init__(
        self,
        backend: Optional[SweepBackend] = None,
        store: Optional[ResultStore] = None,
        ledger: Optional[RunLedger] = None,
    ) -> None:
        self.backend: SweepBackend = backend or SerialBackend()
        self.store = store
        self.ledger = ledger
        self.stats = ExecutorStats()

    def _record_failures(self) -> None:
        """Harvest the backend's per-batch failure records into the stats."""
        failures = getattr(self.backend, "failures", None)
        if failures:
            self.stats.failures.extend(failures)
            self.stats.runs_failed += len(failures)

    def _record_batch(self, seconds: float) -> None:
        """Harvest one batch's timing telemetry into the stats.

        Tolerant of third-party backends: a backend without ``job_seconds``
        / ``last_attempts`` still gets batch-level accounting.
        """
        stats = self.stats
        stats.batches += 1
        stats.batch_seconds += seconds
        job_seconds = getattr(self.backend, "job_seconds", None)
        if job_seconds:
            for value in job_seconds.values():
                stats.job_seconds += value
                stats.jobs_timed += 1
                if value > stats.max_job_seconds:
                    stats.max_job_seconds = value
        attempts = getattr(self.backend, "last_attempts", 1)
        stats.retry_attempts += max(0, attempts - 1)

    def run(
        self,
        jobs: Sequence[JobSpec],
        checkpoint: Optional[SweepCheckpoint] = None,
    ) -> list[RunReport]:
        """Resolve every job to a report, in input order.

        Store hits are loaded; the rest are simulated on the backend in one
        batch (the parallel fan-out point) and written back to the store as
        each one finishes, so even an interrupted sweep keeps its completed
        cells.  Duplicate jobs within a batch are simulated only once.

        When ``checkpoint`` is given, every completion (loaded or
        simulated) is recorded in it as it happens; an interrupted sweep
        re-run against the same checkpoint path resumes with its finished
        cells as store hits.  Failed jobs are recorded on
        ``stats.failures`` before the error propagates.
        """
        jobs = list(jobs)
        reports: list[Optional[RunReport]] = [None] * len(jobs)
        loaded: dict[str, RunReport] = {}
        pending: dict[str, list[int]] = {}
        for index, job in enumerate(jobs):
            key = job.fingerprint()
            if key in loaded:  # duplicate of a store hit: no re-read, no recount
                reports[index] = loaded[key]
                continue
            if key in pending:  # duplicate within this batch
                pending[key].append(index)
                continue
            cached = self.store.load(key) if self.store is not None else None
            if cached is not None:
                loaded[key] = cached
                reports[index] = cached
                self.stats.runs_loaded += 1
                if checkpoint is not None:
                    checkpoint.mark_done(key)
            else:
                pending[key] = [index]
        if pending:
            keys = list(pending)
            batch = [jobs[pending[key][0]] for key in keys]

            def persist(batch_index: int, report: RunReport) -> None:
                self.stats.runs_simulated += 1
                key = keys[batch_index]
                if self.store is not None:
                    self.store.save(key, report, job=batch[batch_index].summary())
                if checkpoint is not None:
                    checkpoint.mark_done(key)
                if self.ledger is not None:
                    # both backends set job_seconds[batch_index] before the
                    # callback fires, so wall time is available here
                    seconds = getattr(self.backend, "job_seconds", {}).get(batch_index)
                    self.ledger.record(
                        run_entry(
                            kind="job",
                            fingerprint_hex=key,
                            workload=report.workload,
                            policy=report.policy,
                            cycles=report.cycles,
                            counters=report.counters,
                            wall_seconds=seconds,
                            source="executor",
                            extra={"job": batch[batch_index].summary()},
                        )
                    )

            batch_started = time.perf_counter()
            try:
                fresh = self.backend.run_jobs(batch, on_result=persist)
            finally:
                self._record_failures()
                self._record_batch(time.perf_counter() - batch_started)
            for key, report in zip(keys, fresh):
                for index in pending[key]:
                    reports[index] = report
        elif checkpoint is not None and not checkpoint.done and not jobs:
            checkpoint.write()
        assert all(report is not None for report in reports)
        return reports  # type: ignore[return-value]

    def run_one(self, job: JobSpec) -> RunReport:
        """Convenience wrapper for a single job."""
        return self.run([job])[0]

    def record_sweep(
        self, label: str = "sweep", workers: int = 1
    ) -> Optional[dict[str, object]]:
        """Append one sweep-level aggregate entry to the ledger.

        Carries the executor telemetry (simulated/loaded/failed counts,
        store hit rate, batch and job wall time, retry pressure, worker
        utilization) -- the fleet-level record of how the sweep *executed*,
        complementing the per-cell ``job`` entries of what it computed.
        Returns the recorded entry, or ``None`` without a ledger.
        """
        if self.ledger is None:
            return None
        return self.ledger.record(
            run_entry(
                kind="sweep",
                fingerprint_hex=None,
                workload=label,
                policy="*",
                telemetry=self.stats.telemetry(workers),
                source="executor",
            )
        )
