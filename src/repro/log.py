"""Run-scoped structured logging for the execution layer.

The simulator itself stays silent -- determinism and bit-identical reports
leave no room for logging on the hot path -- but the *execution* layer
around it (the sweep executor's retry machinery, the fault injector's
strikes, the CLI's command lifecycle) has operational moments worth a log
line.  This module is the one logging surface they share:

* :func:`get_logger` hands out cheap named loggers with optional bound
  context (``get_logger("repro.executor", sweep="figure7")``).
* Logging is **disabled by default**: until :func:`configure` is called,
  every logging call is a no-op that never touches a stream, so historical
  stdout/stderr stay byte-identical and no test output changes.
* :func:`configure` turns output on: human-readable lines to a stream
  (stderr by default) or a file, or JSON-lines (one object per line, for
  machine ingestion) with ``json_lines=True``.

Events are a short snake_case name plus keyword fields::

    log = get_logger("repro.executor")
    log.warning("batch_retry", attempt=2, pending=3)
    # 14:02:11 WARNING repro.executor batch_retry attempt=2 pending=3

The stdlib ``logging`` module is deliberately not used: its process-global
root logger, handler caching and level inheritance are shared mutable
state that test runners and library consumers fight over; this sink is a
single module-level reference that tests reset with :func:`reset`.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, Optional

__all__ = ["StructuredLogger", "configure", "get_logger", "reset"]

#: numeric severities (stdlib-compatible ordering)
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _LogSink:
    """Where configured log records go: one stream, one format, one level."""

    def __init__(
        self,
        stream: Optional[IO[str]],
        path: Optional[str],
        json_lines: bool,
        min_level: int,
    ) -> None:
        self.stream = stream
        self.path = path
        self.json_lines = json_lines
        self.min_level = min_level

    def emit(self, logger: str, level: str, event: str, fields: dict) -> None:
        if LEVELS[level] < self.min_level:
            return
        now = time.time()
        if self.json_lines:
            record = {"ts": round(now, 3), "level": level, "logger": logger, "event": event}
            record.update(fields)
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        else:
            clock = time.strftime("%H:%M:%S", time.localtime(now))
            suffix = "".join(f" {key}={value}" for key, value in fields.items())
            line = f"{clock} {level.upper()} {logger} {event}{suffix}"
        if self.path is not None:
            # append per record: logs are low-rate (command lifecycle,
            # retries, fault strikes), and an open handle held across
            # fork-based process pools is a sharper edge than re-opening
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        else:
            stream = self.stream if self.stream is not None else sys.stderr
            print(line, file=stream)


#: the active sink; None = logging disabled (the default, and the exact
#: historical no-output behaviour)
_sink: Optional[_LogSink] = None


def configure(
    level: str = "info",
    stream: Optional[IO[str]] = None,
    path: Optional[str] = None,
    json_lines: bool = False,
) -> None:
    """Enable structured logging process-wide.

    Args:
        level: minimum severity emitted (``debug``/``info``/``warning``/
            ``error``).
        stream: destination stream (default: ``sys.stderr`` at emit time).
        path: destination file (appended); takes precedence over ``stream``.
        json_lines: emit one JSON object per line instead of human text.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; pick one of {sorted(LEVELS)}")
    global _sink
    _sink = _LogSink(stream=stream, path=path, json_lines=json_lines, min_level=LEVELS[level])


def reset() -> None:
    """Disable logging again (tests restore the default around configure)."""
    global _sink
    _sink = None


class StructuredLogger:
    """A named logger with optional bound context fields.

    Instances are cheap and stateless apart from their name and bound
    fields; every call re-reads the module sink, so a logger created
    before :func:`configure` still emits afterwards (and one created
    during an enabled phase goes quiet after :func:`reset`).
    """

    def __init__(self, name: str, **bound: object) -> None:
        self.name = name
        self.bound = bound

    def bind(self, **fields: object) -> "StructuredLogger":
        """A child logger with extra context attached to every record."""
        merged = dict(self.bound)
        merged.update(fields)
        return StructuredLogger(self.name, **merged)

    @property
    def enabled(self) -> bool:
        return _sink is not None

    def _log(self, level: str, event: str, fields: dict) -> None:
        sink = _sink
        if sink is None:
            return
        merged = dict(self.bound)
        merged.update(fields)
        sink.emit(self.name, level, event, merged)

    def debug(self, event: str, **fields: object) -> None:
        self._log("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log("error", event, fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StructuredLogger({self.name!r}, enabled={self.enabled})"


def get_logger(name: str, **bound: object) -> StructuredLogger:
    """The module-level factory every adopting component uses."""
    return StructuredLogger(name, **bound)
