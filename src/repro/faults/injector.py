"""Turning a :class:`~repro.faults.config.FaultPlan` into scheduled events.

The :class:`FaultInjector` is built by
:class:`~repro.session.SimulationSession` when a fault plan is supplied.
At construction it validates the plan against the assembled system (a
device fault needs a multi-device topology, a stream kill needs a serving
run with that many tenants) and schedules every event -- the strike and,
for transient faults, the recovery -- on the simulator's own event queue.
Everything downstream is ordinary deterministic discrete-event execution:
same plan, same system, same counters, every time.

Injection surfaces:

* fabric links get a :class:`LinkFaultState` (one extra ``None``-test on
  the :meth:`~repro.memory.interconnect.Link.send` path) that stalls
  sends during an outage and adds latency during a degrade;
* DRAM banks get a :class:`DramFaultState` (one ``None``-test in the
  bank scheduler) that slows every access during a spike;
* the :class:`~repro.gpu.gpu.Gpu` stream scheduler provides
  ``fail_device``/``recover_device`` (cordon + evacuate + re-dispatch)
  and ``kill_stream``/``restart_stream`` (tenant churn);
* the hierarchy provides ``evacuate_device``/``evacuate_stream`` (the
  dirty-line flushes that make degradation *graceful* -- no data is ever
  lost).

Resilience accounting: the injector tracks the union of intervals during
which at least one fault is active and records it as
``faults.degraded_cycles`` (availability = 1 - degraded/total, surfaced
by :class:`~repro.stats.report.RunReport`).  The session calls
:meth:`finalize` the moment the workload completes, which closes any
still-open degraded interval and disarms events scheduled past the end
of the run -- so availability is always measured over the run itself.
All ``faults.*`` counters are written only when an event actually fires,
which is what keeps the empty plan counter-for-counter identical to the
no-fault path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.faults.config import FaultEvent, FaultPlan
from repro.log import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine import Simulator
    from repro.gpu.gpu import Gpu
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.stats import StatsCollector

__all__ = ["FaultInjector", "LinkFaultState", "DramFaultState"]

#: run-scoped structured logger (silent unless repro.log.configure ran)
_log = get_logger("faults")


class LinkFaultState:
    """Mutable fault condition of one fabric link.

    Installed lazily by the injector on the links a plan touches; links
    of healthy runs keep ``_fault is None`` and their send path is
    byte-for-byte the historical one.
    """

    __slots__ = ("extra_latency", "down_until", "_c_stall", "_c_stalled", "_c_degraded")

    def __init__(self, stats: "StatsCollector") -> None:
        #: added cycles per crossing while a degrade is active
        self.extra_latency = 0
        #: no transfer is granted before this cycle (outage)
        self.down_until = -1
        self._c_stall = stats.counter("faults.link_stall_cycles")
        self._c_stalled = stats.counter("faults.link_stalled_requests")
        self._c_degraded = stats.counter("faults.link_degraded_requests")

    def apply(self, now: int, latency: int) -> tuple[int, int]:
        """Fold the fault condition into one send's (start, latency)."""
        if self.down_until > now:
            self._c_stall.add(self.down_until - now)
            self._c_stalled.add()
            now = self.down_until
        extra = self.extra_latency
        if extra:
            latency += extra
            self._c_degraded.add()
        return now, latency


class DramFaultState:
    """Mutable fault condition of one DRAM bank (a latency spike)."""

    __slots__ = ("extra_latency", "_c_slowed")

    def __init__(self, stats: "StatsCollector") -> None:
        self.extra_latency = 0
        self._c_slowed = stats.counter("faults.dram_slowed_accesses")

    def apply(self) -> int:
        """Extra service cycles for one access (0 when the spike lifted)."""
        extra = self.extra_latency
        if extra:
            self._c_slowed.add()
        return extra


class FaultInjector:
    """Schedules a fault plan's events against one assembled session."""

    def __init__(
        self,
        plan: FaultPlan,
        sim: "Simulator",
        stats: "StatsCollector",
        gpu: "Gpu",
        hierarchy: "MemoryHierarchy",
        num_streams: int = 0,
    ) -> None:
        self.plan = plan
        self.sim = sim
        self.stats = stats
        self.gpu = gpu
        self.hierarchy = hierarchy
        self.num_streams = num_streams
        self._completed = False
        #: count of concurrently active faults; the union of active
        #: intervals becomes faults.degraded_cycles
        self._active = 0
        self._degraded_since = 0
        #: optional telemetry TraceRecorder (one None-test per fault event,
        #: never on a request path)
        self.trace = None
        self._validate()
        for event in plan.events:
            sim.schedule_at(event.cycle, lambda e=event: self._strike(e))

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        plan = self.plan
        num_devices = self.hierarchy.num_devices
        needed_devices = plan.requires_devices()
        if needed_devices > num_devices:
            raise ValueError(
                f"fault plan {plan.label!r} needs at least {needed_devices} devices "
                f"(link/device faults), but the system has {num_devices}"
            )
        needed_streams = plan.requires_streams()
        if needed_streams > 0 and self.num_streams == 0:
            raise ValueError(
                f"fault plan {plan.label!r} kills streams and needs a serving "
                "session (streams=...)"
            )
        if needed_streams > self.num_streams > 0:
            raise ValueError(
                f"fault plan {plan.label!r} targets stream {needed_streams - 1}, "
                f"but the serving mix has only {self.num_streams} streams"
            )
        permanent_failures = {
            event.target
            for event in plan.events
            if event.kind == "device_fail" and event.duration == 0
        }
        if len(permanent_failures) >= num_devices > 1:
            raise ValueError(
                f"fault plan {plan.label!r} permanently fails all {num_devices} "
                "devices; at least one must survive to absorb the work"
            )

    # ------------------------------------------------------------------
    # degraded-interval accounting
    # ------------------------------------------------------------------
    def _activate(self) -> None:
        if self._active == 0:
            self._degraded_since = self.sim.now
            if self.trace is not None:
                self.trace.degraded_begin()
        self._active += 1

    def _deactivate(self) -> None:
        if self._completed:
            return  # finalize() already closed the interval
        self._active -= 1
        if self._active == 0:
            self.stats.add("faults.degraded_cycles", self.sim.now - self._degraded_since)
            if self.trace is not None:
                self.trace.degraded_end()

    def finalize(self) -> None:
        """Close the books at workload completion.

        Called by the session the moment the run completes: any open
        degraded interval is charged up to *now* (so availability is
        measured over the run, and a permanent fault degrades exactly the
        cycles it overlapped), and later strikes/recoveries still sitting
        in the event queue become no-ops.
        """
        if self._completed:
            return
        self._completed = True
        if self._active > 0:
            self.stats.add("faults.degraded_cycles", self.sim.now - self._degraded_since)
            self._active = 0
            if self.trace is not None:
                self.trace.degraded_end()

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def _strike(self, event: FaultEvent) -> None:
        if self._completed:
            return  # the workload finished before this fault struck
        handler = {
            "link_degrade": self._strike_link_degrade,
            "link_outage": self._strike_link_outage,
            "device_fail": self._strike_device_fail,
            "dram_spike": self._strike_dram_spike,
            "stream_kill": self._strike_stream_kill,
        }[event.kind]
        if self.trace is not None:
            self.trace.fault_event(event.kind, event.target)
        if _log.enabled:
            _log.warning(
                "fault_strike",
                kind=event.kind,
                target=event.target,
                cycle=self.sim.now,
                duration=event.duration,
            )
        if handler(event):
            self.stats.add("faults.injected")
        else:
            # struck a component with nothing to break (e.g. killing an
            # already-finished stream): recorded, but not a degradation
            self.stats.add("faults.noop_events")

    # -- links ---------------------------------------------------------
    def _link_faults(self, device: int) -> list[LinkFaultState]:
        """Fault states of every fabric link touching ``device`` (all
        links for ``device == -1``), installing them on first use."""
        links = self.hierarchy.fabric_links(None if device < 0 else device)
        states = []
        for link in links:
            if link._fault is None:
                link._fault = LinkFaultState(self.stats)
            states.append(link._fault)
        return states

    def _strike_link_degrade(self, event: FaultEvent) -> bool:
        states = self._link_faults(event.target)
        for state in states:
            state.extra_latency += event.extra_latency
        self._activate()
        if event.duration:
            def lift() -> None:
                for state in states:
                    state.extra_latency -= event.extra_latency
                self._deactivate()

            self.sim.schedule_at(event.cycle + event.duration, lift)
        return True

    def _strike_link_outage(self, event: FaultEvent) -> bool:
        until = self.sim.now + event.duration
        for state in self._link_faults(event.target):
            state.down_until = max(state.down_until, until)
        self._activate()
        self.sim.schedule_at(until, self._deactivate)
        return True

    # -- DRAM ----------------------------------------------------------
    def _dram_faults(self, device: int) -> list[DramFaultState]:
        banks = self.hierarchy.dram_banks(None if device < 0 else device)
        states = []
        for bank in banks:
            if bank.fault is None:
                bank.fault = DramFaultState(self.stats)
            states.append(bank.fault)
        return states

    def _strike_dram_spike(self, event: FaultEvent) -> bool:
        states = self._dram_faults(event.target)
        for state in states:
            state.extra_latency += event.extra_latency
        self._activate()
        if event.duration:
            def lift() -> None:
                for state in states:
                    state.extra_latency -= event.extra_latency
                self._deactivate()

            self.sim.schedule_at(event.cycle + event.duration, lift)
        return True

    # -- devices -------------------------------------------------------
    def _strike_device_fail(self, event: FaultEvent) -> bool:
        device = event.target
        evacuated = self.gpu.fail_device(device)
        if evacuated < 0:
            return False  # already failed: nothing new to break
        self.stats.add("faults.device_failures")
        if evacuated:
            self.stats.add("faults.evacuated_wavefronts", evacuated)
        # the failed device's fabric interface limps along in a degraded
        # recovery mode until the device returns
        remote_latency = self.hierarchy.topology.remote_latency_cycles
        states = self._link_faults(device)
        for state in states:
            state.extra_latency += remote_latency

        def flushed() -> None:
            # the slice's dirty lines are safe in its (surviving) DRAM
            # partition; survivors' remote requests proceed normally
            self.stats.add("faults.evacuation_flushes")

        self.hierarchy.evacuate_device(device, flushed)
        self._activate()
        if event.duration:
            def recover() -> None:
                if self._completed:
                    return
                self.gpu.recover_device(device)
                for state in states:
                    state.extra_latency -= remote_latency
                self.stats.add("faults.device_recoveries")
                self._deactivate()

            self.sim.schedule_at(event.cycle + event.duration, recover)
        return True

    # -- streams -------------------------------------------------------
    def _strike_stream_kill(self, event: FaultEvent) -> bool:
        stream_id = event.target
        if not self.gpu.kill_stream(stream_id, will_restart=event.duration > 0):
            return False  # the tenant already finished (or is already dead)
        self.stats.add("faults.stream_kills")
        self._activate()
        if event.duration:
            def restart() -> None:
                if self._completed:
                    return
                if self.gpu.restart_stream(stream_id):
                    self.stats.add("faults.stream_restarts")
                self._deactivate()

            self.sim.schedule_at(event.cycle + event.duration, restart)
        return True
