"""Fault plans: deterministic schedules of injected failures.

A :class:`FaultPlan` is a frozen, fingerprintable schedule of
:class:`FaultEvent` entries -- each one names a *kind* of failure, the
cycle it strikes, the component it strikes (a device or a stream), and
how long it lasts.  The plan is pure data: the
:class:`~repro.faults.injector.FaultInjector` turns it into scheduled
events on the simulator's own queue, so a faulted run is exactly as
deterministic and reproducible as a healthy one.  The empty plan injects
nothing and is bit-identical to running without a plan at all (enforced
per golden scenario in ``tests/integration/test_core_equivalence.py``).

Event kinds:

* ``link_degrade`` -- the fabric links touching one device (or all
  devices) gain ``extra_latency`` cycles per crossing for ``duration``
  cycles: a browned-out interconnect.  Needs a multi-device topology.
* ``link_outage`` -- those links stop granting transfers entirely:
  remote traffic queued on them stalls until the outage lifts (the
  ``duration`` must be positive -- a permanent outage would deadlock
  remote traffic by construction).
* ``device_fail`` -- one device's compute side dies: its queued
  wavefronts are evacuated and re-dispatched onto the surviving
  devices, its L2 slice flushes dirty lines so no data is lost (the
  memory partition itself survives), and until recovery its fabric
  interface runs degraded by the topology's remote latency.
  ``duration == 0`` means the device never comes back.
* ``dram_spike`` -- every DRAM bank on the target device (or all
  devices) serves accesses ``extra_latency`` cycles slower for
  ``duration`` cycles: a thermal-throttle / refresh-storm transient.
* ``stream_kill`` -- tenant churn in a serving run: the target stream's
  queued wavefronts are dropped, its in-flight wavefronts drain, its
  cache footprint is evicted, and after ``duration`` cycles the tenant
  restarts its interrupted kernel from the top.  ``duration == 0``
  kills the tenant for good.

:func:`generate_fault_plan` derives a plan pseudo-randomly from an
integer seed; the events are materialized eagerly, so the same seed
always yields the identical event schedule (property-tested).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.fingerprint import fingerprint

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FAULT_KINDS",
    "FAULT_PLANS",
    "FAULT_PLAN_NAMES",
    "fault_plan_by_name",
    "generate_fault_plan",
]

#: every fault kind the injector understands
FAULT_KINDS = (
    "link_degrade",
    "link_outage",
    "device_fail",
    "dram_spike",
    "stream_kill",
)

#: kinds whose target is a device index (-1 = every device)
_DEVICE_KINDS = ("link_degrade", "link_outage", "device_fail", "dram_spike")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    Attributes:
        cycle: absolute simulation cycle the fault strikes.
        kind: one of :data:`FAULT_KINDS`.
        target: device index for the device-scoped kinds (``-1`` = all
            devices, where meaningful), stream index for ``stream_kill``.
        duration: cycles until the fault heals; ``0`` = permanent.
            ``link_outage`` requires a positive duration (a permanent
            outage deadlocks remote traffic by construction).
        extra_latency: added cycles per affected operation
            (``link_degrade`` and ``dram_spike`` only).
    """

    cycle: int
    kind: str
    target: int = -1
    duration: int = 0
    extra_latency: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: {', '.join(FAULT_KINDS)}"
            )
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be non-negative, got {self.cycle}")
        if self.duration < 0:
            raise ValueError(f"fault duration must be non-negative, got {self.duration}")
        if self.extra_latency < 0:
            raise ValueError(
                f"fault extra_latency must be non-negative, got {self.extra_latency}"
            )
        if self.kind in ("link_degrade", "dram_spike") and self.extra_latency == 0:
            raise ValueError(f"a {self.kind} event needs a positive extra_latency")
        if self.kind == "link_outage" and self.duration == 0:
            raise ValueError(
                "a link_outage needs a positive duration: a permanent outage "
                "would stall remote traffic forever (model deadlock)"
            )
        if self.kind == "stream_kill" and self.target < 0:
            raise ValueError("a stream_kill must target one stream (target >= 0)")
        if self.kind == "device_fail" and self.target < 0:
            raise ValueError("a device_fail must target one device (target >= 0)")

    def describe(self) -> dict[str, object]:
        """Primitive summary (fingerprint input / ``list --json`` output)."""
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "target": self.target,
            "duration": self.duration,
            "extra_latency": self.extra_latency,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events.

    Like :class:`~repro.topology.config.TopologyConfig`, the plan is a
    frozen dataclass of primitives: :func:`repro.fingerprint.fingerprint`
    over the event schedule gives it a stable content hash, and faulted
    runs key into the persistent result store exactly like healthy ones.
    The display-only ``name`` is excluded from the fingerprint.

    The default (no events) is the *empty plan*: it schedules nothing,
    touches no counters, and is bit-identical to running without a fault
    plan at all.
    """

    events: tuple[FaultEvent, ...] = ()
    name: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        # normalize to a sorted tuple so equal schedules written in any
        # order fingerprint (and replay) identically
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.cycle, e.kind, e.target, e.duration))
        )
        object.__setattr__(self, "events", ordered)

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (the bit-identical baseline)."""
        return not self.events

    @property
    def label(self) -> str:
        """Display name used in figures and CLI output."""
        return self.name or ("none" if self.empty else f"{len(self.events)}-events")

    def requires_devices(self) -> int:
        """Minimum device count a system needs to host this plan."""
        needed = 1
        for event in self.events:
            if event.kind == "dram_spike":
                # a spike needs no fabric: any system has DRAM banks
                needed = max(needed, event.target + 1)
            elif event.kind in _DEVICE_KINDS:
                # the target must exist, and link/device faults only mean
                # something where a fabric exists: at least two devices
                needed = max(needed, event.target + 1, 2)
        return needed

    def requires_streams(self) -> int:
        """Minimum serving-stream count this plan's kill events need
        (0: the plan works outside serving runs too)."""
        needed = 0
        for event in self.events:
            if event.kind == "stream_kill":
                needed = max(needed, event.target + 1)
        return needed

    def fingerprint(self) -> str:
        """Stable content hash over the event schedule (name excluded)."""
        return fingerprint(self.describe(), kind="FaultPlan")

    def describe(self) -> dict[str, object]:
        """Primitive summary used by ``list --json`` and fingerprints."""
        return {"events": [event.describe() for event in self.events]}


def generate_fault_plan(
    seed: int,
    horizon_cycles: int = 40_000,
    num_devices: int = 2,
    num_streams: int = 2,
    events_per_kind: int = 1,
    name: str = "",
) -> FaultPlan:
    """Derive a chaos plan pseudo-randomly from ``seed``.

    The schedule is materialized eagerly from a private
    :class:`random.Random`, so the same arguments always produce the
    identical plan -- generation is the only place randomness exists;
    replay is pure event-queue determinism.

    Args:
        seed: RNG seed; the plan's sole source of entropy.
        horizon_cycles: events strike uniformly in ``[0, horizon_cycles)``
            (keep it inside the expected run length or late events no-op).
        num_devices: device count of the system the plan is meant for;
            device-scoped faults target ``[0, num_devices)`` and device
            failures spare device 0 so at least one survivor remains.
        num_streams: serving-stream count; ``0`` omits tenant churn.
        events_per_kind: how many events of each applicable kind to draw.
    """
    if horizon_cycles < 1:
        raise ValueError(f"horizon_cycles must be positive, got {horizon_cycles}")
    if num_devices < 1:
        raise ValueError(f"num_devices must be positive, got {num_devices}")
    if events_per_kind < 0:
        raise ValueError(f"events_per_kind must be non-negative, got {events_per_kind}")
    rng = random.Random(seed)
    events: list[FaultEvent] = []
    for _ in range(events_per_kind):
        if num_devices > 1:
            events.append(
                FaultEvent(
                    cycle=rng.randrange(horizon_cycles),
                    kind="link_degrade",
                    target=rng.randrange(-1, num_devices),
                    duration=rng.randrange(1, horizon_cycles // 2 + 1),
                    extra_latency=rng.randrange(20, 400),
                )
            )
            events.append(
                FaultEvent(
                    cycle=rng.randrange(horizon_cycles),
                    kind="link_outage",
                    target=rng.randrange(-1, num_devices),
                    duration=rng.randrange(1, max(2, horizon_cycles // 8)),
                )
            )
            events.append(
                FaultEvent(
                    cycle=rng.randrange(horizon_cycles),
                    kind="device_fail",
                    # spare device 0 so the evacuation always has a survivor
                    target=rng.randrange(1, num_devices),
                    duration=rng.randrange(1, horizon_cycles // 2 + 1),
                )
            )
        events.append(
            FaultEvent(
                cycle=rng.randrange(horizon_cycles),
                kind="dram_spike",
                target=rng.randrange(-1, num_devices),
                duration=rng.randrange(1, horizon_cycles // 2 + 1),
                extra_latency=rng.randrange(50, 600),
            )
        )
        if num_streams > 0:
            events.append(
                FaultEvent(
                    cycle=rng.randrange(horizon_cycles),
                    kind="stream_kill",
                    target=rng.randrange(num_streams),
                    duration=rng.randrange(1, horizon_cycles // 2 + 1),
                )
            )
    return FaultPlan(
        events=tuple(events),
        name=name or f"seed{seed}",
        description=f"generated chaos plan (seed={seed})",
    )


#: registered fault plans.  Event cycles sit in the first few thousand
#: cycles so the plans bite even at the small CI scales; durations are
#: long enough that degradation overlaps real work.  All plans assume the
#: resilience study's default system (2+ devices, 2+ serving streams);
#: the CLI checks each plan's requirements against the chosen topology
#: and mix before sweeping.
FAULT_PLANS: dict[str, FaultPlan] = {
    "none": FaultPlan(name="none", description="healthy baseline (no faults)"),
    "link-brownout": FaultPlan(
        events=(
            FaultEvent(cycle=1_500, kind="link_degrade", target=-1,
                       duration=8_000, extra_latency=150),
            FaultEvent(cycle=12_000, kind="link_outage", target=-1, duration=2_000),
        ),
        name="link-brownout",
        description="fabric-wide degradation then a short total outage",
    ),
    "device-outage": FaultPlan(
        events=(
            FaultEvent(cycle=3_000, kind="device_fail", target=1, duration=15_000),
        ),
        name="device-outage",
        description="device 1 fails and recovers; survivors absorb its work",
    ),
    "dram-storm": FaultPlan(
        events=(
            FaultEvent(cycle=1_000, kind="dram_spike", target=-1,
                       duration=6_000, extra_latency=200),
            FaultEvent(cycle=10_000, kind="dram_spike", target=0,
                       duration=4_000, extra_latency=400),
        ),
        name="dram-storm",
        description="two overlapping DRAM latency spikes",
    ),
    "tenant-churn": FaultPlan(
        events=(
            FaultEvent(cycle=2_500, kind="stream_kill", target=1, duration=5_000),
            FaultEvent(cycle=14_000, kind="stream_kill", target=0, duration=6_000),
        ),
        name="tenant-churn",
        description="tenants killed and restarted mid-run",
    ),
    "chaos-monkey": generate_fault_plan(seed=2019, name="chaos-monkey"),
}

FAULT_PLAN_NAMES: tuple[str, ...] = tuple(FAULT_PLANS)


def fault_plan_by_name(name: str) -> FaultPlan:
    """Look up a registered fault plan by name (case-insensitive)."""
    for known, plan in FAULT_PLANS.items():
        if known.lower() == name.lower():
            return plan
    raise KeyError(
        f"unknown fault plan {name!r}; known plans: {', '.join(FAULT_PLAN_NAMES)}"
    )
