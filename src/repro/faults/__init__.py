"""Deterministic fault injection and graceful degradation.

Production fleets lose fabric links, whole devices and tenant processes;
this package lets the simulated system lose them too -- reproducibly.  A
:class:`~repro.faults.config.FaultPlan` is a frozen, fingerprintable
schedule of :class:`~repro.faults.config.FaultEvent` entries (link
degradation/outage, device failure with evacuation, DRAM latency spikes,
tenant kill/restart churn); the
:class:`~repro.faults.injector.FaultInjector` replays it on the
simulator's own event queue, so chaos runs are exactly as deterministic
as healthy ones and cache into the persistent result store under the
plan's fingerprint.

Quickstart::

    from repro import simulate, CACHE_RW, mix_by_name
    from repro.faults import fault_plan_by_name
    from repro.topology import topology_by_name

    report = simulate(
        policy=CACHE_RW,
        streams=mix_by_name("mha+fwlstm"),
        topology=topology_by_name("dual-chiplet"),
        faults=fault_plan_by_name("device-outage"),
    )
    print(report.availability, report.degraded_cycles)

The empty plan (``FaultPlan()`` / the registered ``"none"``) injects
nothing and is counter-for-counter bit-identical to running without a
plan at all -- enforced per golden scenario in
``tests/integration/test_core_equivalence.py``.
"""

from repro.faults.config import (
    FAULT_KINDS,
    FAULT_PLAN_NAMES,
    FAULT_PLANS,
    FaultEvent,
    FaultPlan,
    fault_plan_by_name,
    generate_fault_plan,
)
from repro.faults.injector import DramFaultState, FaultInjector, LinkFaultState

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_NAMES",
    "FAULT_PLANS",
    "FaultEvent",
    "FaultPlan",
    "fault_plan_by_name",
    "generate_fault_plan",
    "FaultInjector",
    "LinkFaultState",
    "DramFaultState",
]
