"""Windowed counter time-series: watch metrics drift across a run.

End-of-run scalar counters cannot show a hit rate collapsing when a
streaming phase starts or one tenant's traffic starving another.  The
:class:`MetricsSampler` closes that gap: attached by the session, it
snapshots the shared :class:`~repro.stats.StatsCollector` every N cycles
(the store's own :meth:`~repro.stats.StatsCollector.snapshot` /
:meth:`~repro.stats.StatsCollector.delta_since` helpers) and records each
window's counter *deltas*.  The windows ride on
:attr:`repro.stats.report.RunReport.metrics` and serialize through the
result store with the rest of the report.

Exactness invariant (pinned by the integration tests): the first window's
baseline is the *empty* snapshot and the final partial window is flushed
when the simulator finishes, so summing any counter's deltas across all
windows reproduces the end-of-run value exactly -- no event is ever
outside a window.

Like every telemetry observer the sampler only *reads* the store: its tick
events write no counters, so a metrics-enabled run reports exactly the
counters of a disabled one (same values, same cycle count).

Window schema (one dict per window)::

    {"start": <cycle>, "end": <cycle>, "counters": {name: delta, ...}}

Zero deltas are omitted from ``counters`` (the sum stays exact);
:func:`derive_window` computes the derived per-window signals (hit rates,
remote fraction, MSHR pressure, per-stream traffic) from the deltas.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine import Simulator
    from repro.stats import StatsCollector

__all__ = ["MetricsSampler", "derive_window", "windows_total"]

_STREAM_TRAFFIC = re.compile(r"^stream(\d+)\.mem_requests$")


class MetricsSampler:
    """Samples the counter store into fixed-width windows.

    Args:
        sim: the session's simulator (window boundaries are cycle times).
        stats: the shared counter store (read-only from here).
        interval_cycles: window width in GPU cycles (must be positive).
    """

    def __init__(
        self, sim: "Simulator", stats: "StatsCollector", interval_cycles: int
    ) -> None:
        if interval_cycles < 1:
            raise ValueError(
                f"metrics interval must be positive, got {interval_cycles}"
            )
        self.sim = sim
        self.stats = stats
        self.interval_cycles = interval_cycles
        #: completed windows, oldest first
        self.windows: list[dict[str, object]] = []
        # the empty baseline makes window 0 absorb counters written during
        # setup (before start()), preserving the sum-equals-final invariant
        self._baseline: dict[str, int] = {}
        self._window_start = 0
        self._started = False
        self._finalized = False

    # ------------------------------------------------------------------
    def start(self, is_active: Callable[[], bool]) -> None:
        """Begin periodic sampling; the tick stops re-arming once
        ``is_active`` returns False (the PhaseDetector idiom, so the event
        queue still drains)."""
        if self._started:
            raise RuntimeError("metrics sampler already started")
        self._started = True

        def tick() -> None:
            if not is_active():
                return
            self._close_window(self.sim.now)
            self.sim.schedule(self.interval_cycles, tick)

        self.sim.schedule(self.interval_cycles, tick)

    def finalize(self, final_time: Optional[int] = None) -> None:
        """Flush the trailing partial window (a :meth:`Simulator.on_finish`
        hook), so every counter written during the run lands in a window."""
        if self._finalized:
            return
        self._finalized = True
        end = self.sim.now if final_time is None else final_time
        self._close_window(end, force=not self.windows)

    # ------------------------------------------------------------------
    def _close_window(self, end: int, force: bool = False) -> None:
        delta = self.stats.delta_since(self._baseline)
        counters = {name: value for name, value in delta.items() if value != 0}
        if counters or end > self._window_start or force:
            self.windows.append(
                {
                    "start": self._window_start,
                    "end": end,
                    "counters": dict(sorted(counters.items())),
                }
            )
        self._baseline = self.stats.snapshot()
        self._window_start = end


# ----------------------------------------------------------------------
# derived per-window signals
# ----------------------------------------------------------------------
def derive_window(window: Mapping[str, object]) -> dict[str, object]:
    """The time-series signals of one window, computed from its deltas.

    Returns ``l1_hit_rate`` / ``l2_hit_rate`` (hits per access inside the
    window), ``remote_fraction`` (fabric-crossing share of slice traffic),
    ``mshr_blocked`` + ``mshr_coalesced`` (L2 miss-handling pressure),
    ``mem_requests``, and ``stream_traffic`` (stream index -> requests,
    serving runs only).
    """
    counters = window.get("counters")
    if not isinstance(counters, Mapping):
        raise ValueError("window has no counters mapping")

    def ratio(numerator: str, denominator: str) -> float:
        total = counters.get(denominator, 0)
        return counters.get(numerator, 0) / total if total else 0.0

    remote = counters.get("topo.remote_requests", 0)
    local = counters.get("topo.local_requests", 0)
    stream_traffic: dict[int, int] = {}
    for name, value in counters.items():
        match = _STREAM_TRAFFIC.match(name)
        if match is not None:
            stream_traffic[int(match.group(1))] = int(value)  # type: ignore[call-overload]
    return {
        "start": window.get("start"),
        "end": window.get("end"),
        "l1_hit_rate": ratio("l1.hits", "l1.accesses"),
        "l2_hit_rate": ratio("l2.hits", "l2.accesses"),
        "remote_fraction": remote / (remote + local) if remote + local else 0.0,
        "mshr_blocked": counters.get("l2.blocked_mshr_full", 0),
        "mshr_coalesced": counters.get("l2.mshr_coalesced", 0),
        "mem_requests": counters.get("gpu.mem_requests", 0),
        "stream_traffic": dict(sorted(stream_traffic.items())),
    }


def windows_total(windows: Iterable[Mapping[str, object]]) -> dict[str, int]:
    """Sum the per-window deltas back into cumulative counters.

    By the sampler's exactness invariant this reproduces the end-of-run
    counter values -- the acceptance tests compare it against
    ``RunReport.counters``.
    """
    totals: dict[str, int] = {}
    for window in windows:
        counters = window.get("counters")
        if not isinstance(counters, Mapping):
            raise ValueError("window has no counters mapping")
        for name, value in counters.items():
            totals[name] = totals.get(name, 0) + value  # type: ignore[operator]
    return {name: value for name, value in sorted(totals.items()) if value != 0}
