"""Observability layer: tracing, windowed metrics and host profiling.

Three observers, any combination of which a
:class:`~repro.telemetry.config.TelemetryConfig` switches on for a
:class:`~repro.session.SimulationSession`:

* :class:`TraceRecorder` -- a cycle-accurate Chrome/Perfetto trace-event
  timeline (kernel spans per stream, wavefront slices per CU/device,
  adaptive and fault annotations);
* :class:`MetricsSampler` -- per-window counter deltas whose sum exactly
  reproduces the end-of-run counters;
* :class:`SimProfiler` -- host-side events/sec and per-component callback
  time attribution.

All three are strict observers: they never write a counter or perturb the
simulated timing, so enabling them cannot change a run's results.
"""

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.metrics import MetricsSampler, derive_window, windows_total
from repro.telemetry.profiler import SimProfiler, component_of
from repro.telemetry.trace import TraceRecorder, trace_errors, validate_trace

__all__ = [
    "TelemetryConfig",
    "TraceRecorder",
    "MetricsSampler",
    "SimProfiler",
    "component_of",
    "derive_window",
    "trace_errors",
    "validate_trace",
    "windows_total",
]
