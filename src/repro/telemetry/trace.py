"""Cycle-accurate run timelines in the Chrome trace-event format.

The :class:`TraceRecorder` is the session-wide observer the simulated
components report lifecycle moments to: kernel launches and completions
(the :class:`~repro.gpu.gpu.Gpu` stream scheduler), wavefront dispatch and
retirement (each :class:`~repro.gpu.compute_unit.ComputeUnit`),
kernel-boundary synchronization (the memory hierarchy), phase changes and
policy swaps (the adaptive subsystem), and fault strikes plus the degraded
interval they open (the fault injector).  It turns them into Chrome
trace-event JSON [1] -- the format ``chrome://tracing`` and Perfetto's
https://ui.perfetto.dev load directly -- with one process row per device
(threads = per-CU wavefront lanes, carrying wavefront slices -- concurrent
wavefronts on one CU occupy separate lane rows so spans nest), one process
for the stream
timelines (threads = streams, carrying kernel spans), and one control
process for adaptive/fault annotations.

Timestamps map **1 GPU cycle = 1 microsecond** of trace time, so span
durations read directly as cycle counts in the viewer.

Every hook is a single ``None``-test on the emitting component when
tracing is disabled, and the recorder only ever *reads* simulation state:
it writes no counters and schedules no events, so a traced run's report is
bit-identical to an untraced one.

[1] https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.adaptive.phase import PhaseSample
    from repro.engine import Simulator

__all__ = ["TraceRecorder", "trace_errors", "validate_trace"]

#: trace process ids: streams (kernel spans), control (adaptive + faults);
#: device ``d`` gets pid ``PID_DEVICE_BASE + d`` (wavefront slices per CU)
PID_STREAMS = 1
PID_CONTROL = 2
PID_DEVICE_BASE = 10

#: control-process thread ids
TID_ADAPTIVE = 0
TID_FAULTS = 1
TID_ALERTS = 2

#: tid stride separating a CU's wavefront lanes inside its device process:
#: lane ``L`` of CU ``c`` renders as tid ``c * WAVE_LANE_STRIDE + L``.  A CU
#: keeps many wavefronts in flight at once, and Chrome "X" spans on one
#: thread row must nest -- so concurrent wavefronts each get their own lane
#: row (``cuC.wL``), like the occupancy tracks of real GPU profilers.
WAVE_LANE_STRIDE = 1024

#: allowed phases in emitted/validated traces ("M" = metadata)
_KNOWN_PHASES = frozenset({"X", "i", "I", "M", "B", "E", "C"})


class TraceRecorder:
    """Collects trace events during one simulation run.

    Args:
        sim: the session's simulator (timestamps come from ``sim.now``).
        max_events: recording stops (and :attr:`truncated` is set) once
            this many events were captured, bounding memory on huge runs.
    """

    def __init__(self, sim: "Simulator", max_events: int = 1_000_000) -> None:
        self.sim = sim
        self.max_events = max_events
        self.events: list[dict[str, object]] = []
        self.truncated = False
        #: stream_id -> (kernel name, kernel index, start cycle)
        self._open_kernels: dict[int, tuple[str, int, int]] = {}
        #: wavefront_id -> (cu_id, lane, stream_id, kernel_id, start cycle)
        self._open_wavefronts: dict[int, tuple[int, int, int, int, int]] = {}
        #: cu_id -> lanes currently occupied by an in-flight wavefront
        self._cu_busy_lanes: dict[int, set[int]] = {}
        self._degraded_since: Optional[int] = None
        self._cus_per_device = 0
        self._process_names: dict[int, str] = {PID_STREAMS: "streams"}
        self._thread_names: dict[tuple[int, int], str] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # emission plumbing
    # ------------------------------------------------------------------
    def _emit(self, event: dict[str, object]) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(event)

    def _span(
        self,
        name: str,
        cat: str,
        start: int,
        end: int,
        pid: int,
        tid: int,
        args: Optional[dict[str, object]] = None,
    ) -> None:
        event: dict[str, object] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start,
            "dur": max(end - start, 0),
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def _instant(
        self,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        args: Optional[dict[str, object]] = None,
        scope: str = "t",
    ) -> None:
        event: dict[str, object] = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": self.sim.now,
            "pid": pid,
            "tid": tid,
            "s": scope,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def _name_stream(self, stream_id: int) -> None:
        self._thread_names.setdefault((PID_STREAMS, stream_id), f"stream{stream_id}")

    # ------------------------------------------------------------------
    # GPU topology (wavefront rows group by device)
    # ------------------------------------------------------------------
    def set_topology(self, num_devices: int, cus_per_device: int) -> None:
        """Declare the CU -> device mapping the wavefront rows group by."""
        self._cus_per_device = cus_per_device
        for device in range(num_devices):
            self._process_names[PID_DEVICE_BASE + device] = f"device{device}"

    def _device_pid(self, cu_id: int) -> int:
        if self._cus_per_device <= 0:
            return PID_DEVICE_BASE
        return PID_DEVICE_BASE + cu_id // self._cus_per_device

    # ------------------------------------------------------------------
    # GPU stream scheduler hooks (kernel spans)
    # ------------------------------------------------------------------
    def kernel_started(self, stream_id: int, kernel_index: int, name: str) -> None:
        self._open_kernels[stream_id] = (name, kernel_index, self.sim.now)
        self._name_stream(stream_id)

    def kernel_finished(self, stream_id: int) -> None:
        open_kernel = self._open_kernels.pop(stream_id, None)
        if open_kernel is None:
            return
        name, index, start = open_kernel
        self._span(
            name,
            "kernel",
            start,
            self.sim.now,
            PID_STREAMS,
            stream_id,
            args={"kernel_index": index, "stream": stream_id},
        )

    def kernel_interrupted(self, stream_id: int) -> None:
        """A tenant kill cut the stream's running kernel short."""
        open_kernel = self._open_kernels.pop(stream_id, None)
        if open_kernel is None:
            return
        name, index, start = open_kernel
        self._span(
            name,
            "kernel",
            start,
            self.sim.now,
            PID_STREAMS,
            stream_id,
            args={"kernel_index": index, "stream": stream_id, "interrupted": True},
        )

    # ------------------------------------------------------------------
    # compute-unit hooks (wavefront dispatch slices)
    # ------------------------------------------------------------------
    def wavefront_started(
        self, wavefront_id: int, cu_id: int, stream_id: int, kernel_id: int
    ) -> None:
        busy = self._cu_busy_lanes.setdefault(cu_id, set())
        lane = 0
        while lane in busy:
            lane += 1
        busy.add(lane)
        self._open_wavefronts[wavefront_id] = (
            cu_id,
            lane,
            stream_id,
            kernel_id,
            self.sim.now,
        )
        self._thread_names.setdefault(
            (self._device_pid(cu_id), self._lane_tid(cu_id, lane)),
            f"cu{cu_id}.w{lane}",
        )

    @staticmethod
    def _lane_tid(cu_id: int, lane: int) -> int:
        return cu_id * WAVE_LANE_STRIDE + lane

    def wavefront_finished(self, wavefront_id: int) -> None:
        open_wavefront = self._open_wavefronts.pop(wavefront_id, None)
        if open_wavefront is None:
            return
        cu_id, lane, stream_id, kernel_id, start = open_wavefront
        self._cu_busy_lanes[cu_id].discard(lane)
        self._span(
            f"wf{wavefront_id}",
            "wavefront",
            start,
            self.sim.now,
            self._device_pid(cu_id),
            self._lane_tid(cu_id, lane),
            args={"stream": stream_id, "kernel": kernel_id, "cu": cu_id},
        )

    # ------------------------------------------------------------------
    # memory-hierarchy hook (kernel-boundary synchronization instants)
    # ------------------------------------------------------------------
    def kernel_boundary(self, stream_id: Optional[int]) -> None:
        tid = stream_id if stream_id is not None else 0
        self._name_stream(tid)
        self._instant(
            "kernel_boundary",
            "memory",
            PID_STREAMS,
            tid,
            args=None if stream_id is None else {"stream": stream_id},
        )

    # ------------------------------------------------------------------
    # adaptive hooks (phase changes and policy swaps)
    # ------------------------------------------------------------------
    def policy_switch(self, policy_name: str) -> None:
        self._thread_names.setdefault((PID_CONTROL, TID_ADAPTIVE), "adaptive")
        self._process_names.setdefault(PID_CONTROL, "control")
        self._instant(
            "policy_switch",
            "adaptive",
            PID_CONTROL,
            TID_ADAPTIVE,
            args={"policy": policy_name},
            scope="g",
        )

    def adaptive_event(self, kind: str) -> None:
        """A duel lifecycle moment (``commit`` / ``explore``)."""
        self._thread_names.setdefault((PID_CONTROL, TID_ADAPTIVE), "adaptive")
        self._process_names.setdefault(PID_CONTROL, "control")
        self._instant(kind, "adaptive", PID_CONTROL, TID_ADAPTIVE, scope="g")

    def phase_change(self, sample: "PhaseSample") -> None:
        """Listener registered on the session's phase detector."""
        self._thread_names.setdefault((PID_CONTROL, TID_ADAPTIVE), "adaptive")
        self._process_names.setdefault(PID_CONTROL, "control")
        self._instant(
            "phase_change",
            "adaptive",
            PID_CONTROL,
            TID_ADAPTIVE,
            args={
                "cycle": sample.cycle,
                "requests": sample.requests,
                "arithmetic_intensity": sample.arithmetic_intensity,
                "hit_rate": sample.hit_rate,
                "write_fraction": sample.write_fraction,
            },
            scope="g",
        )

    # ------------------------------------------------------------------
    # fault-injector hooks (strikes + the degraded-interval union)
    # ------------------------------------------------------------------
    def fault_event(self, kind: str, target: int) -> None:
        self._thread_names.setdefault((PID_CONTROL, TID_FAULTS), "faults")
        self._process_names.setdefault(PID_CONTROL, "control")
        self._instant(
            kind,
            "fault",
            PID_CONTROL,
            TID_FAULTS,
            args={"target": target},
            scope="g",
        )

    # ------------------------------------------------------------------
    # observability hooks (post-run anomaly alerts)
    # ------------------------------------------------------------------
    def alert_event(
        self, kind: str, severity: str, message: str, cycle: int
    ) -> None:
        """An anomaly alert, anchored at the cycle it was detected *for*.

        Alerts are computed after the run finishes, so unlike every other
        instant this one carries an explicit timestamp -- the window end
        (or run end) the detector anchored the anomaly to -- instead of
        ``sim.now``.
        """
        self._thread_names.setdefault((PID_CONTROL, TID_ALERTS), "alerts")
        self._process_names.setdefault(PID_CONTROL, "control")
        self._emit(
            {
                "name": kind,
                "cat": "alert",
                "ph": "i",
                "ts": cycle,
                "pid": PID_CONTROL,
                "tid": TID_ALERTS,
                "s": "g",
                "args": {"severity": severity, "message": message},
            }
        )

    def degraded_begin(self) -> None:
        """The first concurrently-active fault struck: a degraded interval
        opens.  Mirrors the injector's ``faults.degraded_cycles`` union."""
        if self._degraded_since is None:
            self._degraded_since = self.sim.now

    def degraded_end(self) -> None:
        """The last active fault lifted (or the run completed): close the
        open degraded interval as a span."""
        if self._degraded_since is None:
            return
        self._thread_names.setdefault((PID_CONTROL, TID_FAULTS), "faults")
        self._process_names.setdefault(PID_CONTROL, "control")
        self._span(
            "degraded",
            "fault",
            self._degraded_since,
            self.sim.now,
            PID_CONTROL,
            TID_FAULTS,
        )
        self._degraded_since = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def finish(self, final_time: Optional[int] = None) -> None:
        """Close the books when the simulation drains.

        Registered as a :meth:`Simulator.on_finish` hook.  Any span still
        open (a kernel a permanent device failure stranded, a wavefront
        the budget guard cut off) is closed at the final time and flagged,
        so the emitted trace never contains dangling begin events.
        """
        if self._finished:
            return
        self._finished = True
        for stream_id in list(self._open_kernels):
            self.kernel_interrupted(stream_id)
        for wavefront_id, (cu_id, lane, stream_id, kernel_id, start) in sorted(
            self._open_wavefronts.items()
        ):
            self._span(
                f"wf{wavefront_id}",
                "wavefront",
                start,
                self.sim.now if final_time is None else final_time,
                self._device_pid(cu_id),
                self._lane_tid(cu_id, lane),
                args={
                    "stream": stream_id,
                    "kernel": kernel_id,
                    "cu": cu_id,
                    "open_at_finish": True,
                },
            )
        self._open_wavefronts.clear()
        self.degraded_end()

    # ------------------------------------------------------------------
    def degraded_span_cycles(self) -> int:
        """Total cycles covered by emitted ``degraded`` spans.

        By construction this equals the ``faults.degraded_cycles`` counter
        (both mirror the injector's activate/deactivate union) -- the
        integration tests assert it.
        """
        return sum(
            int(event["dur"])  # type: ignore[arg-type]
            for event in self.events
            if event.get("name") == "degraded" and event.get("ph") == "X"
        )

    def spans(self, cat: Optional[str] = None) -> list[dict[str, object]]:
        """The recorded complete ("X") events, optionally one category."""
        return [
            event
            for event in self.events
            if event.get("ph") == "X" and (cat is None or event.get("cat") == cat)
        ]

    def to_dict(self) -> dict[str, object]:
        """The Chrome trace-event JSON object (load it in Perfetto)."""
        metadata: list[dict[str, object]] = []
        for pid, name in sorted(self._process_names.items()):
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for (pid, tid), name in sorted(self._thread_names.items()):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return {
            "traceEvents": metadata + self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "format": "cycles-as-microseconds",
                "truncated": self.truncated,
            },
        }


# ----------------------------------------------------------------------
# validation (the CI trace-smoke contract)
# ----------------------------------------------------------------------
def trace_errors(blob: object) -> list[str]:
    """Structural problems in a Chrome trace-event JSON object.

    Checks the properties the acceptance criteria pin: the trace is an
    object with a ``traceEvents`` list, every event carries the required
    keys with an allowed phase, no duration is negative, and within each
    ``(pid, tid)`` row the complete ("X") spans properly nest (a span
    never partially overlaps another).  Returns human-readable error
    strings; an empty list means the trace is valid.
    """
    errors: list[str] = []
    if not isinstance(blob, dict):
        return [f"trace must be a JSON object, got {type(blob).__name__}"]
    events = blob.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no traceEvents list"]
    rows: dict[tuple[object, object], list[tuple[int, int, str]]] = {}
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event #{position} is not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            errors.append(f"event #{position} has unknown phase {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                errors.append(f"event #{position} ({phase}) is missing {key!r}")
        if phase == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"event #{position} has no numeric ts")
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                errors.append(f"event #{position} (X) has no numeric dur")
                continue
            if dur < 0:
                errors.append(
                    f"event #{position} ({event.get('name')!r}) has negative "
                    f"duration {dur}"
                )
                continue
            rows.setdefault((event.get("pid"), event.get("tid")), []).append(
                (int(ts), int(ts + dur), str(event.get("name")))
            )
    for (pid, tid), spans in sorted(rows.items()):
        # sort outermost-first at equal starts, then sweep with a stack of
        # enclosing end times: a span must fit entirely inside (or after)
        # every span still open when it starts
        spans.sort(key=lambda span: (span[0], -span[1]))
        stack: list[tuple[int, int, str]] = []
        for start, end, name in spans:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                errors.append(
                    f"spans overlap without nesting on pid={pid} tid={tid}: "
                    f"{name!r} [{start}, {end}) vs {stack[-1][2]!r} "
                    f"[{stack[-1][0]}, {stack[-1][1]})"
                )
            stack.append((start, end, name))
    return errors


def validate_trace(blob: object) -> None:
    """Raise ``ValueError`` listing every problem when ``blob`` is not a
    structurally valid Chrome trace-event object."""
    errors = trace_errors(blob)
    if errors:
        raise ValueError(
            "invalid trace-event JSON:\n  " + "\n  ".join(errors)
        )
