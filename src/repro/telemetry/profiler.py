"""Host-side simulator performance measurement.

Simulated metrics say nothing about why a *sweep* is slow.  The
:class:`SimProfiler` measures the simulator itself: wall-clock time inside
the event loop, events executed per second, and where the time went,
attributed per *component* (the class whose method -- or whose enclosing
method's closure -- each event callback is).  Attribution uses
:func:`component_of`, which maps a bound method to its class name and a
closure to the class that defined it, so ``Cache``/``DramChannel``/``Gpu``
show up as themselves instead of a wall of ``<lambda>``.

Profiling uses a separate instrumented event loop
(:meth:`repro.engine.event_queue.EventQueue.run_profiled`): the production
:meth:`~repro.engine.event_queue.EventQueue.run` hot loop is untouched, so
runs without a profiler pay nothing.  The profiled loop executes the exact
same event sequence (simulated results are bit-identical); only host time
is observed.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

__all__ = ["SimProfiler", "component_of"]


def component_of(callback: Callable[[], Any]) -> str:
    """The component name host time spent in ``callback`` is charged to.

    Bound methods charge their class; ``functools.partial`` unwraps to the
    wrapped callable; closures and lambdas charge the class (or function)
    that defined them, derived from ``__qualname__``
    (``"Cache._finish_fill.<locals>.done"`` -> ``"Cache"``).
    """
    while isinstance(callback, functools.partial):
        callback = callback.func
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return type(owner).__name__
    qualname = getattr(callback, "__qualname__", None)
    if qualname:
        return qualname.split(".")[0]
    return type(callback).__name__


class SimProfiler:
    """Accumulates host-time attribution over one (or more) event loops."""

    def __init__(self) -> None:
        self.wall_seconds = 0.0
        self.events = 0
        self.component_seconds: dict[str, float] = {}
        self.component_events: dict[str, int] = {}

    # ------------------------------------------------------------------
    # called by EventQueue.run_profiled
    # ------------------------------------------------------------------
    def record(self, callback: Callable[[], Any], seconds: float) -> None:
        """Charge one executed event's host time to its component."""
        name = component_of(callback)
        self.events += 1
        self.component_seconds[name] = (
            self.component_seconds.get(name, 0.0) + seconds
        )
        self.component_events[name] = self.component_events.get(name, 0) + 1

    def add_wall(self, seconds: float) -> None:
        """Add one event-loop invocation's total wall time."""
        self.wall_seconds += seconds

    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Host-side event throughput (0.0 before any events ran)."""
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> dict[str, object]:
        """JSON-ready profile: totals plus per-component attribution,
        biggest time consumer first."""
        callback_seconds = sum(self.component_seconds.values())
        components = [
            {
                "component": name,
                "events": self.component_events.get(name, 0),
                "seconds": seconds,
                "share": seconds / callback_seconds if callback_seconds else 0.0,
            }
            for name, seconds in sorted(
                self.component_seconds.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return {
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "events_per_second": self.events_per_second,
            "callback_seconds": callback_seconds,
            "components": components,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimProfiler(events={self.events}, wall={self.wall_seconds:.3f}s, "
            f"{len(self.component_seconds)} components)"
        )
