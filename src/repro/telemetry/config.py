"""Configuration of the observability layer.

A :class:`TelemetryConfig` is handed to
:class:`~repro.session.SimulationSession` (or :func:`repro.session.simulate`)
to switch on any combination of the three observers:

* ``trace`` -- a :class:`~repro.telemetry.trace.TraceRecorder` capturing a
  Chrome/Perfetto trace-event timeline of the run;
* ``metrics_interval`` -- a
  :class:`~repro.telemetry.metrics.MetricsSampler` snapshotting the counter
  store every N cycles into per-window time-series;
* ``profile`` -- a :class:`~repro.telemetry.profiler.SimProfiler` measuring
  host-side event throughput and per-component callback time.

Telemetry is strictly an *observer*: none of the three ever writes a
counter or changes the simulated timing, so an enabled run reports exactly
the counters of a disabled one, and ``telemetry=None`` (every pre-existing
caller) is byte-for-byte the historical code path.  Because results are
unaffected, telemetry is deliberately **not** part of
:meth:`repro.experiments.jobs.JobSpec.fingerprint` -- traced runs execute
inline rather than through the result store.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TelemetryConfig"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Which observers a session should attach.

    Attributes:
        trace: record a Chrome trace-event timeline of the run.
        metrics_interval: close a metrics window every this many cycles
            (``0`` disables the sampler).
        profile: measure host-side simulator performance (events/sec and
            per-component callback attribution).  The profiled event loop
            is a separate, slower code path; leave this off for
            production sweeps.
        max_trace_events: safety bound on recorded trace events; beyond
            it the recorder stops recording (and flags the trace as
            truncated) instead of exhausting memory on a huge run.
    """

    trace: bool = False
    metrics_interval: int = 0
    profile: bool = False
    max_trace_events: int = 1_000_000

    def __post_init__(self) -> None:
        if self.metrics_interval < 0:
            raise ValueError(
                f"metrics_interval must be >= 0, got {self.metrics_interval}"
            )
        if self.max_trace_events < 1:
            raise ValueError(
                f"max_trace_events must be positive, got {self.max_trace_events}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any observer is switched on."""
        return self.trace or self.metrics_interval > 0 or self.profile
