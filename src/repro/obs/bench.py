"""The regression sentinel's measurement harness.

One fixed reference benchmark -- the CM composed model at scale 1.0 on
the 4-CU system under CacheRW, the same recipe ``benchmarks/
test_perf_smoke.py`` has tracked since PR 2 -- measured as a
**median of N** timed repetitions instead of a single sample.  The run is
deterministic, so every repetition executes the identical event stream
and the spread between repetitions is pure machine noise; the median is
robust to one slow outlier in a way best-of-N and mean-of-N are not.

Each measurement appends one JSONL entry to ``BENCH_history.jsonl``
(gitignored; CI uploads it as an artifact), and
:func:`evaluate_measurement` judges a new number against two floors via
:func:`repro.stats.regression.check_regression`:

* the committed reference-container baseline in ``BENCH_core.json``
  (flat ``max_regression`` gate -- the catastrophic floor), and
* this machine's own history (median - k*MAD robust floor), which adapts
  to the hardware actually running the suite instead of assuming the
  reference container.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.config import scaled_config
from repro.core.policies import CACHE_RW
from repro.ioutil import append_jsonl, read_jsonl
from repro.stats.regression import RegressionVerdict, check_regression, median
from repro.workloads.registry import get_workload

__all__ = [
    "BenchMeasurement",
    "append_history",
    "committed_baseline",
    "default_history_path",
    "effective_reference",
    "evaluate_measurement",
    "history_entry",
    "load_history",
    "measure_core_throughput",
    "measure_effective_throughput",
]

#: history entry schema; bump when the entry shape changes incompatibly
HISTORY_SCHEMA = 1

#: the benchmark name stamped into history entries (one history file can
#: hold several benchmarks; loads filter on this)
CORE_BENCHMARK = "core_events_per_second"

#: the fixed reference run (must match benchmarks/test_perf_smoke.py;
#: if it ever changes, re-measure the committed baseline in the same
#: commit and start a fresh history)
REFERENCE_WORKLOAD = "CM"
REFERENCE_SCALE = 1.0
REFERENCE_CUS = 4

#: the *effective*-throughput benchmark: represented (simulated +
#: extrapolated) events per wall-clock second with both acceleration
#: modes on -- phase-sampled fast-forward composed with sharded
#: execution.  The recipe is repetition-heavy on purpose: FwLSTM's
#: per-timestep kernels are where sampling earns its keep.
EFFECTIVE_BENCHMARK = "effective_events_per_second"
EFFECTIVE_WORKLOAD = "FwLSTM"
EFFECTIVE_SCALE = 8.0
EFFECTIVE_STREAMS = 4
EFFECTIVE_CUS = 16
EFFECTIVE_SHARDS = 4

_REPO_ROOT = Path(__file__).resolve().parents[3]


def default_history_path() -> Path:
    """``$REPRO_BENCH_HISTORY`` if set, else ``BENCH_history.jsonl`` next
    to the committed ``BENCH_core.json`` at the repository root."""
    override = os.environ.get("REPRO_BENCH_HISTORY")
    if override:
        return Path(override).expanduser()
    return _REPO_ROOT / "BENCH_history.jsonl"


def committed_baseline(
    path: Optional[Path] = None, section: Optional[str] = None
) -> Optional[float]:
    """The committed reference-container baseline, or ``None`` when the
    record is absent or unparseable (the flat gate then stays off).

    ``section`` selects a nested benchmark record inside
    ``BENCH_core.json`` (e.g. ``"topology"`` or ``"effective"``); the
    default reads the top-level core benchmark.
    """
    target = path if path is not None else _REPO_ROOT / "BENCH_core.json"
    try:
        record = json.loads(Path(target).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if section is not None:
        record = record.get(section)
        if not isinstance(record, dict):
            return None
    baseline = record.get("regression_baseline") or record.get("events_per_sec")
    return float(baseline) if baseline else None


@dataclass(frozen=True)
class BenchMeasurement:
    """One median-of-N throughput measurement of a reference run.

    For the effective benchmark, ``events`` counts *represented* events
    (simulated plus extrapolated) and ``executed_events`` the subset the
    shards actually simulated; for the exact core benchmark the two
    coincide and ``executed_events`` stays ``None``.
    """

    benchmark: str
    events: int
    cycles: int
    #: wall time of each repetition, in sampling order
    seconds: tuple[float, ...]
    #: events actually simulated (None = exact run, equals ``events``)
    executed_events: Optional[int] = None
    #: reference-run metadata stamped into history entries; ``None``
    #: falls back to the core reference block
    reference: Optional[dict] = None

    @property
    def samples(self) -> int:
        return len(self.seconds)

    @property
    def median_seconds(self) -> float:
        return median(self.seconds)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.median_seconds

    @property
    def best_seconds(self) -> float:
        return min(self.seconds)

    @property
    def best_events_per_sec(self) -> float:
        """Throughput of the fastest repetition.

        The reference run is deterministic, so the fastest sample is the
        truest measure of what the *code* can do -- anything slower is
        host interference.  The committed flat gate judges this number
        (machine capability, load-insensitive); the history MAD gate
        judges the median (the typical run, which is what the history
        records).
        """
        return self.events / self.best_seconds

    @property
    def per_sample_events_per_sec(self) -> tuple[float, ...]:
        return tuple(self.events / s for s in self.seconds)


def measure_core_throughput(samples: int = 3, warmup: bool = True) -> BenchMeasurement:
    """Time ``samples`` repetitions of the reference run.

    The event count and cycle count are identical across repetitions
    (asserted -- a mismatch means the model went nondeterministic, which
    this harness must never paper over with a median).
    """
    if samples < 1:
        raise ValueError(f"samples must be positive, got {samples}")
    # imported here, not at module level: the session itself imports this
    # package (for ObsConfig wiring), so a top-level import would cycle
    from repro.session import SimulationSession

    trace = get_workload(REFERENCE_WORKLOAD, scale=REFERENCE_SCALE).build_trace()
    if warmup:
        # one short run so allocator/import effects don't bias the first sample
        small = SimulationSession(policy=CACHE_RW, config=scaled_config(2))
        small.run(get_workload(REFERENCE_WORKLOAD, scale=0.1))
    seconds: list[float] = []
    events = cycles = None
    for _ in range(samples):
        session = SimulationSession(policy=CACHE_RW, config=scaled_config(REFERENCE_CUS))
        start = time.perf_counter()
        run_cycles = session.run(trace).cycles
        seconds.append(time.perf_counter() - start)
        run_events = session.sim.queue.executed
        if events is None:
            events, cycles = run_events, run_cycles
        elif (run_events, run_cycles) != (events, cycles):
            raise AssertionError(
                f"reference run went nondeterministic: {run_events} events/"
                f"{run_cycles} cycles vs {events}/{cycles} on an earlier sample"
            )
    assert events is not None and cycles is not None
    return BenchMeasurement(
        benchmark=CORE_BENCHMARK,
        events=events,
        cycles=cycles,
        seconds=tuple(seconds),
    )


def effective_reference() -> dict[str, object]:
    """The effective benchmark's reference-run metadata block."""
    return {
        "workload": EFFECTIVE_WORKLOAD,
        "scale": EFFECTIVE_SCALE,
        "streams": EFFECTIVE_STREAMS,
        "num_cus": EFFECTIVE_CUS,
        "shards": EFFECTIVE_SHARDS,
        "policy": CACHE_RW.name,
        "sampling": {"warmup_instances": 1, "measure_instances": 1},
    }


def measure_effective_throughput(
    samples: int = 3, warmup: bool = True
) -> BenchMeasurement:
    """Time ``samples`` repetitions of the accelerated reference run.

    The run is ``EFFECTIVE_STREAMS`` partitioned FwLSTM tenants at scale
    ``EFFECTIVE_SCALE`` on the ``EFFECTIVE_CUS``-CU system, split into
    ``EFFECTIVE_SHARDS`` worker processes with aggressive phase sampling
    (one warmup + one measured instance per kernel signature).  The
    *represented* event count -- simulated plus extrapolated -- is the
    throughput numerator; like the core benchmark it must be identical
    across repetitions, or the acceleration stack went nondeterministic.
    """
    if samples < 1:
        raise ValueError(f"samples must be positive, got {samples}")
    from repro.accel.config import SamplingConfig, ShardConfig
    from repro.session import simulate
    from repro.streams.config import StreamConfig

    streams = tuple(
        StreamConfig(workload=EFFECTIVE_WORKLOAD, scale=EFFECTIVE_SCALE, cu_share="partitioned")
        for _ in range(EFFECTIVE_STREAMS)
    )
    sampling = SamplingConfig(warmup_instances=1, measure_instances=1)
    shards = ShardConfig(num_shards=EFFECTIVE_SHARDS, axis="streams")

    def run():
        return simulate(
            policy=CACHE_RW,
            config=scaled_config(EFFECTIVE_CUS),
            streams=streams,
            sampling=sampling,
            shards=shards,
        )

    if warmup:
        # a small sharded run pays the one-time fork/import costs so the
        # first timed sample is not charged for them
        simulate(
            policy=CACHE_RW,
            config=scaled_config(EFFECTIVE_CUS),
            streams=tuple(
                StreamConfig(workload=EFFECTIVE_WORKLOAD, scale=0.5, cu_share="partitioned")
                for _ in range(2)
            ),
            sampling=sampling,
            shards=ShardConfig(num_shards=2, axis="streams"),
        )
    seconds: list[float] = []
    represented = executed = cycles = None
    for _ in range(samples):
        start = time.perf_counter()
        report = run()
        seconds.append(time.perf_counter() - start)
        run_repr = int(report.sampling["represented_events"])
        run_exec = int(report.sampling["executed_events"])
        if represented is None:
            represented, executed, cycles = run_repr, run_exec, report.cycles
        elif (run_repr, run_exec, report.cycles) != (represented, executed, cycles):
            raise AssertionError(
                "the accelerated reference run went nondeterministic: "
                f"{run_repr}/{run_exec} events, {report.cycles} cycles vs "
                f"{represented}/{executed}, {cycles} on an earlier sample"
            )
    assert represented is not None and cycles is not None
    return BenchMeasurement(
        benchmark=EFFECTIVE_BENCHMARK,
        events=represented,
        cycles=cycles,
        seconds=tuple(seconds),
        executed_events=executed,
        reference=effective_reference(),
    )


def history_entry(measurement: BenchMeasurement) -> dict[str, object]:
    """One ``BENCH_history.jsonl`` entry for a finished measurement."""
    entry = {
        "schema": HISTORY_SCHEMA,
        "benchmark": measurement.benchmark,
        "ts": round(time.time(), 3),
        "events": measurement.events,
        "cycles": measurement.cycles,
        "samples": measurement.samples,
        "seconds": [round(s, 4) for s in measurement.seconds],
        "median_seconds": round(measurement.median_seconds, 4),
        "events_per_sec": round(measurement.events_per_sec),
        "reference": (
            dict(measurement.reference)
            if measurement.reference is not None
            else {
                "workload": REFERENCE_WORKLOAD,
                "scale": REFERENCE_SCALE,
                "num_cus": REFERENCE_CUS,
                "policy": CACHE_RW.name,
            }
        ),
        "python": platform.python_version(),
        "host": platform.node(),
    }
    if measurement.executed_events is not None:
        entry["executed_events"] = measurement.executed_events
    return entry


def append_history(
    path: Path, measurement: BenchMeasurement, limit: Optional[int] = None
) -> dict[str, object]:
    """Append a measurement's entry to the history; returns the entry.

    ``limit`` optionally caps the file at the newest N entries afterwards
    (plain rewrite -- the history is a local artifact, not shared state).
    """
    entry = history_entry(measurement)
    append_jsonl(path, entry)
    if limit is not None and limit > 0:
        entries = read_jsonl(path)
        if len(entries) > limit:
            with open(path, "w", encoding="utf-8") as handle:
                for kept in entries[-limit:]:
                    handle.write(
                        json.dumps(kept, sort_keys=True, separators=(",", ":")) + "\n"
                    )
    return entry


def load_history(
    path: Path, benchmark: str = CORE_BENCHMARK, limit: Optional[int] = None
) -> list[float]:
    """The benchmark's historical events/sec values, oldest first.

    Entries whose ``events`` differ from the newest entry's are dropped:
    a model change resized the reference run, and throughput numbers from
    the old event stream are not comparable to the new one.
    """
    entries = [
        entry
        for entry in read_jsonl(path)
        if entry.get("schema") == HISTORY_SCHEMA
        and entry.get("benchmark") == benchmark
        and isinstance(entry.get("events_per_sec"), (int, float))
    ]
    if not entries:
        return []
    current_events = entries[-1].get("events")
    entries = [entry for entry in entries if entry.get("events") == current_events]
    if limit is not None and limit > 0:
        entries = entries[-limit:]
    return [float(entry["events_per_sec"]) for entry in entries]


def evaluate_measurement(
    events_per_sec: float,
    history: Sequence[float] = (),
    baseline: Optional[float] = None,
    max_regression: float = 0.25,
    mad_factor: float = 4.0,
    min_history: int = 5,
) -> RegressionVerdict:
    """Judge a measurement against the committed baseline and the history.

    Thin veneer over :func:`repro.stats.regression.check_regression`; the
    history passed in should normally *exclude* the measurement being
    judged (record first, check against what came before -- the CLI and
    the perf smoke both slice accordingly).
    """
    return check_regression(
        events_per_sec,
        committed_baseline=baseline,
        max_regression=max_regression,
        history=history,
        mad_factor=mad_factor,
        min_history=min_history,
    )
