"""Anomaly detection over a finished run's report and metrics windows.

End-of-run counters say *what* a run cost; the PR-8 metrics windows say
*when*.  The detectors here read both (and nothing else -- they run after
the simulation and never touch simulator state) and turn three
operationally meaningful patterns into structured
:class:`Alert` records on :attr:`repro.stats.report.RunReport.alerts`:

* **hit_rate_cliff** -- the L2 hit rate dropped sharply between two
  adjacent windows with real traffic: a working set blew out, a policy
  swap misfired, or a tenant's streaming phase started trashing the cache
  (the CIAO-style signal that throughput-oriented cache management cares
  about).
* **stream_starvation** -- under *shared* CU dispatch, one live tenant's
  share of window traffic collapsed below a fraction of its fair share
  while other tenants kept issuing: the interference pathology the
  serving study measures, surfaced per window instead of post-hoc.
* **availability_breach** -- a fault-injected run spent more of its
  lifetime degraded than the availability budget allows.

Alert emission is touched-gated exactly like counters: a healthy run
produces an empty list, ``RunReport.to_dict`` omits the ``alerts`` key
when empty, and an alerts-enabled run reports counter-for-counter the
same results as a plain one (pinned by the equivalence suites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.telemetry.metrics import derive_window

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stats.report import RunReport

__all__ = ["Alert", "AlertConfig", "detect_anomalies"]


@dataclass(frozen=True)
class AlertConfig:
    """Thresholds for the anomaly detectors (defaults are deliberately
    conservative: alerts should mark pathologies, not noise)."""

    #: absolute L2 hit-rate drop between adjacent windows that fires the cliff
    hit_rate_cliff: float = 0.25
    #: both windows need at least this many L2 accesses to be judged
    min_window_accesses: int = 64
    #: a stream starves when its window traffic share falls below
    #: ``starvation_share`` of its fair share (1/num_streams)
    starvation_share: float = 0.25
    #: total stream traffic a window needs before starvation is judged
    min_window_traffic: int = 64
    #: fault-injected runs must keep availability at or above this budget
    availability_budget: float = 0.95
    #: metrics sampling interval implied when alerts are requested but no
    #: explicit --metrics-interval was given (windows feed the detectors)
    default_metrics_interval: int = 5000

    def __post_init__(self) -> None:
        if not 0.0 < self.hit_rate_cliff <= 1.0:
            raise ValueError(f"hit_rate_cliff must be in (0, 1], got {self.hit_rate_cliff}")
        if not 0.0 < self.starvation_share < 1.0:
            raise ValueError(
                f"starvation_share must be in (0, 1), got {self.starvation_share}"
            )
        if not 0.0 <= self.availability_budget <= 1.0:
            raise ValueError(
                f"availability_budget must be in [0, 1], got {self.availability_budget}"
            )
        if self.min_window_accesses < 1:
            raise ValueError(
                f"min_window_accesses must be positive, got {self.min_window_accesses}"
            )
        if self.min_window_traffic < 1:
            raise ValueError(
                f"min_window_traffic must be positive, got {self.min_window_traffic}"
            )
        if self.default_metrics_interval < 1:
            raise ValueError(
                "default_metrics_interval must be positive, got "
                f"{self.default_metrics_interval}"
            )


@dataclass(frozen=True)
class Alert:
    """One detected anomaly, ready for reports, summaries and traces."""

    #: ``hit_rate_cliff`` / ``stream_starvation`` / ``availability_breach``
    kind: str
    #: ``warning`` or ``critical``
    severity: str
    #: human-readable one-liner (rendered by the CLI summaries)
    message: str
    #: cycle the anomaly is anchored to (window end, or run end)
    cycle: int
    #: observed value of the violated signal
    value: float
    #: the threshold it violated
    threshold: float
    #: stream index for per-tenant alerts (None otherwise)
    stream: Optional[int] = None

    def as_dict(self) -> dict[str, object]:
        blob: dict[str, object] = {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "cycle": self.cycle,
            "value": self.value,
            "threshold": self.threshold,
        }
        if self.stream is not None:
            blob["stream"] = self.stream
        return blob


def _hit_rate_cliffs(windows: list[dict], config: AlertConfig) -> list[Alert]:
    alerts: list[Alert] = []
    previous: Optional[dict] = None
    for window in windows:
        derived = derive_window(window)
        counters = window.get("counters", {})
        accesses = counters.get("l2.accesses", 0)
        if previous is not None and (
            accesses >= config.min_window_accesses
            and previous["accesses"] >= config.min_window_accesses
        ):
            drop = previous["l2_hit_rate"] - derived["l2_hit_rate"]
            if drop >= config.hit_rate_cliff:
                alerts.append(
                    Alert(
                        kind="hit_rate_cliff",
                        severity="warning",
                        message=(
                            f"L2 hit rate fell {drop:.2f} "
                            f"({previous['l2_hit_rate']:.2f} -> "
                            f"{derived['l2_hit_rate']:.2f}) in window "
                            f"[{window.get('start')}, {window.get('end')})"
                        ),
                        cycle=int(window.get("end", 0)),  # type: ignore[arg-type]
                        value=float(derived["l2_hit_rate"]),  # type: ignore[arg-type]
                        threshold=config.hit_rate_cliff,
                    )
                )
        previous = {"l2_hit_rate": derived["l2_hit_rate"], "accesses": accesses}
    return alerts


def _starvation(windows: list[dict], config: AlertConfig) -> list[Alert]:
    """Per-tenant traffic-collapse detection, robust to tenant lifetimes.

    A stream with zero traffic in a window is not starving if it simply
    has not launched yet or already finished -- so each stream is only
    judged in windows strictly inside its own active span (first to last
    window where it issued traffic).  Within that span, a share below
    ``starvation_share`` of fair share while the window carries real
    total traffic is starvation by definition: the tenant was live,
    others were served, it was not.
    """
    traffic_per_window: list[dict[int, int]] = []
    active: dict[int, list[int]] = {}  # stream -> [first, last] window index
    for index, window in enumerate(windows):
        traffic = derive_window(window)["stream_traffic"]
        assert isinstance(traffic, dict)
        traffic_per_window.append(traffic)
        for stream in traffic:
            span = active.setdefault(stream, [index, index])
            span[1] = index
    if len(active) < 2:
        return []  # starvation needs at least two tenants with traffic
    alerts: list[Alert] = []
    fair_share = 1.0 / len(active)
    threshold = config.starvation_share * fair_share
    for index, window in enumerate(windows):
        traffic = traffic_per_window[index]
        total = sum(traffic.values())
        if total < config.min_window_traffic:
            continue
        for stream, (first, last) in sorted(active.items()):
            if not first < index < last:
                continue  # outside the tenant's active span
            share = traffic.get(stream, 0) / total
            if share < threshold:
                alerts.append(
                    Alert(
                        kind="stream_starvation",
                        severity="warning",
                        message=(
                            f"stream {stream} got {share:.1%} of window traffic "
                            f"(fair share {fair_share:.1%}) in window "
                            f"[{window.get('start')}, {window.get('end')})"
                        ),
                        cycle=int(window.get("end", 0)),  # type: ignore[arg-type]
                        value=share,
                        threshold=threshold,
                        stream=stream,
                    )
                )
    return alerts


def _availability_breach(report: "RunReport", config: AlertConfig) -> list[Alert]:
    if report.faults_injected == 0:
        return []
    availability = report.availability
    if availability >= config.availability_budget:
        return []
    return [
        Alert(
            kind="availability_breach",
            severity="critical",
            message=(
                f"availability {availability:.3f} is below the "
                f"{config.availability_budget:.3f} budget "
                f"({report.degraded_cycles} of {report.cycles} cycles degraded)"
            ),
            cycle=report.cycles,
            value=availability,
            threshold=config.availability_budget,
        )
    ]


def detect_anomalies(
    report: "RunReport",
    config: Optional[AlertConfig] = None,
    shared_dispatch: bool = True,
) -> list[Alert]:
    """All anomalies of one finished run, in detector-then-cycle order.

    Args:
        report: the finished run's report (windows ride on
            ``report.metrics``; window-based detectors are inert without
            them).
        config: detector thresholds (defaults to :class:`AlertConfig`).
        shared_dispatch: whether the run's streams shared CU dispatch.
            Starvation is only meaningful under sharing -- partitioned
            tenants own their CUs and cannot crowd each other out -- so
            the detector is gated on it.
    """
    config = config or AlertConfig()
    windows = [dict(window) for window in report.metrics]
    alerts = _hit_rate_cliffs(windows, config)
    if shared_dispatch:
        alerts.extend(_starvation(windows, config))
    alerts.extend(_availability_breach(report, config))
    return alerts
