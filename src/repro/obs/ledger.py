"""Append-only JSONL provenance registry of simulation runs.

Every observed :class:`~repro.session.SimulationSession` run and every
cell a :class:`~repro.experiments.jobs.SweepExecutor` actually simulates
appends one JSON line to the ledger: the run's fingerprint, digests of
the configuration objects that shaped it, the end-of-run counters, wall
time and events/sec, the telemetry that was attached, and host/python
provenance.  Unlike the result store -- a *cache*, keyed by inputs,
overwritten freely -- the ledger is a *history*: repeated runs of the
same cell each get their own entry, so drift between "the same" run last
week and today is visible (``repro-gpu-cache diff ledger:-1 ledger:-2``),
and the fleet's throughput trajectory accumulates instead of evaporating.

Appends go through :func:`repro.ioutil.append_jsonl` (single ``O_APPEND``
write + fsync), reads through the tolerant :func:`repro.ioutil.read_jsonl`
(a torn tail from a crashed writer costs one entry, never the file).
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.fingerprint import fingerprint
from repro.ioutil import append_jsonl, read_jsonl

__all__ = ["RunLedger", "component_digests", "default_ledger_path", "run_entry"]

#: ledger entry schema; bump when the entry shape changes incompatibly
LEDGER_SCHEMA = 1


def default_ledger_path() -> Path:
    """``$REPRO_LEDGER`` if set, else ``<conventional cache dir>/ledger.jsonl``.

    Sharing the cache directory keeps the provenance of a store's entries
    next to the store itself.
    """
    override = os.environ.get("REPRO_LEDGER")
    if override:
        return Path(override).expanduser()
    # imported here, not at module level: the experiments package imports
    # the session, which imports this package (import cycle guard)
    from repro.experiments.store import default_cache_dir

    return default_cache_dir() / "ledger.jsonl"


def component_digests(**components: object) -> dict[str, Optional[str]]:
    """Stable fingerprints of a run's configuration components.

    ``component_digests(config=cfg, topology=topo, ...)`` maps each name
    to :func:`repro.fingerprint.fingerprint` of the object, or ``None``
    when the component was absent -- so two ledger entries differing in
    any component are distinguishable without storing the objects.
    """
    return {
        name: None if value is None else fingerprint(value, kind=name)
        for name, value in components.items()
    }


def run_entry(
    kind: str,
    fingerprint_hex: Optional[str],
    workload: str,
    policy: str,
    cycles: Optional[int] = None,
    counters: Optional[Mapping[str, int]] = None,
    digests: Optional[Mapping[str, Optional[str]]] = None,
    wall_seconds: Optional[float] = None,
    events: Optional[int] = None,
    telemetry: Optional[Mapping[str, object]] = None,
    alerts: Optional[Sequence[Mapping[str, object]]] = None,
    source: Optional[str] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> dict[str, object]:
    """Assemble one ledger entry (the :meth:`RunLedger.record` payload).

    ``kind`` is ``"run"`` (a session run), ``"job"`` (one executor cell)
    or ``"sweep"`` (executor-level aggregate).  Optional fields are
    simply omitted so entries stay compact and greppable.
    """
    entry: dict[str, object] = {
        "kind": kind,
        "fingerprint": fingerprint_hex,
        "workload": workload,
        "policy": policy,
    }
    if cycles is not None:
        entry["cycles"] = int(cycles)
    if counters is not None:
        entry["counters"] = {str(name): int(value) for name, value in counters.items()}
    if digests:
        entry["digests"] = dict(digests)
    if wall_seconds is not None:
        entry["wall_seconds"] = round(float(wall_seconds), 6)
        if events is not None and wall_seconds > 0:
            entry["events_per_sec"] = round(events / wall_seconds)
    if events is not None:
        entry["events"] = int(events)
    if telemetry:
        entry["telemetry"] = dict(telemetry)
    if alerts:
        entry["alerts"] = [dict(alert) for alert in alerts]
    if source is not None:
        entry["source"] = source
    if extra:
        entry.update(extra)
    return entry


class RunLedger:
    """One append-only JSONL ledger file.

    Args:
        path: ledger file (created on first record); defaults to the
            conventional :func:`default_ledger_path`.
    """

    def __init__(self, path: Optional[str | os.PathLike[str]] = None) -> None:
        self.path = Path(path) if path is not None else default_ledger_path()

    # ------------------------------------------------------------------
    def record(self, entry: Mapping[str, object]) -> dict[str, object]:
        """Stamp provenance onto ``entry`` and append it durably.

        Returns the full entry as written (with schema, timestamp, and
        host/python provenance added).
        """
        stamped: dict[str, object] = {
            "schema": LEDGER_SCHEMA,
            "ts": round(time.time(), 3),
            "python": platform.python_version(),
            "host": platform.node(),
        }
        stamped.update(entry)
        append_jsonl(self.path, stamped)
        return stamped

    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        """Every parseable entry of the current schema, oldest first."""
        return [
            entry
            for entry in read_jsonl(self.path)
            if entry.get("schema") == LEDGER_SCHEMA
        ]

    def tail(self, count: int) -> list[dict]:
        """The newest ``count`` entries, oldest of them first."""
        if count < 1:
            raise ValueError(f"tail count must be positive, got {count}")
        return self.entries()[-count:]

    def __len__(self) -> int:
        return len(self.entries())

    # ------------------------------------------------------------------
    def find(self, ref: str) -> Optional[dict]:
        """Resolve one entry by reference.

        Accepted forms:

        * an integer index into the entry list -- Python semantics, so
          ``-1`` is the newest entry, ``0`` the oldest;
        * a fingerprint hex prefix (at least 4 chars); the *newest*
          matching entry wins, matching how humans quote fingerprints.

        Returns ``None`` when nothing matches.
        """
        entries = self.entries()
        try:
            index = int(ref)
        except ValueError:
            pass
        else:
            try:
                return entries[index]
            except IndexError:
                return None
        if len(ref) < 4:
            return None  # too short to be a meaningful fingerprint prefix
        for entry in reversed(entries):
            fingerprint_hex = entry.get("fingerprint")
            if isinstance(fingerprint_hex, str) and fingerprint_hex.startswith(ref):
                return entry
        return None

    # ------------------------------------------------------------------
    def prune(
        self,
        keep: Optional[int] = None,
        max_age_days: Optional[float] = None,
    ) -> int:
        """Drop old entries; returns how many were removed.

        ``keep`` retains only the newest N entries; ``max_age_days`` drops
        entries whose timestamp is older than the cutoff.  Both may be
        combined (an entry must survive both to stay).  The survivors are
        rewritten through the same temp-file + fsync + rename dance as
        every other artifact, so a crash mid-prune never loses the ledger.
        """
        if keep is None and max_age_days is None:
            raise ValueError("prune needs keep=N and/or max_age_days=D")
        if keep is not None and keep < 0:
            raise ValueError(f"keep must be non-negative, got {keep}")
        if max_age_days is not None and max_age_days < 0:
            raise ValueError(f"max_age_days must be non-negative, got {max_age_days}")
        entries = self.entries()
        survivors = entries
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            survivors = [
                entry
                for entry in survivors
                if isinstance(entry.get("ts"), (int, float)) and entry["ts"] >= cutoff
            ]
        if keep is not None:
            survivors = survivors[len(survivors) - keep :] if keep else []
        removed = len(entries) - len(survivors)
        if removed == 0:
            return 0
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent) or ".", prefix=f".{self.path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for entry in survivors:
                    handle.write(
                        json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLedger({str(self.path)!r})"
