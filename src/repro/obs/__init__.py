"""Cross-run observability: run ledger, counter diffing, regression
sentinel support, and anomaly alerts.

The telemetry package (PR 8) answers "what happened *inside* this run";
this package answers the fleet-level questions that need more than one
run: *which* runs happened (``ledger``), what changed between two of them
(``diff``), whether the simulator got slower (``bench``), and whether a
run crossed an operational red line (``alerts``).

Everything here is an **observer**: attaching a ledger or the anomaly
detectors never changes simulated results, and a run with observability
disabled executes the exact historical code path (pinned by the
equivalence suites).
"""

from repro.obs.alerts import Alert, AlertConfig, detect_anomalies
from repro.obs.bench import (
    CORE_BENCHMARK,
    EFFECTIVE_BENCHMARK,
    BenchMeasurement,
    append_history,
    committed_baseline,
    default_history_path,
    evaluate_measurement,
    load_history,
    measure_core_throughput,
    measure_effective_throughput,
)
from repro.obs.config import ObsConfig
from repro.obs.diff import (
    diff_reports,
    render_diff_markdown,
    render_diff_table,
    resolve_report,
)
from repro.obs.ledger import (
    RunLedger,
    component_digests,
    default_ledger_path,
    run_entry,
)

__all__ = [
    "Alert",
    "AlertConfig",
    "BenchMeasurement",
    "CORE_BENCHMARK",
    "EFFECTIVE_BENCHMARK",
    "ObsConfig",
    "RunLedger",
    "append_history",
    "committed_baseline",
    "component_digests",
    "default_history_path",
    "default_ledger_path",
    "detect_anomalies",
    "diff_reports",
    "evaluate_measurement",
    "load_history",
    "measure_core_throughput",
    "measure_effective_throughput",
    "render_diff_markdown",
    "render_diff_table",
    "resolve_report",
    "run_entry",
]
