"""Configuration for the cross-run observability layer.

Mirrors :class:`repro.telemetry.TelemetryConfig`: a small frozen
dataclass the session takes as an optional ``obs=`` argument.  ``None``
(the default) is the exact historical code path -- no ledger append, no
detectors, no extra attribute reads.  Like telemetry, the configuration
is deliberately **not** part of job fingerprints: observers never change
results, so an observed run must share its store entry with a plain one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.alerts import AlertConfig

__all__ = ["ObsConfig"]


@dataclass(frozen=True)
class ObsConfig:
    """What the fleet-level observers should do for one run.

    Attributes:
        ledger_path: append the run's provenance entry to this JSONL
            ledger (``None`` disables recording).
        alerts: run the anomaly detectors with these thresholds and attach
            the findings to ``report.alerts`` (``None`` disables them).
    """

    ledger_path: Optional[str] = None
    alerts: Optional[AlertConfig] = None

    @property
    def enabled(self) -> bool:
        return self.ledger_path is not None or self.alerts is not None
