"""Counter-for-counter comparison of two run reports.

"What changed between these two runs?" used to mean eyeballing JSON
blobs.  :func:`diff_reports` answers it structurally: every counter of
either report is compared, deltas get relative-change annotations, and
the derived signals the figures plot (hit rates, remote fraction,
availability, stalls per request) are diffed alongside so a counter
regression is immediately connected to the metric it moves.

The self-test property the acceptance criteria pin: the simulator is
deterministic, so two runs with the same fingerprint must diff to **zero
drift** -- ``identical`` is true and the drift row list is empty.  Any
other outcome means nondeterminism leaked into the model, which is
exactly what the CI smoke step exists to catch.

:func:`resolve_report` turns the CLI's ``A``/``B`` references -- report
file paths (store blobs or ``RunReport.to_dict`` JSON), store fingerprint
prefixes, or ledger references (entry indexes like ``-1``, fingerprint
prefixes) -- into reports.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Optional

from repro.obs.ledger import RunLedger
from repro.stats.report import RunReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> jobs -> session -> obs)
    from repro.experiments.store import ResultStore

__all__ = [
    "diff_reports",
    "render_diff_markdown",
    "render_diff_table",
    "resolve_report",
]

#: diff payload schema; bump when the structure changes incompatibly
DIFF_SCHEMA = 1

#: the derived signals diffed alongside raw counters
_DERIVED = (
    "l1_hit_rate",
    "l2_hit_rate",
    "dram_row_hit_rate",
    "remote_fraction",
    "cache_stalls_per_request",
    "availability",
)


def _entry_report(entry: Mapping[str, object], ref: str) -> RunReport:
    """Rebuild a comparable report from one ledger entry."""
    counters = entry.get("counters")
    if not isinstance(counters, Mapping):
        raise ValueError(
            f"ledger entry {ref!r} carries no counters (kind="
            f"{entry.get('kind')!r}); only run/job entries are diffable"
        )
    return RunReport(
        workload=str(entry.get("workload", "?")),
        policy=str(entry.get("policy", "?")),
        cycles=int(entry.get("cycles", 0)),  # type: ignore[arg-type]
        counters={str(name): int(value) for name, value in counters.items()},
    )


def resolve_report(
    ref: str,
    store: "Optional[ResultStore]" = None,
    ledger: Optional[RunLedger] = None,
) -> tuple[RunReport, str]:
    """Resolve one diff operand to ``(report, label)``.

    Resolution order:

    1. an existing file: a result-store blob (``{"report": ...}``) or a
       bare ``RunReport.to_dict`` JSON object;
    2. a ledger reference: an integer entry index (``-1`` = newest) or,
       after store lookup fails, a fingerprint prefix;
    3. a store fingerprint (full key or unique prefix).

    Raises ``ValueError`` with guidance when nothing matches.
    """
    path = Path(ref)
    if path.is_file():
        blob = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(blob, Mapping):
            raise ValueError(f"report file {ref} is not a JSON object")
        if isinstance(blob.get("report"), Mapping):
            return RunReport.from_dict(blob["report"]), str(path)
        if "counters" in blob and "workload" in blob:
            return RunReport.from_dict(blob), str(path)
        raise ValueError(
            f"report file {ref} is neither a result-store blob nor a "
            "RunReport.to_dict JSON object (note: 'run --json' output is "
            "derived metrics only; diff needs raw counters)"
        )
    # ledger index reference ("-1", "0", ...)
    is_index = True
    try:
        int(ref)
    except ValueError:
        is_index = False
    if is_index:
        if ledger is None:
            raise ValueError(f"reference {ref!r} looks like a ledger index but no ledger is available")
        entry = ledger.find(ref)
        if entry is None:
            raise ValueError(f"ledger {ledger.path} has no entry {ref}")
        return _entry_report(entry, ref), f"ledger:{ref}"
    # store fingerprint (prefix)
    if store is not None and all(ch in "0123456789abcdef" for ch in ref.lower()):
        matches = [key for key in store.keys() if key.startswith(ref)]
        if len(matches) > 1:
            raise ValueError(
                f"fingerprint prefix {ref!r} is ambiguous in {store.root} "
                f"({len(matches)} matches); use more characters"
            )
        if matches:
            report = store.load(matches[0])
            if report is not None:
                return report, f"store:{matches[0][:12]}"
    if ledger is not None:
        entry = ledger.find(ref)
        if entry is not None:
            fingerprint_hex = entry.get("fingerprint")
            label = (
                f"ledger:{fingerprint_hex[:12]}"
                if isinstance(fingerprint_hex, str)
                else "ledger:?"
            )
            return _entry_report(entry, ref), label
    raise ValueError(
        f"cannot resolve {ref!r}: not a report file, store fingerprint or "
        "ledger reference (pass --cache-dir / --ledger to point at them)"
    )


def _rel(delta: int, base: int) -> Optional[float]:
    """Relative change vs the A side; None when A had no such counter."""
    return delta / base if base else None


def diff_reports(
    a: RunReport,
    b: RunReport,
    threshold: float = 0.0,
    a_label: str = "A",
    b_label: str = "B",
) -> dict[str, object]:
    """Structured counter + derived-signal diff of two reports.

    Args:
        a / b: the reports to compare (A is the baseline deltas are
            relative to).
        threshold: minimum absolute relative change for a counter to make
            the drift row list (0 lists every changed counter).  Counters
            present on only one side always make the list.
        a_label / b_label: provenance labels for rendering.

    ``identical`` is strict: equal cycle counts and equal counter maps --
    the property two same-fingerprint runs must satisfy.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    names = sorted(set(a.counters) | set(b.counters))
    rows: list[dict[str, object]] = []
    changed = 0
    max_rel = 0.0
    for name in names:
        value_a = a.counters.get(name, 0)
        value_b = b.counters.get(name, 0)
        delta = value_b - value_a
        if delta == 0:
            continue
        changed += 1
        rel = _rel(delta, value_a)
        if rel is not None:
            max_rel = max(max_rel, abs(rel))
        only = name not in a.counters or name not in b.counters
        if only or rel is None or abs(rel) >= threshold:
            rows.append(
                {
                    "counter": name,
                    "a": value_a,
                    "b": value_b,
                    "delta": delta,
                    "rel": rel,
                }
            )
    derived: dict[str, dict[str, float]] = {}
    for signal in _DERIVED:
        value_a = float(getattr(a, signal))
        value_b = float(getattr(b, signal))
        derived[signal] = {
            "a": value_a,
            "b": value_b,
            "delta": value_b - value_a,
        }
    identical = a.cycles == b.cycles and a.counters == b.counters
    return {
        "schema": DIFF_SCHEMA,
        "a": {
            "label": a_label,
            "workload": a.workload,
            "policy": a.policy,
            "cycles": a.cycles,
        },
        "b": {
            "label": b_label,
            "workload": b.workload,
            "policy": b.policy,
            "cycles": b.cycles,
        },
        "threshold": threshold,
        "identical": identical,
        "cycles": {
            "a": a.cycles,
            "b": b.cycles,
            "delta": b.cycles - a.cycles,
            "rel": _rel(b.cycles - a.cycles, a.cycles),
        },
        "counters": {
            "total": len(names),
            "changed": changed,
            "listed": len(rows),
            "max_rel_change": max_rel,
            "rows": rows,
        },
        "derived": derived,
    }


def _fmt_rel(rel: Optional[float]) -> str:
    return "new" if rel is None else f"{rel:+.2%}"


def render_diff_table(diff: Mapping[str, object]) -> str:
    """Human-readable text rendering of a :func:`diff_reports` payload."""
    a, b = diff["a"], diff["b"]
    assert isinstance(a, Mapping) and isinstance(b, Mapping)
    cycles = diff["cycles"]
    counters = diff["counters"]
    derived = diff["derived"]
    assert isinstance(cycles, Mapping) and isinstance(counters, Mapping)
    assert isinstance(derived, Mapping)
    lines = [
        f"Diff: {a['label']} ({a['workload']}/{a['policy']}) vs "
        f"{b['label']} ({b['workload']}/{b['policy']})",
        f"  identical: {'yes' if diff['identical'] else 'NO'}",
        f"  cycles: {cycles['a']} -> {cycles['b']} "
        f"({cycles['delta']:+d}, {_fmt_rel(cycles['rel'])})",
        f"  counters: {counters['changed']} of {counters['total']} changed "
        f"(max relative change {counters['max_rel_change']:.2%}, "
        f"threshold {diff['threshold']:.2%})",
    ]
    rows = counters["rows"]
    assert isinstance(rows, list)
    if rows:
        width = max(len(str(row["counter"])) for row in rows)
        for row in rows:
            lines.append(
                f"    {str(row['counter']):{width}s}  "
                f"{row['a']:>12} -> {row['b']:>12}  "
                f"{row['delta']:+d} ({_fmt_rel(row['rel'])})"
            )
    lines.append("  derived signals:")
    for name, values in derived.items():
        assert isinstance(values, Mapping)
        lines.append(
            f"    {name:24s}  {values['a']:.4f} -> {values['b']:.4f}  "
            f"({values['delta']:+.4f})"
        )
    return "\n".join(lines)


def render_diff_markdown(diff: Mapping[str, object]) -> str:
    """GitHub-flavoured markdown rendering (for PR comments and reports)."""
    a, b = diff["a"], diff["b"]
    assert isinstance(a, Mapping) and isinstance(b, Mapping)
    cycles = diff["cycles"]
    counters = diff["counters"]
    derived = diff["derived"]
    assert isinstance(cycles, Mapping) and isinstance(counters, Mapping)
    assert isinstance(derived, Mapping)
    lines = [
        f"## Run diff: `{a['label']}` vs `{b['label']}`",
        "",
        f"- A: **{a['workload']}** / {a['policy']} ({a['cycles']} cycles)",
        f"- B: **{b['workload']}** / {b['policy']} ({b['cycles']} cycles)",
        f"- identical: **{'yes' if diff['identical'] else 'no'}**",
        f"- counters changed: {counters['changed']} of {counters['total']} "
        f"(threshold {diff['threshold']:.2%})",
        "",
    ]
    rows = counters["rows"]
    assert isinstance(rows, list)
    if rows:
        lines += [
            "| counter | A | B | delta | rel |",
            "|---|---:|---:|---:|---:|",
        ]
        for row in rows:
            lines.append(
                f"| `{row['counter']}` | {row['a']} | {row['b']} | "
                f"{row['delta']:+d} | {_fmt_rel(row['rel'])} |"
            )
        lines.append("")
    lines += [
        "| derived signal | A | B | delta |",
        "|---|---:|---:|---:|",
    ]
    for name, values in derived.items():
        assert isinstance(values, Mapping)
        lines.append(
            f"| {name} | {values['a']:.4f} | {values['b']:.4f} | "
            f"{values['delta']:+.4f} |"
        )
    return "\n".join(lines)
