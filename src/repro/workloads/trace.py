"""Kernel trace representation.

Workload generators produce :class:`WorkloadTrace` objects: an ordered list
of kernels, each kernel an ordered list of per-wavefront instruction
streams.  Two instruction kinds exist:

* :class:`ComputeInstr` -- a batch of wavefront-wide vector operations; it
  occupies the CU's SIMD resources and contributes to the GVOPS metric.
* :class:`MemInstr` -- one memory instruction, already coalesced into the
  cache-line addresses it touches (the per-wavefront coalescer runs at
  trace-generation time, see :mod:`repro.gpu.coalescer`).

Traces are deliberately plain data so they can be generated, inspected,
serialized and property-tested independently of the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.memory.request import AccessType

__all__ = [
    "ComputeInstr",
    "MemInstr",
    "Instruction",
    "WavefrontProgram",
    "KernelTrace",
    "WorkloadTrace",
]


@dataclass(frozen=True)
class ComputeInstr:
    """A batch of wavefront-wide vector operations.

    Attributes:
        vector_ops: number of wavefront-wide operations (each operates on
            ``wavefront_size`` lanes).
    """

    vector_ops: int

    def __post_init__(self) -> None:
        if self.vector_ops <= 0:
            raise ValueError("vector_ops must be positive")


@dataclass(frozen=True)
class MemInstr:
    """One coalesced memory instruction.

    Attributes:
        access: load or store.
        line_addresses: the distinct cache-line addresses the wavefront's
            lanes touch (1 for a fully coalesced unit-stride access of a
            64 B line, up to ``wavefront_size`` for fully divergent access).
        pc: program counter of the static instruction; drives the PC-based
            reuse predictor.
    """

    access: AccessType
    line_addresses: tuple[int, ...]
    pc: int

    def __post_init__(self) -> None:
        if not self.line_addresses:
            raise ValueError("a memory instruction must touch at least one line")
        if self.pc < 0:
            raise ValueError("pc must be non-negative")

    @property
    def is_load(self) -> bool:
        return self.access is AccessType.LOAD

    @property
    def is_store(self) -> bool:
        return self.access is AccessType.STORE


Instruction = Union[ComputeInstr, MemInstr]


@dataclass
class WavefrontProgram:
    """The instruction stream of one wavefront.

    ``device`` is the device-affinity tag set by the topology workload
    partitioner (:mod:`repro.topology.partition`): a tagged wavefront is
    dispatched only to compute units of that device.  ``None`` -- every
    trace outside a multi-device run -- means no affinity and the plain
    global round-robin dispatch.
    """

    instructions: list[Instruction] = field(default_factory=list)
    workgroup_id: int = 0
    device: Optional[int] = None

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        self.instructions.extend(instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def memory_instructions(self) -> list[MemInstr]:
        return [i for i in self.instructions if isinstance(i, MemInstr)]

    @property
    def line_requests(self) -> int:
        """Total line-level requests this wavefront will issue."""
        return sum(len(i.line_addresses) for i in self.memory_instructions)

    @property
    def vector_ops(self) -> int:
        return sum(i.vector_ops for i in self.instructions if isinstance(i, ComputeInstr))


@dataclass
class KernelTrace:
    """One GPU kernel: a name plus one program per wavefront."""

    name: str
    wavefronts: list[WavefrontProgram] = field(default_factory=list)

    def add_wavefront(self, program: WavefrontProgram) -> None:
        self.wavefronts.append(program)

    @property
    def num_wavefronts(self) -> int:
        return len(self.wavefronts)

    @property
    def line_requests(self) -> int:
        return sum(w.line_requests for w in self.wavefronts)

    @property
    def vector_ops(self) -> int:
        return sum(w.vector_ops for w in self.wavefronts)

    @property
    def load_lines(self) -> int:
        return sum(
            len(i.line_addresses)
            for w in self.wavefronts
            for i in w.memory_instructions
            if i.is_load
        )

    @property
    def store_lines(self) -> int:
        return sum(
            len(i.line_addresses)
            for w in self.wavefronts
            for i in w.memory_instructions
            if i.is_store
        )

    def touched_lines(self) -> set[int]:
        """Distinct line addresses touched by the kernel."""
        lines: set[int] = set()
        for wavefront in self.wavefronts:
            for instr in wavefront.memory_instructions:
                lines.update(instr.line_addresses)
        return lines


@dataclass
class WorkloadTrace:
    """A full workload: an ordered sequence of kernels."""

    name: str
    kernels: list[KernelTrace] = field(default_factory=list)

    def add_kernel(self, kernel: KernelTrace) -> None:
        self.kernels.append(kernel)

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def unique_kernel_names(self) -> list[str]:
        seen: list[str] = []
        for kernel in self.kernels:
            if kernel.name not in seen:
                seen.append(kernel.name)
        return seen

    @property
    def line_requests(self) -> int:
        return sum(k.line_requests for k in self.kernels)

    @property
    def vector_ops(self) -> int:
        return sum(k.vector_ops for k in self.kernels)

    def footprint_bytes(self, line_bytes: int = 64) -> int:
        """Distinct bytes touched across the whole workload."""
        lines: set[int] = set()
        for kernel in self.kernels:
            lines.update(kernel.touched_lines())
        return len(lines) * line_bytes

    def summary(self) -> dict[str, object]:
        """Compact description used by Table 2 style reports."""
        return {
            "name": self.name,
            "kernels": self.num_kernels,
            "unique_kernels": len(self.unique_kernel_names),
            "wavefronts": sum(k.num_wavefronts for k in self.kernels),
            "line_requests": self.line_requests,
            "vector_ops": self.vector_ops,
            "footprint_bytes": self.footprint_bytes(),
        }
