"""Multi-head attention kernels (transformer-era, beyond the paper).

Scaled-dot-product attention for one head decomposes into three memory
phases with very different cache behaviour, which is what makes it an
interesting subject for the adaptive policy study:

* **Score GEMM** ``S = Q x K^T`` -- every query tile re-reads the head's
  entire K matrix: inter-workgroup reuse that only the shared L2 captures
  (the same structure as the fully connected layer's weight matrix).
* **Softmax over S** -- three short-reuse-distance passes per row block
  (max, sum of exponentials, normalize), the FwSoft pattern.
* **Context GEMM** ``O = P x V`` -- the attention probabilities stream
  through once while V is re-read by every query tile.

The per-head kernels are built on the existing tiled
:func:`~repro.workloads.layers.gemm.gemm_kernel` and
:func:`~repro.workloads.layers.softmax.softmax_forward_kernel` builders, so
attention inherits their LDS-staging and coalescing behaviour; this module
only adds the head/projection plumbing.
"""

from __future__ import annotations

from repro.workloads.layers.gemm import gemm_kernel
from repro.workloads.layers.softmax import softmax_forward_kernel
from repro.workloads.tensor import Tensor
from repro.workloads.trace import KernelTrace

__all__ = [
    "attention_score_kernel",
    "attention_softmax_kernel",
    "attention_context_kernel",
    "attention_projection_kernel",
]


def _check_head(seq: int, head_dim: int) -> None:
    if seq <= 0 or head_dim <= 0:
        raise ValueError("seq and head_dim must be positive")


def attention_score_kernel(
    name: str,
    q: Tensor,
    k: Tensor,
    scores: Tensor,
    head: int,
    seq: int,
    head_dim: int,
    wavefront_size: int = 64,
    pc_base: int = 0xB000,
) -> KernelTrace:
    """``S_h = Q_h x K_h^T`` for one head (an ``seq x seq`` GEMM over ``head_dim``).

    ``q`` and ``k`` hold all heads contiguously (head-major); ``scores``
    holds one ``seq x seq`` matrix per head.  ``k`` doubles as the GEMM's
    transposed-B operand: row *j* of ``K_h`` is the ``head_dim`` contiguous
    elements of key *j*, exactly the ``b_t`` layout ``gemm_kernel`` wants.
    """
    _check_head(seq, head_dim)
    head_elems = seq * head_dim
    return gemm_kernel(
        name,
        a=q.view(head * head_elems, head_elems),
        b_t=k.view(head * head_elems, head_elems),
        c=scores.view(head * seq * seq, seq * seq),
        m=seq,
        n=seq,
        k=head_dim,
        tile_m=32,
        tile_n=32,
        wavefront_size=wavefront_size,
        pc_base=pc_base + head * 0x100,
    )


def attention_softmax_kernel(
    name: str,
    scores: Tensor,
    probs: Tensor,
    num_heads: int,
    seq: int,
    wavefront_size: int = 64,
    pc_base: int = 0xC000,
) -> KernelTrace:
    """Row softmax over every head's score matrix (one fused kernel).

    Rows are independent, so real libraries launch a single kernel over
    all ``num_heads x seq`` rows; each row block shows the classic
    three-pass softmax reuse.
    """
    if num_heads <= 0 or seq <= 0:
        raise ValueError("num_heads and seq must be positive")
    return softmax_forward_kernel(
        name,
        x=scores,
        y=probs,
        num_elements=num_heads * seq * seq,
        elements_per_wavefront=seq,
        wavefront_size=wavefront_size,
        ops_per_chunk=3,
        pc_base=pc_base,
    )


def attention_context_kernel(
    name: str,
    probs: Tensor,
    v_t: Tensor,
    context: Tensor,
    head: int,
    seq: int,
    head_dim: int,
    wavefront_size: int = 64,
    pc_base: int = 0xD000,
) -> KernelTrace:
    """``O_h = P_h x V_h`` for one head (``seq x head_dim`` GEMM over ``seq``).

    ``v_t`` stores each head's V transposed (``head_dim x seq``) so a tile
    column is contiguous, matching the ``b_t`` operand layout.
    """
    _check_head(seq, head_dim)
    return gemm_kernel(
        name,
        a=probs.view(head * seq * seq, seq * seq),
        b_t=v_t.view(head * seq * head_dim, head_dim * seq),
        c=context.view(head * seq * head_dim, seq * head_dim),
        m=seq,
        n=head_dim,
        k=seq,
        tile_m=32,
        tile_n=32,
        wavefront_size=wavefront_size,
        pc_base=pc_base + head * 0x100,
    )


def attention_projection_kernel(
    name: str,
    context: Tensor,
    w_out_t: Tensor,
    output: Tensor,
    seq: int,
    model_dim: int,
    wavefront_size: int = 64,
    pc_base: int = 0xE000,
) -> KernelTrace:
    """Output projection ``Y = C x W_o`` (``seq x model_dim`` over ``model_dim``).

    The projection weight matrix is read in full by every sequence tile --
    the FwFc reuse pattern that makes read caching pay.
    """
    if seq <= 0 or model_dim <= 0:
        raise ValueError("seq and model_dim must be positive")
    return gemm_kernel(
        name,
        a=context,
        b_t=w_out_t,
        c=output,
        m=seq,
        n=model_dim,
        k=model_dim,
        tile_m=32,
        tile_n=32,
        wavefront_size=wavefront_size,
        pc_base=pc_base,
    )
