"""Shared utilities for layer trace builders.

The two central helpers are:

* :class:`PcAllocator` -- gives every static memory-access *site* in a
  generated kernel a stable program counter, so the PC-based reuse predictor
  sees the same PC for every dynamic instance of that site (just as it would
  for a real compiled kernel).
* :class:`ProgramBuilder` -- a small fluent API for emitting the coalesced
  memory instructions and compute batches of one wavefront.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.gpu.coalescer import coalesce_addresses
from repro.memory.request import AccessType
from repro.workloads.tensor import Tensor
from repro.workloads.trace import ComputeInstr, MemInstr, WavefrontProgram

__all__ = ["PcAllocator", "ProgramBuilder", "chunks"]


def chunks(total: int, size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, count)`` pairs covering ``range(total)`` in blocks."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    start = 0
    while start < total:
        count = min(size, total - start)
        yield start, count
        start += count


@dataclass
class PcAllocator:
    """Stable program-counter assignment for static access sites.

    PCs start at a per-kernel base so different kernels never share PCs
    (the predictor should not transfer training between unrelated kernels),
    and consecutive sites are 8 bytes apart like real instruction encodings.
    """

    base: int = 0x1000
    stride: int = 8
    _sites: dict[str, int] = field(default_factory=dict)

    def pc(self, site: str) -> int:
        """PC of the named site, allocating one on first use."""
        if site not in self._sites:
            self._sites[site] = self.base + len(self._sites) * self.stride
        return self._sites[site]

    def sites(self) -> dict[str, int]:
        """Copy of all allocated sites (for tests)."""
        return dict(self._sites)


class ProgramBuilder:
    """Builds the instruction stream of one wavefront.

    All memory emission methods coalesce the per-lane addresses into line
    requests before appending the :class:`MemInstr`; compute emission batches
    wavefront-wide vector operations.
    """

    def __init__(
        self,
        pcs: PcAllocator,
        wavefront_size: int = 64,
        line_bytes: int = 64,
        workgroup_id: int = 0,
    ) -> None:
        if wavefront_size <= 0 or line_bytes <= 0:
            raise ValueError("wavefront_size and line_bytes must be positive")
        self.pcs = pcs
        self.wavefront_size = wavefront_size
        self.line_bytes = line_bytes
        self.program = WavefrontProgram(workgroup_id=workgroup_id)

    # ------------------------------------------------------------------
    def compute(self, vector_ops: int) -> "ProgramBuilder":
        """Append ``vector_ops`` wavefront-wide vector operations."""
        if vector_ops > 0:
            self.program.append(ComputeInstr(vector_ops=int(vector_ops)))
        return self

    def access(
        self,
        site: str,
        access: AccessType,
        tensor: Tensor,
        start_element: int,
        count: int | None = None,
        stride: int = 1,
    ) -> "ProgramBuilder":
        """Emit one or more memory instructions covering ``count`` lanes.

        Lane *i* touches element ``start_element + i * stride`` of ``tensor``.
        Counts larger than the wavefront size are split into multiple
        instructions (the same static site / PC), which is how a loop over a
        per-thread chunk appears in hardware.
        """
        lanes_total = self.wavefront_size if count is None else count
        if lanes_total <= 0:
            raise ValueError("count must be positive")
        pc = self.pcs.pc(site)
        for offset, lanes in chunks(lanes_total, self.wavefront_size):
            addresses = [
                tensor.address_of(start_element + (offset + lane) * stride)
                for lane in range(lanes)
            ]
            lines = coalesce_addresses(addresses, self.line_bytes)
            self.program.append(MemInstr(access=access, line_addresses=lines, pc=pc))
        return self

    def load(
        self,
        site: str,
        tensor: Tensor,
        start_element: int,
        count: int | None = None,
        stride: int = 1,
    ) -> "ProgramBuilder":
        """Emit a load access (see :meth:`access`)."""
        return self.access(site, AccessType.LOAD, tensor, start_element, count, stride)

    def store(
        self,
        site: str,
        tensor: Tensor,
        start_element: int,
        count: int | None = None,
        stride: int = 1,
    ) -> "ProgramBuilder":
        """Emit a store access (see :meth:`access`)."""
        return self.access(site, AccessType.STORE, tensor, start_element, count, stride)

    def gather(
        self, site: str, tensor: Tensor, element_indices: Sequence[int]
    ) -> "ProgramBuilder":
        """Emit loads of arbitrary (possibly divergent) element indices."""
        if not element_indices:
            raise ValueError("gather needs at least one element index")
        pc = self.pcs.pc(site)
        for offset, lanes in chunks(len(element_indices), self.wavefront_size):
            addresses = [
                tensor.address_of(element_indices[offset + lane]) for lane in range(lanes)
            ]
            lines = coalesce_addresses(addresses, self.line_bytes)
            self.program.append(MemInstr(access=AccessType.LOAD, line_addresses=lines, pc=pc))
        return self

    def scatter(
        self, site: str, tensor: Tensor, element_indices: Sequence[int]
    ) -> "ProgramBuilder":
        """Emit stores to arbitrary (possibly divergent) element indices."""
        if not element_indices:
            raise ValueError("scatter needs at least one element index")
        pc = self.pcs.pc(site)
        for offset, lanes in chunks(len(element_indices), self.wavefront_size):
            addresses = [
                tensor.address_of(element_indices[offset + lane]) for lane in range(lanes)
            ]
            lines = coalesce_addresses(addresses, self.line_bytes)
            self.program.append(MemInstr(access=AccessType.STORE, line_addresses=lines, pc=pc))
        return self

    # ------------------------------------------------------------------
    def build(self) -> WavefrontProgram:
        """Finish and return the wavefront program."""
        if not self.program.instructions:
            raise ValueError("refusing to build an empty wavefront program")
        return self.program
