"""Elementwise (activation-style) layer kernels.

Activation layers (ReLU and friends) apply a cheap function independently
to every element: they stream their inputs exactly once, write every output
exactly once, and therefore have *no* reuse for caches to exploit, a very
high memory-request rate, and very low compute intensity.  The paper's
throughput-sensitive workloads (FwAct, BwAct, FwLRN) are built from this
pattern.
"""

from __future__ import annotations

from typing import Sequence

from repro.workloads.layers.common import PcAllocator, ProgramBuilder, chunks
from repro.workloads.tensor import Tensor
from repro.workloads.trace import KernelTrace

__all__ = ["elementwise_kernel"]


def elementwise_kernel(
    name: str,
    inputs: Sequence[Tensor],
    outputs: Sequence[Tensor],
    num_elements: int,
    elements_per_wavefront: int,
    wavefront_size: int = 64,
    ops_per_chunk: int = 2,
    pc_base: int = 0x1000,
) -> KernelTrace:
    """Build a streaming elementwise kernel.

    Every wavefront owns a contiguous block of ``elements_per_wavefront``
    elements.  For each wavefront-sized chunk of its block it loads the
    chunk from every input tensor, performs ``ops_per_chunk`` vector
    operations, and stores the chunk to every output tensor.

    Args:
        name: kernel name.
        inputs: tensors read once per element (e.g. ``x`` for forward
            activation; ``x`` and ``dy`` for backward activation).
        outputs: tensors written once per element.
        num_elements: total elements processed by the kernel.
        elements_per_wavefront: contiguous elements assigned to one wavefront.
        wavefront_size: lanes per wavefront.
        ops_per_chunk: wavefront-wide vector operations per chunk (activation
            functions are one or two operations).
        pc_base: base program counter for this kernel's access sites.
    """
    if num_elements <= 0 or elements_per_wavefront <= 0:
        raise ValueError("num_elements and elements_per_wavefront must be positive")
    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    for workgroup, (start, count) in enumerate(chunks(num_elements, elements_per_wavefront)):
        builder = ProgramBuilder(pcs, wavefront_size=wavefront_size, workgroup_id=workgroup)
        for offset, lanes in chunks(count, wavefront_size):
            element = start + offset
            for index, tensor in enumerate(inputs):
                builder.load(f"load_in{index}", tensor, element, lanes)
            if ops_per_chunk > 0:
                builder.compute(ops_per_chunk)
            for index, tensor in enumerate(outputs):
                builder.store(f"store_out{index}", tensor, element, lanes)
        kernel.add_wavefront(builder.build())
    return kernel
