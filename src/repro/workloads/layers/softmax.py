"""Softmax output-layer kernels.

Softmax normalizes each sample's class vector so it sums to one.  The
numerically stable implementation makes three passes over the data inside a
single kernel (max, sum of exponentials, normalize), so every element is
read three times with a very short reuse distance and a tiny total
footprint -- the pattern behind the FwSoft/BwSoft workloads, whose DRAM
demand collapses once caching is enabled while execution time changes only
modestly (the kernels are small and latency-bound).
"""

from __future__ import annotations

from repro.workloads.layers.common import PcAllocator, ProgramBuilder, chunks
from repro.workloads.tensor import Tensor
from repro.workloads.trace import KernelTrace

__all__ = ["softmax_forward_kernel", "softmax_backward_kernel"]


def softmax_forward_kernel(
    name: str,
    x: Tensor,
    y: Tensor,
    num_elements: int,
    elements_per_wavefront: int,
    wavefront_size: int = 64,
    ops_per_chunk: int = 3,
    pc_base: int = 0x7000,
) -> KernelTrace:
    """Forward softmax: three read passes plus one write pass per block."""
    if num_elements <= 0 or elements_per_wavefront <= 0:
        raise ValueError("num_elements and elements_per_wavefront must be positive")
    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    for workgroup, (start, count) in enumerate(chunks(num_elements, elements_per_wavefront)):
        builder = ProgramBuilder(pcs, wavefront_size=wavefront_size, workgroup_id=workgroup)
        for offset, lanes in chunks(count, wavefront_size):  # pass 1: max
            builder.load("load_x_max", x, start + offset, lanes)
            builder.compute(ops_per_chunk)
        for offset, lanes in chunks(count, wavefront_size):  # pass 2: sum of exp
            builder.load("load_x_sum", x, start + offset, lanes)
            builder.compute(ops_per_chunk)
        for offset, lanes in chunks(count, wavefront_size):  # pass 3: normalize
            builder.load("load_x_norm", x, start + offset, lanes)
            builder.compute(ops_per_chunk)
            builder.store("store_y", y, start + offset, lanes)
        kernel.add_wavefront(builder.build())
    return kernel


def softmax_backward_kernel(
    name: str,
    y: Tensor,
    dy: Tensor,
    dx: Tensor,
    num_elements: int,
    elements_per_wavefront: int,
    wavefront_size: int = 64,
    ops_per_chunk: int = 3,
    pc_base: int = 0x8000,
) -> KernelTrace:
    """Backward softmax: a dot-product pass then an update pass per block."""
    if num_elements <= 0 or elements_per_wavefront <= 0:
        raise ValueError("num_elements and elements_per_wavefront must be positive")
    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    for workgroup, (start, count) in enumerate(chunks(num_elements, elements_per_wavefront)):
        builder = ProgramBuilder(pcs, wavefront_size=wavefront_size, workgroup_id=workgroup)
        for offset, lanes in chunks(count, wavefront_size):  # pass 1: dot(y, dy)
            builder.load("load_y_dot", y, start + offset, lanes)
            builder.load("load_dy_dot", dy, start + offset, lanes)
            builder.compute(ops_per_chunk)
        for offset, lanes in chunks(count, wavefront_size):  # pass 2: dx
            builder.load("load_y_dx", y, start + offset, lanes)
            builder.load("load_dy_dx", dy, start + offset, lanes)
            builder.compute(ops_per_chunk)
            builder.store("store_dx", dx, start + offset, lanes)
        kernel.add_wavefront(builder.build())
    return kernel
