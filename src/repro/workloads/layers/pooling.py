"""Pooling layer kernels.

Forward pooling reads a window of input elements per output element.  Each
wavefront produces a *strip* of consecutive output rows (real pooling
kernels assign several outputs per work item): with a 3x3 window and
stride 2, the bottom window row of one output row is the top window row of
the next, so about a third of the strip's input loads re-touch lines the
same wavefront loaded moments earlier -- reuse a cache can capture but a
pure bypass path cannot.  The remaining loads are streamed once.  This is
the "limited benefit" behaviour the paper describes for FwPool, together
with its high cache-stall and row-locality sensitivity.

Backward (max) pooling reads the small output-gradient tensor plus the
argmax mask and scatters gradients across the pooling windows of the large
input-gradient tensor.  Window overlap within a strip means many stores
target lines that were stored to moments earlier: this is the
write-coalescing opportunity that makes BwPool one of the biggest CacheRW
winners in the paper, and store traffic dominates load traffic ("unequal
load and store counts").
"""

from __future__ import annotations

from repro.workloads.layers.common import PcAllocator, ProgramBuilder, chunks
from repro.workloads.tensor import Tensor
from repro.workloads.trace import KernelTrace

__all__ = ["pool_forward_kernel", "pool_backward_kernel"]


def pool_forward_kernel(
    name: str,
    x: Tensor,
    y: Tensor,
    in_width: int,
    in_height: int,
    window: int = 3,
    stride: int = 2,
    rows_per_wavefront: int = 4,
    wavefront_size: int = 64,
    ops_per_output_chunk: int = 3,
    pc_base: int = 0x5000,
) -> KernelTrace:
    """Forward max pooling over a 2D plane.

    Each wavefront produces ``rows_per_wavefront`` consecutive output rows
    for a band of ``wavefront_size`` output columns: for every output row it
    loads the ``window`` corresponding input-row segments (strided by
    ``stride`` within a row), reduces them, and stores the outputs.
    """
    if in_width <= window or in_height <= window:
        raise ValueError("input plane must be larger than the pooling window")
    if stride <= 0 or rows_per_wavefront <= 0:
        raise ValueError("stride and rows_per_wavefront must be positive")
    out_width = (in_width - window) // stride + 1
    out_height = (in_height - window) // stride + 1
    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    workgroup = 0
    for strip_start in range(0, out_height, rows_per_wavefront):
        strip_rows = min(rows_per_wavefront, out_height - strip_start)
        for out_col_start, lanes in chunks(out_width, wavefront_size):
            builder = ProgramBuilder(pcs, wavefront_size=wavefront_size, workgroup_id=workgroup)
            in_col_base = out_col_start * stride
            for row_offset in range(strip_rows):
                out_row = strip_start + row_offset
                in_row_base = out_row * stride
                for w_row in range(window):
                    in_row = in_row_base + w_row
                    builder.load(
                        f"load_x_row{w_row}",
                        x,
                        in_row * in_width + in_col_base,
                        lanes,
                        stride=stride,
                    )
                builder.compute(ops_per_output_chunk)
                builder.store("store_y", y, out_row * out_width + out_col_start, lanes)
            kernel.add_wavefront(builder.build())
            workgroup += 1
    return kernel


def pool_backward_kernel(
    name: str,
    dy: Tensor,
    mask: Tensor,
    dx: Tensor,
    in_width: int,
    in_height: int,
    window: int = 3,
    stride: int = 2,
    rows_per_wavefront: int = 4,
    wavefront_size: int = 64,
    ops_per_output_chunk: int = 2,
    pc_base: int = 0x6000,
) -> KernelTrace:
    """Backward max pooling.

    Each wavefront handles a strip of ``rows_per_wavefront`` output rows for
    a band of ``wavefront_size`` output columns: it loads the gradients and
    argmax mask for each row, then scatters gradients across every row of
    the corresponding pooling windows.  Vertically adjacent output rows
    share an input row (window 3, stride 2), so roughly a third of the
    stores re-touch recently written lines.
    """
    if in_width <= window or in_height <= window:
        raise ValueError("input plane must be larger than the pooling window")
    if stride <= 0 or rows_per_wavefront <= 0:
        raise ValueError("stride and rows_per_wavefront must be positive")
    out_width = (in_width - window) // stride + 1
    out_height = (in_height - window) // stride + 1
    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    workgroup = 0
    for strip_start in range(0, out_height, rows_per_wavefront):
        strip_rows = min(rows_per_wavefront, out_height - strip_start)
        for out_col_start, lanes in chunks(out_width, wavefront_size):
            builder = ProgramBuilder(pcs, wavefront_size=wavefront_size, workgroup_id=workgroup)
            for row_offset in range(strip_rows):
                out_row = strip_start + row_offset
                out_index = out_row * out_width + out_col_start
                builder.load("load_dy", dy, out_index, lanes)
                builder.load("load_mask", mask, out_index, lanes)
                builder.compute(ops_per_output_chunk)
                for w_row in range(window):
                    in_row = out_row * stride + w_row
                    builder.store(
                        f"store_dx_row{w_row}",
                        dx,
                        in_row * in_width + out_col_start * stride,
                        lanes,
                        stride=stride,
                    )
            kernel.add_wavefront(builder.build())
            workgroup += 1
    return kernel
