"""Recurrent cell (LSTM / GRU) kernels.

A DeepBench-style RNN inference step with batch size 1 launches a small
number of kernels per timestep: a gate GEMV that multiplies the recurrent
and input weight matrices by the concatenated ``[x_t, h_{t-1}]`` vector, and
one or more pointwise kernels that apply the gate nonlinearities and update
the cell/hidden state.  Training (forward+backward) adds, per timestep,
kernels that re-read the saved gate activations, propagate gradients and
accumulate weight gradients into a fixed-size buffer.

The caching-relevant structure:

* the weight matrices are read start-to-finish once per timestep and the
  GPU caches self-invalidate at every kernel boundary, so weights provide
  no cache-exploitable reuse -- the per-timestep traffic is streaming;
* the hidden/input vector and the gate vectors are tiny and are re-read
  several times inside one kernel (and by several wavefronts), which gives
  a modest reuse-sensitive component;
* the backward pass accumulates ``dW`` into the same small buffer from every
  wavefront of the kernel, giving CacheRW a write-coalescing opportunity.

This mirrors the paper's observation that the RNN workloads are reuse
sensitive, but only moderately so.
"""

from __future__ import annotations

from repro.workloads.layers.common import PcAllocator, ProgramBuilder, chunks
from repro.workloads.tensor import Tensor
from repro.workloads.trace import KernelTrace

__all__ = ["rnn_gate_kernel", "rnn_pointwise_kernel", "rnn_backward_kernel"]


def rnn_gate_kernel(
    name: str,
    weights: Tensor,
    state: Tensor,
    gates: Tensor,
    hidden: int,
    num_gates: int,
    wavefront_size: int = 64,
    macs_per_cycle_per_lane: float = 2.0,
    pc_base: int = 0xB000,
) -> KernelTrace:
    """Gate GEMV for one timestep: ``gates = W x [x_t, h_{t-1}]``.

    Each wavefront computes ``wavefront_size`` gate outputs: it streams the
    corresponding weight rows (no reuse) and re-reads the shared state
    vector (small, reused by every wavefront of the kernel).
    """
    if hidden <= 0 or num_gates <= 0:
        raise ValueError("hidden and num_gates must be positive")
    state_len = 2 * hidden  # concatenated [x_t, h_{t-1}]
    gate_outputs = num_gates * hidden
    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    for workgroup, (row_start, rows) in enumerate(chunks(gate_outputs, wavefront_size)):
        builder = ProgramBuilder(pcs, wavefront_size=wavefront_size, workgroup_id=workgroup)
        # shared state vector: every wavefront reads it in full
        builder.load("load_state", state, 0, state_len)
        # weight rows for this wavefront's outputs: streamed once
        builder.load("load_weights", weights, row_start * state_len, rows * state_len)
        macs = rows * state_len
        builder.compute(max(1, int(round(macs / (wavefront_size * macs_per_cycle_per_lane)))))
        builder.store("store_gates", gates, row_start, rows)
        kernel.add_wavefront(builder.build())
    return kernel


def rnn_pointwise_kernel(
    name: str,
    gates: Tensor,
    cell_state: Tensor,
    hidden_state: Tensor,
    hidden: int,
    num_gates: int,
    gate_passes: int = 3,
    wavefront_size: int = 64,
    ops_per_chunk: int = 4,
    pc_base: int = 0xC000,
) -> KernelTrace:
    """Pointwise gate nonlinearities and state update for one timestep.

    The gate vector is re-read ``gate_passes`` times (sigmoid/tanh per gate
    family plus the state update), the previous cell state is read once and
    both states are written -- a small kernel whose loads have short-distance
    intra-kernel reuse.
    """
    if hidden <= 0 or num_gates <= 0 or gate_passes <= 0:
        raise ValueError("hidden, num_gates and gate_passes must be positive")
    gate_elements = num_gates * hidden
    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    for workgroup, (start, count) in enumerate(chunks(hidden, wavefront_size)):
        builder = ProgramBuilder(pcs, wavefront_size=wavefront_size, workgroup_id=workgroup)
        for gate_pass in range(gate_passes):
            for gate in range(num_gates):
                builder.load(
                    f"load_gate{gate}_pass{gate_pass}",
                    gates,
                    (gate * hidden + start) % gate_elements,
                    count,
                )
            builder.compute(ops_per_chunk)
        builder.load("load_cell_prev", cell_state, start, count)
        builder.compute(ops_per_chunk)
        builder.store("store_cell", cell_state, start, count)
        builder.store("store_hidden", hidden_state, start, count)
        kernel.add_wavefront(builder.build())
    return kernel


def rnn_backward_kernel(
    name: str,
    weights: Tensor,
    saved_gates: Tensor,
    grad_state: Tensor,
    grad_weights: Tensor,
    hidden: int,
    num_gates: int,
    wavefront_size: int = 64,
    macs_per_cycle_per_lane: float = 2.0,
    pc_base: int = 0xD000,
) -> KernelTrace:
    """Backward step for one timestep of RNN training.

    Re-reads the saved gate activations twice (gradient of the nonlinearity
    and of the matrix product), streams the weight rows to back-propagate
    into the state gradient, writes the state gradient, and accumulates
    ``dW`` partials into a fixed small buffer from every wavefront -- the
    store-coalescing opportunity of the training workloads.
    """
    if hidden <= 0 or num_gates <= 0:
        raise ValueError("hidden and num_gates must be positive")
    state_len = 2 * hidden
    gate_outputs = num_gates * hidden
    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    for workgroup, (row_start, rows) in enumerate(chunks(gate_outputs, wavefront_size)):
        builder = ProgramBuilder(pcs, wavefront_size=wavefront_size, workgroup_id=workgroup)
        builder.load("load_saved_gates_a", saved_gates, row_start, rows)
        builder.compute(2)
        builder.load("load_saved_gates_b", saved_gates, row_start, rows)
        builder.load("load_weights_bw", weights, row_start * state_len, rows * state_len)
        macs = rows * state_len
        builder.compute(max(1, int(round(macs / (wavefront_size * macs_per_cycle_per_lane)))))
        builder.load("load_grad_state", grad_state, 0, state_len)
        builder.store("store_grad_state", grad_state, 0, min(state_len, wavefront_size))
        # dW accumulation: every wavefront updates the same small partial buffer
        builder.store(
            "store_grad_weights",
            grad_weights,
            (row_start * 4) % max(1, grad_weights.num_elements - wavefront_size),
            wavefront_size,
        )
        kernel.add_wavefront(builder.build())
    return kernel
