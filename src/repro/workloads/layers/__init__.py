"""Layer-level trace builders.

Each module implements the kernels of one neural-network layer family as
functions that build :class:`~repro.workloads.trace.KernelTrace` objects.
The seventeen Table 2 workloads in :mod:`repro.workloads.registry` are thin
compositions of these builders.
"""

from repro.workloads.layers.common import ProgramBuilder, PcAllocator

__all__ = ["ProgramBuilder", "PcAllocator"]
