"""Tiled GEMM kernels.

The GEMM kernels model how rocBLAS/MIOpenGEMM execute matrix multiplies on
the GPU: the output matrix is tiled into workgroup tiles, each workgroup
stages its A and B tiles through the LDS (so each tile is fetched from
memory once per workgroup, not once per wavefront), and the inner K loop
interleaves tile fetches with the multiply-accumulate work.

Reuse visible to the *caches* is the reuse **between** workgroups: the same
B tile is read by every workgroup in its tile column and the same A tile by
every workgroup in its tile row.  For the large-K DeepBench GEMMs this
reuse is plentiful but irrelevant (the kernels are compute bound), which is
exactly the paper's "memory insensitive" behaviour; for the fully connected
layer (small K, weight matrix shared across the whole batch) the same
structure is memory bound and caching translates into real speedup.
"""

from __future__ import annotations

from repro.workloads.layers.common import PcAllocator, ProgramBuilder, chunks
from repro.workloads.tensor import Tensor
from repro.workloads.trace import KernelTrace

__all__ = ["gemm_kernel", "fully_connected_forward_kernel"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def gemm_kernel(
    name: str,
    a: Tensor,
    b_t: Tensor,
    c: Tensor,
    m: int,
    n: int,
    k: int,
    tile_m: int = 64,
    tile_n: int = 64,
    waves_per_workgroup: int = 4,
    wavefront_size: int = 64,
    macs_per_cycle_per_lane: float = 1.0,
    k_phases: int = 8,
    pc_base: int = 0x9000,
) -> KernelTrace:
    """Build one tiled GEMM kernel ``C[m,n] += A[m,k] x B[k,n]``.

    Args:
        a: the A matrix, row major (``m * k`` elements).
        b_t: the B matrix stored transposed (``n * k`` elements) so that a
            tile column is a contiguous region.
        c: the C matrix, row major (``m * n`` elements).
        tile_m, tile_n: workgroup tile shape.
        waves_per_workgroup: wavefronts sharing one workgroup's LDS tiles.
        macs_per_cycle_per_lane: hardware MAC throughput per lane per cycle
            (FMA and dual-issue make this > 1 on real GPUs); higher values
            reduce the modelled compute time for the same arithmetic.
        k_phases: number of K-loop phases interleaving loads and compute.
    """
    if min(m, n, k, tile_m, tile_n, waves_per_workgroup, k_phases) <= 0:
        raise ValueError("all GEMM dimensions must be positive")
    if a.num_elements < m * k:
        raise ValueError("tensor A is too small for the requested GEMM shape")
    if b_t.num_elements < n * k:
        raise ValueError("tensor B is too small for the requested GEMM shape")
    if c.num_elements < m * n:
        raise ValueError("tensor C is too small for the requested GEMM shape")

    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    tiles_m = _ceil_div(m, tile_m)
    tiles_n = _ceil_div(n, tile_n)
    workgroup = 0
    for ti in range(tiles_m):
        rows = min(tile_m, m - ti * tile_m)
        a_tile_start = ti * tile_m * k
        a_tile_elements = rows * k
        for tj in range(tiles_n):
            cols = min(tile_n, n - tj * tile_n)
            b_tile_start = tj * tile_n * k
            b_tile_elements = cols * k
            c_tile_elements = rows * cols
            total_macs = rows * cols * k
            wg_vector_ops = max(
                1, int(round(total_macs / (wavefront_size * macs_per_cycle_per_lane)))
            )
            for wave in range(waves_per_workgroup):
                builder = ProgramBuilder(
                    pcs, wavefront_size=wavefront_size, workgroup_id=workgroup
                )
                a_share, a_offset = _share(a_tile_elements, waves_per_workgroup, wave)
                b_share, b_offset = _share(b_tile_elements, waves_per_workgroup, wave)
                c_share, c_offset = _share(c_tile_elements, waves_per_workgroup, wave)
                ops_share = max(1, wg_vector_ops // waves_per_workgroup)
                _emit_k_loop(
                    builder,
                    a,
                    a_tile_start + a_offset,
                    a_share,
                    b_t,
                    b_tile_start + b_offset,
                    b_share,
                    ops_share,
                    k_phases,
                    phase_offset=workgroup % k_phases,
                )
                if c_share > 0:
                    builder.store(
                        "store_c",
                        c,
                        ti * tile_m * n + tj * tile_n + c_offset,
                        c_share,
                    )
                kernel.add_wavefront(builder.build())
            workgroup += 1
    return kernel


def _share(total: int, parts: int, index: int) -> tuple[int, int]:
    """Split ``total`` elements into ``parts`` near-equal contiguous shares."""
    base = total // parts
    remainder = total % parts
    share = base + (1 if index < remainder else 0)
    offset = index * base + min(index, remainder)
    return share, offset


def _emit_k_loop(
    builder: ProgramBuilder,
    a: Tensor,
    a_start: int,
    a_elements: int,
    b: Tensor,
    b_start: int,
    b_elements: int,
    vector_ops: int,
    phases: int,
    phase_offset: int = 0,
) -> None:
    """Interleave A/B tile fetches with compute across ``phases`` K phases.

    ``phase_offset`` rotates the order in which a workgroup walks its K
    phases.  Real GEMM libraries stagger the K start offset per workgroup to
    avoid memory hotspots; here it also ensures that two workgroups sharing a
    tile touch any given line at well-separated times, so the sharing shows
    up as *cache* reuse rather than being absorbed by in-flight request
    coalescing.
    """
    for step in range(phases):
        phase = (step + phase_offset) % phases
        a_share, a_offset = _share(a_elements, phases, phase)
        b_share, b_offset = _share(b_elements, phases, phase)
        ops_share = max(1, vector_ops // phases)
        if a_share > 0:
            builder.load("load_a_tile", a, a_start + a_offset, a_share)
        if b_share > 0:
            builder.load("load_b_tile", b, b_start + b_offset, b_share)
        builder.compute(ops_share)


def fully_connected_forward_kernel(
    name: str,
    x: Tensor,
    weights: Tensor,
    y: Tensor,
    batch: int,
    in_features: int,
    out_features: int,
    batch_tile: int = 64,
    waves_per_workgroup: int = 4,
    wavefront_size: int = 64,
    macs_per_cycle_per_lane: float = 4.0,
    k_phases: int = 8,
    pc_base: int = 0xA000,
) -> KernelTrace:
    """Forward fully connected layer ``y[batch, out] = x[batch, in] x W^T``.

    Workgroups tile over the batch only: every workgroup reads the *entire*
    weight matrix (staged through the LDS once per workgroup) plus its own
    batch tile of activations.  The weight matrix is therefore re-read by
    every batch tile -- reuse between distant work items that only the GPU
    L2 can capture, which is what makes FwFc one of the strongest read-
    caching beneficiaries in the paper.
    """
    if min(batch, in_features, out_features, batch_tile) <= 0:
        raise ValueError("all FC dimensions must be positive")
    if x.num_elements < batch * in_features:
        raise ValueError("activation tensor is too small for the FC shape")
    if weights.num_elements < out_features * in_features:
        raise ValueError("weight tensor is too small for the FC shape")
    if y.num_elements < batch * out_features:
        raise ValueError("output tensor is too small for the FC shape")

    pcs = PcAllocator(base=pc_base)
    kernel = KernelTrace(name=name)
    weight_elements = out_features * in_features
    workgroup = 0
    for batch_start in range(0, batch, batch_tile):
        rows = min(batch_tile, batch - batch_start)
        x_tile_start = batch_start * in_features
        x_tile_elements = rows * in_features
        y_tile_start = batch_start * out_features
        y_tile_elements = rows * out_features
        total_macs = rows * out_features * in_features
        wg_vector_ops = max(
            1, int(round(total_macs / (wavefront_size * macs_per_cycle_per_lane)))
        )
        for wave in range(waves_per_workgroup):
            builder = ProgramBuilder(pcs, wavefront_size=wavefront_size, workgroup_id=workgroup)
            w_share, w_offset = _share(weight_elements, waves_per_workgroup, wave)
            x_share, x_offset = _share(x_tile_elements, waves_per_workgroup, wave)
            y_share, y_offset = _share(y_tile_elements, waves_per_workgroup, wave)
            ops_share = max(1, wg_vector_ops // waves_per_workgroup)
            _emit_k_loop(
                builder,
                weights,
                w_offset,
                w_share,
                x,
                x_tile_start + x_offset,
                x_share,
                ops_share,
                k_phases,
                phase_offset=workgroup % k_phases,
            )
            if y_share > 0:
                builder.store("store_y", y, y_tile_start + y_offset, y_share)
            kernel.add_wavefront(builder.build())
        workgroup += 1
    return kernel
