"""Transformer-era workload: multi-head attention (beyond the paper).

The paper's Table 2 predates the transformer takeover of MI workloads; the
adaptive-policy study (``experiments/adaptive.py``) wants at least one
kernel mix from that era.  :class:`MultiHeadAttention` models one
scaled-dot-product attention layer as MIOpen/rocBLAS would dispatch it: one
score GEMM and one context GEMM per head, a fused row softmax over all
heads, and the output projection -- ``2 x heads + 2`` kernel launches with
three distinct memory personalities (L2-reusable K/V and weight matrices,
short-reuse-distance softmax passes, streaming probability matrices).
"""

from __future__ import annotations

from repro.core.advisor import WorkloadProfile
from repro.core.classification import WorkloadCategory
from repro.workloads.base import Workload, WorkloadMetadata
from repro.workloads.layers.attention import (
    attention_context_kernel,
    attention_projection_kernel,
    attention_score_kernel,
    attention_softmax_kernel,
)
from repro.workloads.tensor import AddressSpace
from repro.workloads.trace import WorkloadTrace

__all__ = ["MultiHeadAttention"]


class MultiHeadAttention(Workload):
    """MHA: per-head score/context GEMMs + fused softmax + projection."""

    metadata = WorkloadMetadata(
        name="MHA",
        full_name="Multi-Head Attention (forward)",
        suite="Transformer microbench",
        paper_input="Sequence 64, 4 heads, d_model 64",
        unique_kernels=4,
        total_kernels=10,
        paper_footprint="n/a (beyond the paper's Table 2)",
        paper_category=WorkloadCategory.REUSE_SENSITIVE,
        description=(
            "Scaled-dot-product attention: K/V and projection weights are "
            "re-read by every query tile (L2 reuse), softmax re-reads each "
            "score row three times, probabilities stream through once."
        ),
    )

    def __init__(
        self,
        scale: float = 1.0,
        wavefront_size: int = 64,
        num_heads: int = 4,
        head_dim: int = 16,
    ) -> None:
        super().__init__(scale=scale, wavefront_size=wavefront_size)
        if num_heads <= 0 or head_dim <= 0:
            raise ValueError("num_heads and head_dim must be positive")
        self.num_heads = num_heads
        self.head_dim = head_dim
        # the sequence length carries the scale factor; 8 keeps the tiny
        # test scales non-degenerate (at least a few cache lines per row)
        self.seq = self.scaled(64, minimum=8)

    @property
    def model_dim(self) -> int:
        return self.num_heads * self.head_dim

    # ------------------------------------------------------------------
    def build_trace(self) -> WorkloadTrace:
        seq, heads, head_dim = self.seq, self.num_heads, self.head_dim
        model_dim = self.model_dim
        space = AddressSpace()
        q = space.allocate("q", seq * model_dim)
        k = space.allocate("k", seq * model_dim)
        v_t = space.allocate("v_t", seq * model_dim)
        scores = space.allocate("scores", heads * seq * seq)
        probs = space.allocate("probs", heads * seq * seq)
        context = space.allocate("context", seq * model_dim)
        w_out_t = space.allocate("w_out_t", model_dim * model_dim)
        output = space.allocate("output", seq * model_dim)

        trace = WorkloadTrace(name=self.name)
        for head in range(heads):
            trace.add_kernel(
                attention_score_kernel(
                    "rocblas_attn_scores",
                    q=q,
                    k=k,
                    scores=scores,
                    head=head,
                    seq=seq,
                    head_dim=head_dim,
                    wavefront_size=self.wavefront_size,
                )
            )
        trace.add_kernel(
            attention_softmax_kernel(
                "miopen_attn_softmax",
                scores=scores,
                probs=probs,
                num_heads=heads,
                seq=seq,
                wavefront_size=self.wavefront_size,
            )
        )
        for head in range(heads):
            trace.add_kernel(
                attention_context_kernel(
                    "rocblas_attn_context",
                    probs=probs,
                    v_t=v_t,
                    context=context,
                    head=head,
                    seq=seq,
                    head_dim=head_dim,
                    wavefront_size=self.wavefront_size,
                )
            )
        trace.add_kernel(
            attention_projection_kernel(
                "rocblas_attn_proj",
                context=context,
                w_out_t=w_out_t,
                output=output,
                seq=seq,
                model_dim=model_dim,
                wavefront_size=self.wavefront_size,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        seq, model_dim = self.seq, self.model_dim
        # MACs: QK^T and PV are seq^2 * model_dim each; projection is
        # seq * model_dim^2; traffic is dominated by the score/prob matrices
        macs = 2 * seq * seq * model_dim + seq * model_dim * model_dim
        footprint = (
            4 * seq * model_dim + 2 * self.num_heads * seq * seq + model_dim * model_dim
        ) * 4
        return WorkloadProfile(
            arithmetic_intensity=macs / max(footprint, 1),
            load_reuse_fraction=0.45,
            store_coalescing_fraction=0.25,
            footprint_bytes=footprint,
        )
