"""Registry of the studied MI workloads (paper Table 2, plus extensions).

The registry maps the figure labels used throughout the paper (``FwAct``,
``BwPool``, ``FwBwLSTM``, ...) to workload factories, and exposes helpers
to build the whole suite at a chosen scale and to render the Table 2
metadata.  Beyond the paper's seventeen workloads it registers ``MHA``, a
transformer-era multi-head-attention layer used by the adaptive-policy
study.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Workload
from repro.workloads.deepbench import Dgemm, RnnForward, RnnForwardBackward, Sgemm
from repro.workloads.dnnmark import (
    BackwardActivation,
    BackwardBatchNorm,
    BackwardPooling,
    BackwardSoftmax,
    ComposedModel,
    ForwardActivation,
    ForwardBatchNorm,
    ForwardFullyConnected,
    ForwardLrn,
    ForwardPooling,
    ForwardSoftmax,
)
from repro.workloads.transformer import MultiHeadAttention

__all__ = [
    "WORKLOAD_NAMES",
    "WORKLOAD_FACTORIES",
    "get_workload",
    "standard_suite",
    "workload_metadata_table",
]

#: factories keyed by the paper's figure labels
WORKLOAD_FACTORIES: dict[str, Callable[..., Workload]] = {
    "DGEMM": lambda **kw: Dgemm(**kw),
    "SGEMM": lambda **kw: Sgemm(**kw),
    "CM": lambda **kw: ComposedModel(**kw),
    "FwBN": lambda **kw: ForwardBatchNorm(**kw),
    "FwPool": lambda **kw: ForwardPooling(**kw),
    "FwSoft": lambda **kw: ForwardSoftmax(**kw),
    "BwSoft": lambda **kw: BackwardSoftmax(**kw),
    "BwPool": lambda **kw: BackwardPooling(**kw),
    "FwGRU": lambda **kw: RnnForward(cell="gru", **kw),
    "FwLSTM": lambda **kw: RnnForward(cell="lstm", **kw),
    "FwBwGRU": lambda **kw: RnnForwardBackward(cell="gru", **kw),
    "FwBwLSTM": lambda **kw: RnnForwardBackward(cell="lstm", **kw),
    "BwBN": lambda **kw: BackwardBatchNorm(**kw),
    "FwFc": lambda **kw: ForwardFullyConnected(**kw),
    "FwAct": lambda **kw: ForwardActivation(**kw),
    "FwLRN": lambda **kw: ForwardLrn(**kw),
    "BwAct": lambda **kw: BackwardActivation(**kw),
    # beyond the paper: transformer-era attention for the adaptive study
    "MHA": lambda **kw: MultiHeadAttention(**kw),
}

#: workload names: the paper's seventeen in figure order (insensitive,
#: then reuse sensitive, then throughput sensitive), then the
#: beyond-paper additions (MHA)
WORKLOAD_NAMES: tuple[str, ...] = tuple(WORKLOAD_FACTORIES.keys())


def get_workload(name: str, scale: float = 1.0, **kwargs) -> Workload:
    """Instantiate one workload by its figure label (case-insensitive)."""
    for known, factory in WORKLOAD_FACTORIES.items():
        if known.lower() == name.lower():
            return factory(scale=scale, **kwargs)
    raise KeyError(
        f"unknown workload {name!r}; known workloads: {', '.join(WORKLOAD_NAMES)}"
    )


def standard_suite(scale: float = 1.0, names: tuple[str, ...] | None = None) -> list[Workload]:
    """Build the full 17-workload suite (or the subset given by ``names``)."""
    selected = WORKLOAD_NAMES if names is None else names
    return [get_workload(name, scale=scale) for name in selected]


def workload_metadata_table(scale: float = 1.0) -> list[dict[str, object]]:
    """Render Table 2: paper metadata alongside the scaled trace statistics."""
    rows: list[dict[str, object]] = []
    for name in WORKLOAD_NAMES:
        workload = get_workload(name, scale=scale)
        trace = workload.build_trace()
        meta = workload.metadata
        rows.append(
            {
                "name": meta.name,
                "suite": meta.suite,
                "paper_input": meta.paper_input,
                "paper_unique_kernels": meta.unique_kernels,
                "paper_total_kernels": meta.total_kernels,
                "paper_footprint": meta.paper_footprint,
                "paper_category": str(meta.paper_category),
                "sim_kernels": trace.num_kernels,
                "sim_unique_kernels": len(trace.unique_kernel_names),
                "sim_line_requests": trace.line_requests,
                "sim_footprint_bytes": trace.footprint_bytes(),
            }
        )
    return rows
