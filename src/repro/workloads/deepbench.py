"""DeepBench workloads: SGEMM, DGEMM and the RNN training/inference suites.

The GEMM workloads are large, heavily tiled matrix multiplies that are
compute bound on the GPU (the paper's "memory insensitive" class): caching
removes a large fraction of their DRAM traffic without changing execution
time.  The RNN workloads launch a long sequence of small kernels per
timestep (the paper reports 150 launches for inference and 363 for
training), have a tiny footprint and only moderate, intra-kernel reuse --
the paper's moderately reuse-sensitive class.
"""

from __future__ import annotations

from repro.core.advisor import WorkloadProfile
from repro.core.classification import WorkloadCategory
from repro.workloads.base import Workload, WorkloadMetadata
from repro.workloads.layers.gemm import gemm_kernel
from repro.workloads.layers.rnn_cell import (
    rnn_backward_kernel,
    rnn_gate_kernel,
    rnn_pointwise_kernel,
)
from repro.workloads.tensor import AddressSpace
from repro.workloads.trace import WorkloadTrace

__all__ = [
    "Sgemm",
    "Dgemm",
    "RnnForward",
    "RnnForwardBackward",
]


class Sgemm(Workload):
    """SGEMM: single-precision GEMM, compute bound, large inter-tile reuse."""

    metadata = WorkloadMetadata(
        name="SGEMM",
        full_name="Single-precision GEMM",
        suite="DeepBench",
        paper_input="4Kx128x4K",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="68 MB",
        paper_category=WorkloadCategory.MEMORY_INSENSITIVE,
        description="Tiled matrix multiply; B tiles shared across every workgroup row.",
    )

    def __init__(self, scale: float = 1.0, wavefront_size: int = 64) -> None:
        super().__init__(scale=scale, wavefront_size=wavefront_size)
        self.m = self.scaled(512, minimum=128)
        self.n = 128
        self.k = 128

    def build_trace(self) -> WorkloadTrace:
        space = AddressSpace()
        a = space.allocate("A", self.m * self.k)
        b_t = space.allocate("Bt", self.n * self.k)
        c = space.allocate("C", self.m * self.n)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            gemm_kernel(
                "rocblas_sgemm",
                a=a,
                b_t=b_t,
                c=c,
                m=self.m,
                n=self.n,
                k=self.k,
                tile_m=64,
                tile_n=64,
                waves_per_workgroup=4,
                wavefront_size=self.wavefront_size,
                macs_per_cycle_per_lane=0.15,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        bytes_touched = (self.m * self.k + self.n * self.k + self.m * self.n) * 4
        flops = 2 * self.m * self.n * self.k
        return WorkloadProfile(
            arithmetic_intensity=flops / bytes_touched,
            load_reuse_fraction=0.7,
            store_coalescing_fraction=0.0,
            footprint_bytes=bytes_touched,
        )


class Dgemm(Workload):
    """DGEMM: double-precision GEMM, compute bound (half the FP32 rate)."""

    metadata = WorkloadMetadata(
        name="DGEMM",
        full_name="Double-precision GEMM",
        suite="DeepBench",
        paper_input="4Kx128x4K",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="132 MB",
        paper_category=WorkloadCategory.MEMORY_INSENSITIVE,
        description="Double-precision tiled matrix multiply; twice the bytes, slower math.",
    )

    def __init__(self, scale: float = 1.0, wavefront_size: int = 64) -> None:
        super().__init__(scale=scale, wavefront_size=wavefront_size)
        self.m = self.scaled(256, minimum=128)
        self.n = 128
        self.k = 128

    def build_trace(self) -> WorkloadTrace:
        space = AddressSpace()
        a = space.allocate("A", self.m * self.k, element_bytes=8)
        b_t = space.allocate("Bt", self.n * self.k, element_bytes=8)
        c = space.allocate("C", self.m * self.n, element_bytes=8)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            gemm_kernel(
                "rocblas_dgemm",
                a=a,
                b_t=b_t,
                c=c,
                m=self.m,
                n=self.n,
                k=self.k,
                tile_m=64,
                tile_n=64,
                waves_per_workgroup=4,
                wavefront_size=self.wavefront_size,
                macs_per_cycle_per_lane=0.1,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        bytes_touched = (self.m * self.k + self.n * self.k + self.m * self.n) * 8
        flops = 2 * self.m * self.n * self.k
        return WorkloadProfile(
            arithmetic_intensity=flops / bytes_touched,
            load_reuse_fraction=0.7,
            store_coalescing_fraction=0.0,
            footprint_bytes=bytes_touched,
        )


class RnnForward(Workload):
    """FwLSTM / FwGRU: RNN inference -- many small kernels, modest reuse."""

    metadata = WorkloadMetadata(
        name="FwLSTM",
        full_name="RNN Forward (LSTM/GRU)",
        suite="DeepBench / MIOpen-benchmark",
        paper_input="Batch 1, sequence length 16, hidden layer 128",
        unique_kernels=4,
        total_kernels=150,
        paper_footprint="0.38 MB",
        paper_category=WorkloadCategory.REUSE_SENSITIVE,
        description="Per-timestep gate GEMV (streaming weights) plus pointwise state update.",
    )

    def __init__(
        self,
        cell: str = "lstm",
        scale: float = 1.0,
        wavefront_size: int = 64,
        sequence_length: int = 12,
        hidden: int = 32,
    ) -> None:
        super().__init__(scale=scale, wavefront_size=wavefront_size)
        cell = cell.lower()
        if cell not in ("lstm", "gru"):
            raise ValueError("cell must be 'lstm' or 'gru'")
        self.cell = cell
        self.num_gates = 4 if cell == "lstm" else 3
        self.sequence_length = max(2, int(round(sequence_length * scale)))
        self.hidden = hidden
        # present the right display name for the registry
        self.metadata = WorkloadMetadata(
            name="FwLSTM" if cell == "lstm" else "FwGRU",
            full_name=f"RNN Forward ({cell.upper()})",
            suite=self.metadata.suite,
            paper_input=self.metadata.paper_input + f", {cell.upper()}",
            unique_kernels=self.metadata.unique_kernels,
            total_kernels=self.metadata.total_kernels,
            paper_footprint=self.metadata.paper_footprint,
            paper_category=self.metadata.paper_category,
            description=self.metadata.description,
        )

    def build_trace(self) -> WorkloadTrace:
        space = AddressSpace()
        state_len = 2 * self.hidden
        weights = space.allocate("weights", self.num_gates * self.hidden * state_len)
        state = space.allocate("state", state_len)
        gates = space.allocate("gates", self.num_gates * self.hidden)
        cell_state = space.allocate("cell_state", self.hidden)
        hidden_state = space.allocate("hidden_state", self.hidden)
        trace = WorkloadTrace(name=self.name)
        # every timestep launches the same two kernels over the same
        # tensors, so build each program once and alias it per timestep;
        # traces are read-only after construction (the GPU never mutates
        # them, and partitioning copies), which makes aliasing safe and
        # keeps trace generation O(1) in sequence length
        gate = rnn_gate_kernel(
            f"miopen_rnn_{self.cell}_gemv",
            weights=weights,
            state=state,
            gates=gates,
            hidden=self.hidden,
            num_gates=self.num_gates,
            wavefront_size=self.wavefront_size,
        )
        pointwise = rnn_pointwise_kernel(
            f"miopen_rnn_{self.cell}_pointwise",
            gates=gates,
            cell_state=cell_state,
            hidden_state=hidden_state,
            hidden=self.hidden,
            num_gates=self.num_gates,
            wavefront_size=self.wavefront_size,
        )
        for _timestep in range(self.sequence_length):
            trace.add_kernel(gate)
            trace.add_kernel(pointwise)
        return trace

    def profile(self) -> WorkloadProfile:
        weight_bytes = self.num_gates * self.hidden * 2 * self.hidden * 4
        return WorkloadProfile(
            arithmetic_intensity=2.0,
            load_reuse_fraction=0.15,
            store_coalescing_fraction=0.05,
            footprint_bytes=weight_bytes + 6 * self.hidden * 4,
        )


class RnnForwardBackward(RnnForward):
    """FwBwLSTM / FwBwGRU: RNN training -- adds backward kernels per timestep."""

    def __init__(
        self,
        cell: str = "lstm",
        scale: float = 1.0,
        wavefront_size: int = 64,
        sequence_length: int = 10,
        hidden: int = 32,
    ) -> None:
        super().__init__(
            cell=cell,
            scale=scale,
            wavefront_size=wavefront_size,
            sequence_length=sequence_length,
            hidden=hidden,
        )
        base = self.metadata
        self.metadata = WorkloadMetadata(
            name="FwBwLSTM" if self.cell == "lstm" else "FwBwGRU",
            full_name=f"RNN Forward Backward ({self.cell.upper()})",
            suite=base.suite,
            paper_input=base.paper_input,
            unique_kernels=6,
            total_kernels=363,
            paper_footprint="0.48 MB",
            paper_category=WorkloadCategory.REUSE_SENSITIVE,
            description=base.description + " Training adds gradient kernels with dW coalescing.",
        )

    def build_trace(self) -> WorkloadTrace:
        trace = super().build_trace()
        trace.name = self.name
        space = AddressSpace(alignment=4096)
        state_len = 2 * self.hidden
        weights = space.allocate("weights_bw", self.num_gates * self.hidden * state_len)
        saved_gates = space.allocate("saved_gates", self.num_gates * self.hidden)
        grad_state = space.allocate("grad_state", state_len)
        grad_weights = space.allocate("grad_weights", 4 * self.wavefront_size)
        for _timestep in range(self.sequence_length):
            trace.add_kernel(
                rnn_backward_kernel(
                    f"miopen_rnn_{self.cell}_bwd",
                    weights=weights,
                    saved_gates=saved_gates,
                    grad_state=grad_state,
                    grad_weights=grad_weights,
                    hidden=self.hidden,
                    num_gates=self.num_gates,
                    wavefront_size=self.wavefront_size,
                )
            )
        return trace

    def profile(self) -> WorkloadProfile:
        base = super().profile()
        return WorkloadProfile(
            arithmetic_intensity=base.arithmetic_intensity,
            load_reuse_fraction=0.25,
            store_coalescing_fraction=0.35,
            footprint_bytes=base.footprint_bytes * 2,
        )
