"""DNNMark single-layer workloads and the Composed Model (paper Table 2).

Each class generates a scaled-down synthetic trace whose access *structure*
(streaming vs. reuse, read/write mix, footprint relative to the caches,
kernel count) matches the corresponding DNNMark benchmark; DESIGN.md
documents the substitution and the scaling.
"""

from __future__ import annotations

from repro.core.advisor import WorkloadProfile
from repro.core.classification import WorkloadCategory
from repro.workloads.base import Workload, WorkloadMetadata
from repro.workloads.layers.elementwise import elementwise_kernel
from repro.workloads.layers.gemm import fully_connected_forward_kernel, gemm_kernel
from repro.workloads.layers.normalization import (
    batchnorm_backward_kernel,
    batchnorm_forward_kernel,
    lrn_forward_kernel,
)
from repro.workloads.layers.pooling import pool_backward_kernel, pool_forward_kernel
from repro.workloads.layers.softmax import softmax_backward_kernel, softmax_forward_kernel
from repro.workloads.tensor import AddressSpace
from repro.workloads.trace import WorkloadTrace

__all__ = [
    "ForwardActivation",
    "BackwardActivation",
    "ForwardLrn",
    "ForwardBatchNorm",
    "BackwardBatchNorm",
    "ForwardPooling",
    "BackwardPooling",
    "ForwardSoftmax",
    "BackwardSoftmax",
    "ForwardFullyConnected",
    "ComposedModel",
]


class ForwardActivation(Workload):
    """FwAct: forward ReLU over a large tensor -- pure streaming, no reuse."""

    metadata = WorkloadMetadata(
        name="FwAct",
        full_name="Forward Activation",
        suite="DNNMark",
        paper_input="Batch size 100",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="1.6 GB",
        paper_category=WorkloadCategory.THROUGHPUT_SENSITIVE,
        description="Elementwise ReLU: one streaming read and one streaming write per element.",
    )

    def build_trace(self) -> WorkloadTrace:
        # sized so the write stream alone exceeds the scaled L2 capacity, as
        # the paper's multi-GB activation tensors dwarf the 4 MB L2
        elements = self.scaled(144 * 1024)
        space = AddressSpace()
        x = space.allocate("x", elements)
        y = space.allocate("y", elements)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            elementwise_kernel(
                "miopen_relu_fwd",
                inputs=[x],
                outputs=[y],
                num_elements=elements,
                elements_per_wavefront=1152,
                wavefront_size=self.wavefront_size,
                ops_per_chunk=2,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            arithmetic_intensity=0.25,
            load_reuse_fraction=0.0,
            store_coalescing_fraction=0.0,
            footprint_bytes=self.scaled(144 * 1024) * 8,
        )


class BackwardActivation(Workload):
    """BwAct: backward ReLU -- two streaming reads, one streaming write."""

    metadata = WorkloadMetadata(
        name="BwAct",
        full_name="Backward Activation",
        suite="DNNMark",
        paper_input="Batch size 100",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="2.4 GB",
        paper_category=WorkloadCategory.THROUGHPUT_SENSITIVE,
        description="Elementwise ReLU gradient: reads x and dy, writes dx, no reuse.",
    )

    def build_trace(self) -> WorkloadTrace:
        elements = self.scaled(96 * 1024)
        space = AddressSpace()
        x = space.allocate("x", elements)
        dy = space.allocate("dy", elements)
        dx = space.allocate("dx", elements)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            elementwise_kernel(
                "miopen_relu_bwd",
                inputs=[x, dy],
                outputs=[dx],
                num_elements=elements,
                elements_per_wavefront=768,
                wavefront_size=self.wavefront_size,
                ops_per_chunk=2,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            arithmetic_intensity=0.2,
            load_reuse_fraction=0.0,
            store_coalescing_fraction=0.0,
            footprint_bytes=self.scaled(96 * 1024) * 12,
        )


class ForwardLrn(Workload):
    """FwLRN: local response normalization -- streaming with a heavy read mix."""

    metadata = WorkloadMetadata(
        name="FwLRN",
        full_name="Forward LRN",
        suite="DNNMark",
        paper_input="Batch size 100",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="2.4 GB",
        paper_category=WorkloadCategory.THROUGHPUT_SENSITIVE,
        description="Sliding-window normalization: streaming reads of x and scale, one write.",
    )

    def build_trace(self) -> WorkloadTrace:
        elements = self.scaled(80 * 1024)
        space = AddressSpace()
        x = space.allocate("x", elements)
        scale = space.allocate("scale", elements)
        y = space.allocate("y", elements)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            lrn_forward_kernel(
                "miopen_lrn_fwd",
                x=x,
                scale=scale,
                y=y,
                num_elements=elements,
                elements_per_wavefront=640,
                wavefront_size=self.wavefront_size,
                ops_per_chunk=4,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            arithmetic_intensity=0.4,
            load_reuse_fraction=0.0,
            store_coalescing_fraction=0.0,
            footprint_bytes=self.scaled(80 * 1024) * 12,
        )


class ForwardBatchNorm(Workload):
    """FwBN: forward batch normalization -- intra-kernel re-read of the input."""

    metadata = WorkloadMetadata(
        name="FwBN",
        full_name="Forward Batch Normalization",
        suite="DNNMark",
        paper_input="Batch size 256",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="42 MB",
        paper_category=WorkloadCategory.REUSE_SENSITIVE,
        description="Statistics pass plus normalization pass over the same data within one kernel.",
    )

    def build_trace(self) -> WorkloadTrace:
        elements = self.scaled(80 * 1024)
        channels = 64
        space = AddressSpace()
        x = space.allocate("x", elements)
        y = space.allocate("y", elements)
        params = space.allocate("params", channels * 4)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            batchnorm_forward_kernel(
                "miopen_bn_fwd_spatial",
                x=x,
                y=y,
                params=params,
                num_elements=elements,
                elements_per_wavefront=1024,
                channels=channels,
                wavefront_size=self.wavefront_size,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            arithmetic_intensity=0.8,
            load_reuse_fraction=0.5,
            store_coalescing_fraction=0.0,
            footprint_bytes=self.scaled(80 * 1024) * 8,
        )


class BackwardBatchNorm(Workload):
    """BwBN: backward batch normalization -- load reuse plus partial-sum coalescing."""

    metadata = WorkloadMetadata(
        name="BwBN",
        full_name="Backward Batch Normalization",
        suite="DNNMark",
        paper_input="Batch size 512",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="5.88 MB",
        paper_category=WorkloadCategory.REUSE_SENSITIVE,
        description="Two passes over x/dy plus per-channel gradient accumulation into a tiny buffer.",
    )

    def build_trace(self) -> WorkloadTrace:
        elements = self.scaled(40 * 1024)
        channels = 32
        space = AddressSpace()
        x = space.allocate("x", elements)
        dy = space.allocate("dy", elements)
        dx = space.allocate("dx", elements)
        params = space.allocate("params", channels * 2)
        partials = space.allocate("partials", channels * 2)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            batchnorm_backward_kernel(
                "miopen_bn_bwd_spatial",
                x=x,
                dy=dy,
                dx=dx,
                params=params,
                partials=partials,
                num_elements=elements,
                elements_per_wavefront=512,
                channels=channels,
                wavefront_size=self.wavefront_size,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            arithmetic_intensity=1.0,
            load_reuse_fraction=0.5,
            store_coalescing_fraction=0.6,
            footprint_bytes=self.scaled(40 * 1024) * 12,
        )


class ForwardPooling(Workload):
    """FwPool: 3x3/stride-2 max pooling -- window reuse between nearby rows."""

    metadata = WorkloadMetadata(
        name="FwPool",
        full_name="Forward Pool",
        suite="DNNMark",
        paper_input="Batch size 256",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="480 MB",
        paper_category=WorkloadCategory.REUSE_SENSITIVE,
        description="Window reads with one-row overlap between adjacent output rows; few writes.",
    )

    def build_trace(self) -> WorkloadTrace:
        side = self.scaled(256, minimum=16)
        space = AddressSpace()
        x = space.allocate("x", side * side)
        out_side = (side - 3) // 2 + 1
        y = space.allocate("y", out_side * out_side)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            pool_forward_kernel(
                "miopen_pool_fwd",
                x=x,
                y=y,
                in_width=side,
                in_height=side,
                window=3,
                stride=2,
                wavefront_size=self.wavefront_size,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        side = self.scaled(256, minimum=16)
        return WorkloadProfile(
            arithmetic_intensity=0.5,
            load_reuse_fraction=0.3,
            store_coalescing_fraction=0.0,
            footprint_bytes=side * side * 5,
        )


class BackwardPooling(Workload):
    """BwPool: scatter of gradients into overlapping windows -- write coalescing."""

    metadata = WorkloadMetadata(
        name="BwPool",
        full_name="Backward Pool",
        suite="DNNMark",
        paper_input="Batch size 256",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="252 MB",
        paper_category=WorkloadCategory.REUSE_SENSITIVE,
        description="Reads small dy/mask tensors, scatters gradients into overlapping input lines.",
    )

    def build_trace(self) -> WorkloadTrace:
        side = self.scaled(256, minimum=16)
        out_side = (side - 3) // 2 + 1
        space = AddressSpace()
        dy = space.allocate("dy", out_side * out_side)
        mask = space.allocate("mask", out_side * out_side)
        dx = space.allocate("dx", side * side)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            pool_backward_kernel(
                "miopen_pool_bwd",
                dy=dy,
                mask=mask,
                dx=dx,
                in_width=side,
                in_height=side,
                window=3,
                stride=2,
                wavefront_size=self.wavefront_size,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        side = self.scaled(256, minimum=16)
        return WorkloadProfile(
            arithmetic_intensity=0.4,
            load_reuse_fraction=0.2,
            store_coalescing_fraction=0.5,
            footprint_bytes=side * side * 6,
        )


class ForwardSoftmax(Workload):
    """FwSoft: small-footprint classifier output layer with three read passes."""

    metadata = WorkloadMetadata(
        name="FwSoft",
        full_name="Forward Softmax",
        suite="DNNMark",
        paper_input="Batch size 512",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="0.01 MB",
        paper_category=WorkloadCategory.REUSE_SENSITIVE,
        description="Max / sum-exp / normalize passes over a tiny per-sample class vector.",
    )

    def build_trace(self) -> WorkloadTrace:
        elements = self.scaled(32 * 1024)
        space = AddressSpace()
        x = space.allocate("x", elements)
        y = space.allocate("y", elements)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            softmax_forward_kernel(
                "miopen_softmax_fwd",
                x=x,
                y=y,
                num_elements=elements,
                elements_per_wavefront=1024,
                wavefront_size=self.wavefront_size,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            arithmetic_intensity=1.0,
            load_reuse_fraction=0.66,
            store_coalescing_fraction=0.0,
            footprint_bytes=self.scaled(32 * 1024) * 8,
        )


class BackwardSoftmax(Workload):
    """BwSoft: softmax gradient with two read passes over y and dy."""

    metadata = WorkloadMetadata(
        name="BwSoft",
        full_name="Backward Softmax",
        suite="DNNMark",
        paper_input="Batch size 512",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="0.02 MB",
        paper_category=WorkloadCategory.REUSE_SENSITIVE,
        description="Dot-product pass plus update pass over the same small tensors.",
    )

    def build_trace(self) -> WorkloadTrace:
        elements = self.scaled(24 * 1024)
        space = AddressSpace()
        y = space.allocate("y", elements)
        dy = space.allocate("dy", elements)
        dx = space.allocate("dx", elements)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            softmax_backward_kernel(
                "miopen_softmax_bwd",
                y=y,
                dy=dy,
                dx=dx,
                num_elements=elements,
                elements_per_wavefront=1024,
                wavefront_size=self.wavefront_size,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            arithmetic_intensity=1.0,
            load_reuse_fraction=0.5,
            store_coalescing_fraction=0.0,
            footprint_bytes=self.scaled(24 * 1024) * 12,
        )


class ForwardFullyConnected(Workload):
    """FwFc: fully connected layer -- weight reuse across the whole batch."""

    metadata = WorkloadMetadata(
        name="FwFc",
        full_name="Forward Fully Connected",
        suite="DNNMark",
        paper_input="Batch size 512",
        unique_kernels=1,
        total_kernels=1,
        paper_footprint="148.2 MB",
        paper_category=WorkloadCategory.REUSE_SENSITIVE,
        description="Batch-tiled GEMM that re-reads the weight matrix for every batch tile.",
    )

    def __init__(self, scale: float = 1.0, wavefront_size: int = 64) -> None:
        super().__init__(scale=scale, wavefront_size=wavefront_size)
        self.batch = self.scaled(256, minimum=64)
        self.in_features = 128
        self.out_features = 256

    def build_trace(self) -> WorkloadTrace:
        space = AddressSpace()
        x = space.allocate("x", self.batch * self.in_features)
        weights = space.allocate("weights", self.out_features * self.in_features)
        y = space.allocate("y", self.batch * self.out_features)
        trace = WorkloadTrace(name=self.name)
        trace.add_kernel(
            fully_connected_forward_kernel(
                "rocblas_fc_fwd",
                x=x,
                weights=weights,
                y=y,
                batch=self.batch,
                in_features=self.in_features,
                out_features=self.out_features,
                batch_tile=64,
                waves_per_workgroup=4,
                wavefront_size=self.wavefront_size,
                macs_per_cycle_per_lane=4.0,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        weight_bytes = self.out_features * self.in_features * 4
        return WorkloadProfile(
            arithmetic_intensity=4.0,
            load_reuse_fraction=0.6,
            store_coalescing_fraction=0.0,
            footprint_bytes=weight_bytes + self.batch * (self.in_features + self.out_features) * 4,
        )


class ComposedModel(Workload):
    """CM: a small multi-layer network -- compute bound, many kernel launches."""

    metadata = WorkloadMetadata(
        name="CM",
        full_name="Composed Model",
        suite="DNNMark",
        paper_input="Batch size 64",
        unique_kernels=4,
        total_kernels=130,
        paper_footprint="12.1 MB",
        paper_category=WorkloadCategory.MEMORY_INSENSITIVE,
        description="Convolution (GEMM) + activation + pooling blocks chained over many kernels.",
    )

    def __init__(self, scale: float = 1.0, wavefront_size: int = 64, blocks: int = 4) -> None:
        super().__init__(scale=scale, wavefront_size=wavefront_size)
        self.blocks = max(1, int(round(blocks * min(scale, 1.0)))) if scale < 1.0 else blocks

    def build_trace(self) -> WorkloadTrace:
        trace = WorkloadTrace(name=self.name)
        space = AddressSpace()
        conv_m, conv_n, conv_k = 128, 64, 64
        act_elements = self.scaled(4 * 1024)
        pool_side = 64
        a = space.allocate("conv_in", conv_m * conv_k)
        b = space.allocate("conv_w", conv_n * conv_k)
        c = space.allocate("conv_out", conv_m * conv_n)
        act_out = space.allocate("act_out", act_elements)
        pool_out_side = (pool_side - 3) // 2 + 1
        pool_in = space.allocate("pool_in", pool_side * pool_side)
        pool_out = space.allocate("pool_out", pool_out_side * pool_out_side)
        for block in range(self.blocks):
            trace.add_kernel(
                gemm_kernel(
                    "miopen_conv_gemm",
                    a=a,
                    b_t=b,
                    c=c,
                    m=conv_m,
                    n=conv_n,
                    k=conv_k,
                    tile_m=64,
                    tile_n=64,
                    waves_per_workgroup=4,
                    wavefront_size=self.wavefront_size,
                    macs_per_cycle_per_lane=0.15,
                    pc_base=0x9000,
                )
            )
            trace.add_kernel(
                elementwise_kernel(
                    "miopen_relu_fwd",
                    inputs=[c],
                    outputs=[act_out],
                    num_elements=min(act_elements, c.num_elements),
                    elements_per_wavefront=512,
                    wavefront_size=self.wavefront_size,
                    ops_per_chunk=4,
                    pc_base=0x1000,
                )
            )
            trace.add_kernel(
                pool_forward_kernel(
                    "miopen_pool_fwd",
                    x=pool_in,
                    y=pool_out,
                    in_width=pool_side,
                    in_height=pool_side,
                    window=3,
                    stride=2,
                    wavefront_size=self.wavefront_size,
                    ops_per_output_chunk=6,
                    pc_base=0x5000,
                )
            )
        # final classifier layer
        fc_in, fc_out, fc_batch = 64, 64, 64
        x = space.allocate("fc_in", fc_batch * fc_in)
        weights = space.allocate("fc_w", fc_out * fc_in)
        y = space.allocate("fc_out", fc_batch * fc_out)
        trace.add_kernel(
            fully_connected_forward_kernel(
                "rocblas_fc_fwd",
                x=x,
                weights=weights,
                y=y,
                batch=fc_batch,
                in_features=fc_in,
                out_features=fc_out,
                batch_tile=64,
                waves_per_workgroup=2,
                wavefront_size=self.wavefront_size,
                macs_per_cycle_per_lane=1.0,
            )
        )
        return trace

    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            arithmetic_intensity=12.0,
            load_reuse_fraction=0.4,
            store_coalescing_fraction=0.1,
            footprint_bytes=12 * 1024 * 1024 // 64,
        )
