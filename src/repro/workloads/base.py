"""Workload abstractions.

A :class:`Workload` is a generator of synthetic traces for one of the MI
benchmarks in the paper's Table 2.  It carries the paper's metadata (suite,
input configuration, kernel counts, GPU footprint) alongside the scaled
parameters actually used for trace generation, and can describe itself as a
:class:`~repro.core.advisor.WorkloadProfile` for the adaptive-policy
advisor example.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.advisor import WorkloadProfile
from repro.core.classification import WorkloadCategory
from repro.workloads.trace import WorkloadTrace

__all__ = ["WorkloadMetadata", "Workload"]


@dataclass(frozen=True)
class WorkloadMetadata:
    """Descriptive metadata straight from the paper's Table 2.

    Attributes:
        name: short name used in figures (e.g. ``"FwAct"``).
        full_name: expanded benchmark name.
        suite: benchmark suite of origin (DNNMark, DeepBench, MIOpen-benchmark).
        paper_input: the input configuration used in the paper.
        unique_kernels: distinct GPU kernels in the paper's run.
        total_kernels: total kernel launches in the paper's run.
        paper_footprint: GPU memory footprint reported in Table 2 (text).
        paper_category: the caching-sensitivity class the paper reports.
        description: one-line description of the layer's access behaviour.
    """

    name: str
    full_name: str
    suite: str
    paper_input: str
    unique_kernels: int
    total_kernels: int
    paper_footprint: str
    paper_category: WorkloadCategory
    description: str


class Workload(abc.ABC):
    """Base class for all trace-generating MI workloads.

    Args:
        scale: multiplier on the problem size (1.0 is the default scaled-down
            benchmark size described in DESIGN.md; the test suite uses
            smaller values for speed).
        wavefront_size: lanes per wavefront (64 for GCN).
    """

    #: subclasses must provide their Table 2 metadata
    metadata: WorkloadMetadata

    def __init__(self, scale: float = 1.0, wavefront_size: int = 64) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if wavefront_size <= 0:
            raise ValueError("wavefront_size must be positive")
        self.scale = scale
        self.wavefront_size = wavefront_size

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.metadata.name

    @abc.abstractmethod
    def build_trace(self) -> WorkloadTrace:
        """Generate the workload's kernel traces."""

    @abc.abstractmethod
    def profile(self) -> WorkloadProfile:
        """Rough characteristics used by the adaptive policy advisor."""

    # ------------------------------------------------------------------
    def scaled(self, value: int, minimum: int = 1) -> int:
        """Scale an element/iteration count, keeping it at least ``minimum``."""
        return max(minimum, int(round(value * self.scale)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(scale={self.scale})"
