"""MI workload models (paper Table 2).

Each of the seventeen studied workloads is a :class:`~repro.workloads.base.Workload`
that generates a synthetic :class:`~repro.workloads.trace.WorkloadTrace`
reproducing the layer's algorithmic memory-access structure: its footprint,
read/write mix, striding, intra- and inter-work-group reuse, LDS staging and
kernel count.  The traces are scaled down from the paper's inputs so a full
policy sweep completes in seconds on a laptop; DESIGN.md documents the
substitution.

Use :func:`repro.workloads.registry.get_workload` /
:func:`repro.workloads.registry.standard_suite` to obtain them.
"""

from repro.workloads.base import Workload, WorkloadMetadata
from repro.workloads.trace import (
    ComputeInstr,
    KernelTrace,
    MemInstr,
    WavefrontProgram,
    WorkloadTrace,
)
from repro.workloads.registry import (
    WORKLOAD_NAMES,
    get_workload,
    standard_suite,
    workload_metadata_table,
)

__all__ = [
    "Workload",
    "WorkloadMetadata",
    "ComputeInstr",
    "MemInstr",
    "WavefrontProgram",
    "KernelTrace",
    "WorkloadTrace",
    "WORKLOAD_NAMES",
    "get_workload",
    "standard_suite",
    "workload_metadata_table",
]
