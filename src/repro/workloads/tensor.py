"""Tensor layout and address-space allocation for trace generation.

Workload generators describe their data as :class:`Tensor` objects placed in
a shared :class:`AddressSpace`.  Tensors are laid out contiguously (row
major) and aligned to DRAM row boundaries so that distinct tensors never
share a DRAM row -- which keeps the row-locality behaviour of the generated
streams interpretable (interleaving between tensors is a property of the
access schedule, not of accidental layout overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["Tensor", "AddressSpace"]


@dataclass
class Tensor:
    """A contiguous array of fixed-size elements at a base address."""

    name: str
    num_elements: int
    element_bytes: int
    base_address: int

    def __post_init__(self) -> None:
        if self.num_elements <= 0:
            raise ValueError(f"tensor {self.name!r} must have a positive element count")
        if self.element_bytes <= 0:
            raise ValueError(f"tensor {self.name!r} must have positive element size")
        if self.base_address < 0:
            raise ValueError(f"tensor {self.name!r} must have a non-negative base address")

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.element_bytes

    @property
    def end_address(self) -> int:
        return self.base_address + self.size_bytes

    def address_of(self, index: int) -> int:
        """Byte address of element ``index`` (supports wrap-around indexing)."""
        if self.num_elements == 0:
            raise ValueError("empty tensor")
        wrapped = index % self.num_elements
        return self.base_address + wrapped * self.element_bytes

    def view(self, start_element: int, num_elements: int, name: str | None = None) -> "Tensor":
        """A sub-tensor aliasing ``num_elements`` elements from ``start_element``.

        Used by multi-head layers to address one head's slice of a packed
        tensor (the view shares the parent's storage; no new allocation).
        """
        if start_element < 0 or num_elements <= 0:
            raise ValueError("view bounds must be positive and within the tensor")
        if start_element + num_elements > self.num_elements:
            raise ValueError(
                f"view [{start_element}, {start_element + num_elements}) exceeds "
                f"tensor {self.name!r} of {self.num_elements} elements"
            )
        return Tensor(
            name=name or f"{self.name}[{start_element}:{start_element + num_elements}]",
            num_elements=num_elements,
            element_bytes=self.element_bytes,
            base_address=self.base_address + start_element * self.element_bytes,
        )

    def element_range(self, start: int, count: int) -> list[int]:
        """Byte addresses of ``count`` consecutive elements starting at ``start``."""
        if count <= 0:
            raise ValueError("count must be positive")
        return [self.address_of(start + i) for i in range(count)]

    def lines(self, line_bytes: int = 64) -> int:
        """Number of cache lines this tensor spans."""
        return (self.size_bytes + line_bytes - 1) // line_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tensor({self.name!r}, {self.num_elements}x{self.element_bytes}B "
            f"@0x{self.base_address:x})"
        )


@dataclass
class AddressSpace:
    """Bump allocator that places tensors on aligned, non-overlapping ranges."""

    alignment: int = 4096
    _cursor: int = 0
    tensors: list[Tensor] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.alignment <= 0:
            raise ValueError("alignment must be positive")

    def allocate(self, name: str, num_elements: int, element_bytes: int = 4) -> Tensor:
        """Allocate a new tensor after the previously allocated ones."""
        base = self._align(self._cursor)
        tensor = Tensor(
            name=name,
            num_elements=num_elements,
            element_bytes=element_bytes,
            base_address=base,
        )
        self._cursor = tensor.end_address
        self.tensors.append(tensor)
        return tensor

    def allocate_like(self, name: str, other: Tensor) -> Tensor:
        """Allocate a tensor with the same shape as ``other``."""
        return self.allocate(name, other.num_elements, other.element_bytes)

    def total_bytes(self) -> int:
        """Total bytes spanned by all allocations (footprint upper bound)."""
        return sum(t.size_bytes for t in self.tensors)

    def overlapping(self) -> list[tuple[str, str]]:
        """Pairs of tensors whose address ranges overlap (should be empty)."""
        conflicts: list[tuple[str, str]] = []
        ordered = sorted(self.tensors, key=lambda t: t.base_address)
        for first, second in zip(ordered, ordered[1:]):
            if first.end_address > second.base_address:
                conflicts.append((first.name, second.name))
        return conflicts

    def _align(self, address: int) -> int:
        remainder = address % self.alignment
        if remainder == 0:
            return address
        return address + (self.alignment - remainder)
