"""Top-level simulation entry points.

:func:`simulate` is the main public API: run one workload under one caching
policy and return a :class:`~repro.stats.report.RunReport`.
:class:`SimulationSession` is the underlying object for callers that want
access to the assembled components (hierarchy, GPU, statistics) -- the
examples and some tests use it directly.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig, default_config
from repro.core.policies import PolicySpec, policy_by_name
from repro.core.policy_engine import PolicyEngine
from repro.core.reuse_predictor import PredictorConfig
from repro.engine import Simulator
from repro.gpu.gpu import Gpu
from repro.memory.address_mapping import AddressMapping
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import RunReport, StatsCollector
from repro.workloads.base import Workload
from repro.workloads.trace import WorkloadTrace

__all__ = ["SimulationSession", "simulate"]


class SimulationSession:
    """One fully assembled simulated system ready to run a workload.

    Args:
        policy: the caching policy (a :class:`PolicySpec` or its name).
        config: system configuration; defaults to the scaled 8-CU system.
        predictor_config: optional reuse-predictor geometry override.
        dbi_max_rows: optional dirty-block-index capacity bound.
    """

    def __init__(
        self,
        policy: PolicySpec | str,
        config: Optional[SystemConfig] = None,
        predictor_config: Optional[PredictorConfig] = None,
        dbi_max_rows: Optional[int] = None,
    ) -> None:
        self.config = config or default_config()
        self.policy = policy_by_name(policy) if isinstance(policy, str) else policy
        self.sim = Simulator()
        self.stats = StatsCollector()
        mapping = AddressMapping(self.config.dram, line_bytes=self.config.l2.line_bytes)
        self.policy_engine = PolicyEngine(
            self.policy,
            row_of=mapping.row_id,
            predictor_config=predictor_config,
            dbi_max_rows=dbi_max_rows,
        )
        self.hierarchy = MemoryHierarchy(self.config, self.sim, self.stats, self.policy_engine)
        self.gpu = Gpu(self.config, self.sim, self.stats, self.hierarchy)

    # ------------------------------------------------------------------
    def run(self, workload: Workload | WorkloadTrace) -> RunReport:
        """Execute ``workload`` to completion and return its report."""
        trace = workload.build_trace() if isinstance(workload, Workload) else workload
        finished: list[int] = []

        def on_complete() -> None:
            finished.append(self.sim.now)

        self.gpu.run_workload(trace, on_complete=on_complete)
        self.sim.run()
        if not finished:
            raise RuntimeError(
                f"simulation of {trace.name!r} under {self.policy.name} did not complete; "
                "the event queue drained with work outstanding (model deadlock)"
            )
        cycles = finished[0]
        return RunReport.from_stats(
            workload=trace.name,
            policy=self.policy.name,
            cycles=cycles,
            stats=self.stats,
            config=self.config,
        )


def simulate(
    workload: Workload | WorkloadTrace,
    policy: PolicySpec | str,
    config: Optional[SystemConfig] = None,
    predictor_config: Optional[PredictorConfig] = None,
    dbi_max_rows: Optional[int] = None,
) -> RunReport:
    """Run one workload under one caching policy and return its report.

    This is the primary public entry point::

        from repro import simulate, get_workload, CACHE_RW
        report = simulate(get_workload("FwFc"), CACHE_RW)
        print(report.cycles, report.dram_accesses)
    """
    session = SimulationSession(
        policy=policy,
        config=config,
        predictor_config=predictor_config,
        dbi_max_rows=dbi_max_rows,
    )
    return session.run(workload)
