"""Top-level simulation entry points.

:func:`simulate` is the main public API: run one workload under one caching
policy -- static, or *online adaptive* when an
:class:`~repro.adaptive.config.AdaptiveConfig` is supplied -- and return a
:class:`~repro.stats.report.RunReport`.  A
:class:`~repro.topology.config.TopologyConfig` additionally composes the
single-device model into a multi-device NUMA system: the workload is
partitioned across the devices and the hierarchy is assembled with
distributed L2 slices, per-device DRAM partitions and an inter-device
fabric.
Passing ``streams=...`` (a :class:`~repro.streams.config.ServingMix` or a
sequence of :class:`~repro.streams.config.StreamConfig`) switches the
session into multi-tenant serving mode: every stream runs its own workload
concurrently on the one GPU, kernel-boundary synchronization is scoped to
the finishing stream's cache lines, and the report carries per-stream
sub-counters (``stream<i>.*``) for interference analysis.
:class:`SimulationSession` is the underlying object for callers that want
access to the assembled components (hierarchy, GPU, statistics, and for
adaptive runs the dynamic controller) -- the examples and some tests use it
directly.
"""

from __future__ import annotations

import time
from dataclasses import replace as dc_replace
from typing import Optional, Sequence, Union

from repro.accel.config import SamplingConfig, ShardConfig
from repro.accel.sampling import KernelSampler
from repro.adaptive.config import AdaptiveConfig
from repro.adaptive.controller import DynamicPolicyController, DynamicPolicyEngine
from repro.adaptive.phase import PhaseDetector
from repro.config import SystemConfig, default_config
from repro.core.policies import PolicySpec, policy_by_name
from repro.core.policy_engine import PolicyEngine
from repro.core.reuse_predictor import PredictorConfig
from repro.engine import Simulator
from repro.faults.config import FaultPlan
from repro.faults.injector import FaultInjector
from repro.fingerprint import fingerprint
from repro.gpu.gpu import Gpu
from repro.memory.address_mapping import AddressMapping, DeviceInterleave
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.alerts import detect_anomalies
from repro.obs.config import ObsConfig
from repro.obs.ledger import RunLedger, component_digests, run_entry
from repro.stats import RunReport, StatsCollector
from repro.streams.address_space import isolate_traces
from repro.telemetry import MetricsSampler, SimProfiler, TelemetryConfig, TraceRecorder
from repro.streams.config import ServingMix, StreamConfig
from repro.topology.config import TopologyConfig
from repro.topology.partition import partition_trace
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload
from repro.workloads.trace import WorkloadTrace

#: accepted forms of the ``streams`` argument
StreamsSpec = Union[ServingMix, Sequence[StreamConfig]]

__all__ = ["SimulationSession", "simulate"]


class SimulationSession:
    """One fully assembled simulated system ready to run a workload.

    Args:
        policy: the caching policy (a :class:`PolicySpec` or its name).
            Ignored when ``adaptive`` is given -- the adaptive
            configuration's candidates govern the run.
        config: system configuration; defaults to the scaled 8-CU system.
            With a multi-device topology the configuration describes *one
            device*: the hardware grows with the device count while the
            workload stays fixed (strong scaling).
        predictor_config: optional reuse-predictor geometry override.
        dbi_max_rows: optional dirty-block-index capacity bound.
        adaptive: when given, build the online adaptive subsystem instead
            of a static policy engine: a set-dueling monitor on the L2, a
            phase detector on the event queue, and a dynamic controller
            swapping the follower-set policy at kernel boundaries (and
            optionally mid-kernel).  The run report's policy label is the
            adaptive configuration's display name.
        topology: when given (and ``num_devices > 1``), assemble a
            multi-device NUMA system: one L2 slice + DRAM partition per
            device joined by a fabric, address interleaving across the
            partitions, device-affine wavefront dispatch, and workload
            partitioning at :meth:`run`.  A one-device topology is
            bit-identical to no topology at all.
        streams: when given (a :class:`~repro.streams.config.ServingMix`
            or a sequence of :class:`~repro.streams.config.StreamConfig`),
            run in multi-tenant serving mode: every stream's workload is
            resolved from the registry and executed concurrently under the
            mix's CU share policy, kernel boundaries are stream-scoped,
            and per-stream counters are recorded.  :meth:`run` then takes
            no workload argument.  A single-entry stream list is
            bit-identical to the plain run of that workload (modulo the
            extra ``stream0.*`` counters).
        faults: when given, a :class:`~repro.faults.config.FaultPlan`
            whose events (link degradation/outage, device failure with
            evacuation, DRAM spikes, tenant kill/restart) are injected
            deterministically during the run; the report then carries
            ``faults.*`` resilience counters.  The empty plan injects
            nothing and is bit-identical to ``faults=None``.
        sampling: when given (an enabled
            :class:`~repro.accel.config.SamplingConfig`), fast-forward
            steady-state kernel repeats: after a few measured instances
            per kernel signature the remaining repeats are skipped and
            their counters extrapolated with warmup correction, with
            per-counter error bounds on ``report.error_estimates`` and a
            summary on ``report.sampling``.  Sampling requires
            unambiguous delta attribution, so it rejects adaptive runs,
            fault plans with events, and serving mixes with more than
            one stream.  A disabled config is bit-identical to
            ``sampling=None`` (exact mode).
        telemetry: when given (a
            :class:`~repro.telemetry.TelemetryConfig`), attach the enabled
            observers -- trace recorder, metrics sampler, host profiler
            (exposed as ``session.recorder`` / ``session.sampler`` /
            ``session.profiler``).  Observers never write counters or
            change timing, so the report's results are unaffected;
            ``telemetry=None`` is the exact historical code path.
        obs: when given (a :class:`~repro.obs.ObsConfig`), attach the
            cross-run observability layer: after the run finishes, record
            a provenance entry into the run ledger and/or run the anomaly
            detectors and attach their findings to ``report.alerts``.
            Everything happens *after* ``sim.run()`` on the finished
            report, so simulated results are untouched; ``obs=None`` is
            the exact historical code path.
    """

    def __init__(
        self,
        policy: PolicySpec | str | None = None,
        config: Optional[SystemConfig] = None,
        predictor_config: Optional[PredictorConfig] = None,
        dbi_max_rows: Optional[int] = None,
        adaptive: Optional[AdaptiveConfig] = None,
        topology: Optional[TopologyConfig] = None,
        streams: Optional[StreamsSpec] = None,
        faults: Optional[FaultPlan] = None,
        sampling: Optional[SamplingConfig] = None,
        telemetry: Optional[TelemetryConfig] = None,
        obs: Optional[ObsConfig] = None,
    ) -> None:
        if policy is None and adaptive is None:
            raise ValueError("a session needs a policy or an adaptive configuration")
        self.config = config or default_config()
        self.adaptive = adaptive
        self.topology = topology
        if streams is None:
            self.streams: Optional[tuple[StreamConfig, ...]] = None
            self.streams_label = ""
        elif isinstance(streams, ServingMix):
            self.streams = streams.streams
            self.streams_label = streams.name
        else:
            self.streams = tuple(streams)
            self.streams_label = "+".join(s.display for s in self.streams)
        if self.streams is not None and not self.streams:
            raise ValueError("a serving session needs at least one stream")
        self.sim = Simulator()
        self.stats = StatsCollector()
        num_devices = topology.num_devices if topology is not None else 1
        #: address -> monitored-L2-set override for the dueling engine;
        #: stays None on the single-device path (plain global formula)
        address_to_set = None
        if num_devices == 1:
            mapping = AddressMapping(self.config.dram, line_bytes=self.config.l2.line_bytes)
            row_of = mapping.row_id
        else:
            # globally-unique row ids over the partitioned address space;
            # the per-slice components use their own local mappings (see
            # MemoryHierarchy), this one serves engine-level consumers
            interleave = DeviceInterleave(
                num_devices,
                line_bytes=self.config.l2.line_bytes,
                chunk_lines=topology.interleave_lines,
            )
            local_mapping = AddressMapping(
                self.config.dram, line_bytes=self.config.l2.line_bytes
            )

            def row_of(address: int) -> int:
                return interleave.global_row_id(local_mapping, address)

            # the slices see re-addressed local partition addresses, so
            # the duel must key leader lookups by the slice-local set
            # index -- the same one the slice hooks charge
            line_bytes = self.config.l2.line_bytes
            num_sets = self.config.l2.num_sets
            to_local = interleave.to_local

            def address_to_set(address: int) -> int:
                return (to_local(address) // line_bytes) % num_sets

        self.controller: Optional[DynamicPolicyController] = None
        self.phase_detector: Optional[PhaseDetector] = None
        if adaptive is not None:
            self.policy = adaptive.initial_policy
            self.policy_label = adaptive.name
            engine = DynamicPolicyEngine(
                adaptive,
                l2_config=self.config.l2,
                stats=self.stats,
                row_of=row_of,
                predictor_config=predictor_config,
                dbi_max_rows=dbi_max_rows,
                address_to_set=address_to_set,
            )
            self.policy_engine: PolicyEngine = engine
        else:
            self.policy = policy_by_name(policy) if isinstance(policy, str) else policy
            self.policy_label = self.policy.name
            self.policy_engine = PolicyEngine(
                self.policy,
                row_of=row_of,
                predictor_config=predictor_config,
                dbi_max_rows=dbi_max_rows,
            )

        self.hierarchy = MemoryHierarchy(
            self.config, self.sim, self.stats, self.policy_engine, topology=topology
        )
        if num_devices == 1:
            gpu_config = self.config
            cus_per_device = None
        else:
            gpu_config = dc_replace(
                self.config,
                gpu=dc_replace(self.config.gpu, num_cus=self.hierarchy.total_cus),
            )
            cus_per_device = self.config.gpu.num_cus
        self.gpu = Gpu(
            gpu_config, self.sim, self.stats, self.hierarchy, cus_per_device=cus_per_device
        )

        if adaptive is not None:
            engine = self.policy_engine
            assert isinstance(engine, DynamicPolicyEngine)
            # the duel observes the shared L2 (leader sets are L2 sets); in
            # a multi-device system every slice reports to the one monitor,
            # so leader constituencies sample all partitions
            for l2 in self.hierarchy.l2s:
                l2.set_monitor = engine.monitor
            self.phase_detector = PhaseDetector(
                self.sim,
                self.stats,
                epoch_cycles=adaptive.epoch_cycles,
                min_requests=adaptive.phase_min_requests,
                intensity_delta=adaptive.phase_intensity_delta,
                hit_rate_delta=adaptive.phase_hit_rate_delta,
                write_fraction_delta=adaptive.phase_write_fraction_delta,
            )
            self.controller = DynamicPolicyController(
                engine, self.phase_detector, self.sim, self.stats
            )
            self.hierarchy.add_kernel_boundary_hook(self.controller.on_kernel_boundary)

        self.faults = faults
        self.injector: Optional[FaultInjector] = None
        if faults is not None:
            # validates the plan against the assembled system and schedules
            # every event; the empty plan schedules nothing and is
            # bit-identical to faults=None (pinned by the equivalence tests)
            self.injector = FaultInjector(
                faults,
                self.sim,
                self.stats,
                self.gpu,
                self.hierarchy,
                num_streams=len(self.streams) if self.streams is not None else 0,
            )

        # fast-forward sampling: a disabled config is exact mode (the
        # FaultPlan normalization idiom), so only an *enabled* one pays
        # the one-None-test-per-launch filter hook
        self.sampling = sampling if sampling is not None and not sampling.empty else None
        self.kernel_sampler: Optional[KernelSampler] = None
        if self.sampling is not None:
            if adaptive is not None:
                raise ValueError(
                    "phase-sampled fast-forward does not compose with adaptive "
                    "policy control: the controller must observe every kernel "
                    "boundary, and skipped kernels have none"
                )
            if self.streams is not None and len(self.streams) > 1:
                raise ValueError(
                    "phase-sampled fast-forward needs unambiguous per-kernel "
                    "counter attribution, so it supports at most one stream; "
                    "shard a multi-stream run along the streams axis instead"
                )
            if faults is not None and not faults.empty:
                raise ValueError(
                    "phase-sampled fast-forward does not compose with fault "
                    "injection: killed/restarted kernels break repeat measurement"
                )
            self.kernel_sampler = KernelSampler(self.sampling, self.sim, self.stats)
            self.gpu.kernel_filter = self.kernel_sampler.filter

        # observability: strictly observers (no counter writes, no timing
        # changes); telemetry=None leaves every component's trace hook at
        # its None default -- the exact historical code path
        self.telemetry = telemetry
        self.recorder: Optional[TraceRecorder] = None
        self.sampler: Optional[MetricsSampler] = None
        self.profiler: Optional[SimProfiler] = None
        if telemetry is not None and telemetry.enabled:
            if telemetry.trace:
                self.recorder = TraceRecorder(
                    self.sim, max_events=telemetry.max_trace_events
                )
                self.gpu.attach_trace(self.recorder)
                self.hierarchy.trace = self.recorder
                if self.controller is not None:
                    self.controller.trace = self.recorder
                if self.phase_detector is not None:
                    self.phase_detector.add_listener(self.recorder.phase_change)
                if self.injector is not None:
                    self.injector.trace = self.recorder
                self.sim.on_finish(self.recorder.finish)
            if telemetry.metrics_interval:
                self.sampler = MetricsSampler(
                    self.sim, self.stats, telemetry.metrics_interval
                )
                self.sim.on_finish(self.sampler.finalize)
            if telemetry.profile:
                self.profiler = SimProfiler()
                self.sim.profiler = self.profiler

        # cross-run observability: post-run only (ledger append + anomaly
        # detection on the finished report); obs=None skips everything
        self.obs = obs

    # ------------------------------------------------------------------
    def run(self, workload: Workload | WorkloadTrace | None = None) -> RunReport:
        """Execute the workload (or the serving streams) and return the report."""
        self.begin(workload)
        self.sim.run()
        return self.finish()

    def begin(self, workload: Workload | WorkloadTrace | None = None) -> None:
        """Schedule the run without advancing simulated time.

        :meth:`run` is ``begin(); sim.run(); finish()``.  Shard workers
        use the pieces directly: ``begin()`` once, :meth:`step` per
        epoch, and ``finish()`` after the queue drains, so one session
        can advance in bounded slices under an external coordinator.
        """
        if self.streams is not None:
            if workload is not None:
                raise ValueError(
                    "a serving session derives its workloads from the stream "
                    "configurations; run() takes no workload argument"
                )
            self._begin_streams()
            return
        if workload is None:
            raise ValueError("run() needs a workload (or a session with streams)")
        self._wall_start = time.perf_counter()
        trace = workload.build_trace() if isinstance(workload, Workload) else workload
        if self.topology is not None:
            trace = partition_trace(
                trace, self.topology, line_bytes=self.config.l2.line_bytes
            )
        self._run_label = trace.name
        self._finished: list[int] = []
        self.gpu.run_workload(trace, on_complete=self._on_complete)
        if self.controller is not None:
            self.controller.start(lambda: self.gpu.running)
        if self.sampler is not None:
            self.sampler.start(lambda: self.gpu.running)

    def _begin_streams(self) -> None:
        """Schedule every configured stream for concurrent execution."""
        self._wall_start = time.perf_counter()
        line_bytes = self.config.l2.line_bytes
        traces = []
        for stream in self.streams:
            trace = get_workload(stream.workload, scale=stream.scale).build_trace()
            if self.topology is not None:
                trace = partition_trace(trace, self.topology, line_bytes=line_bytes)
            traces.append(trace)
        # tenants own disjoint address spaces: rebase each stream past the
        # previous ones, aligned to the interleave period so a line's home
        # device is unaffected (identity for a single stream)
        alignment = line_bytes
        if self.topology is not None:
            alignment *= self.topology.interleave_lines * self.topology.num_devices
        traces = isolate_traces(traces, alignment)
        self.hierarchy.enable_stream_accounting(len(self.streams))
        self._run_label = self.streams_label
        self._finished = []
        self.gpu.run_streams(traces, self.streams, on_complete=self._on_complete)
        if self.controller is not None:
            self.controller.start(lambda: self.gpu.running)
        if self.sampler is not None:
            self.sampler.start(lambda: self.gpu.running)

    def _on_complete(self) -> None:
        self._finished.append(self.sim.now)
        if self.injector is not None:
            self.injector.finalize()

    def step(self, until: int) -> bool:
        """Advance the event queue to simulated time ``until``.

        Returns True once the scheduled work has completed.  Bypasses
        :meth:`Simulator.run` so finish hooks fire exactly once, from
        the final drain -- the caller runs ``sim.run()`` before
        :meth:`finish` when this returns True.
        """
        remaining = self.sim.max_events - self.sim.queue.executed
        self.sim.queue.run(until=until, max_events=max(0, remaining))
        if self.sim.queue.pending and self.sim.queue.executed >= self.sim.max_events:
            raise RuntimeError(
                f"simulation exceeded the event budget of {self.sim.max_events} "
                "events; a component is probably rescheduling itself without "
                "making progress"
            )
        return bool(self._finished)

    def finish(self) -> RunReport:
        """Build the run report after the event queue has drained."""
        if not self._finished:
            if self.streams is not None:
                raise RuntimeError(
                    f"serving simulation of {self.streams_label!r} under "
                    f"{self.policy_label} did not complete; the event queue drained "
                    "with work outstanding (model deadlock)"
                )
            raise RuntimeError(
                f"simulation of {self._run_label!r} under {self.policy_label} did not complete; "
                "the event queue drained with work outstanding (model deadlock)"
            )
        cycles = self._finished[0]
        extrapolation = None
        if self.kernel_sampler is not None:
            extrapolation = self.kernel_sampler.finalize()
            cycles += extrapolation.cycle_addition
        report = RunReport.from_stats(
            workload=self._run_label,
            policy=self.policy_label,
            cycles=cycles,
            stats=self.stats,
            config=self.config,
            metrics=self.sampler.windows if self.sampler is not None else None,
        )
        if extrapolation is not None:
            self._apply_sampling(report, extrapolation)
        return self._observe(report, time.perf_counter() - self._wall_start)

    def _apply_sampling(self, report: RunReport, extrapolation) -> None:
        """Fold the fast-forward corrections into the finished report."""
        counters = report.counters
        for name, addition in extrapolation.counter_additions.items():
            if addition:
                counters[name] = counters.get(name, 0) + addition
        # absolute cycle marks follow the corrected clock, they are never
        # extrapolated additively
        if "gpu.finish_cycle" in counters:
            counters["gpu.finish_cycle"] = report.cycles
        if self.streams is not None and len(self.streams) == 1:
            if "stream0.finish_cycle" in counters:
                counters["stream0.finish_cycle"] = report.cycles
            if "stream0.cycles" in counters:
                counters["stream0.cycles"] = report.cycles - self.streams[0].launch_cycle
        estimates: dict[str, float] = {}
        for name, absolute in extrapolation.error_bounds_abs.items():
            final = report.cycles if name == "cycles" else counters.get(name, 0)
            estimates[name] = absolute / max(abs(final), 1)
        report.error_estimates = estimates
        executed_events = self.sim.queue.executed
        report.sampling = {
            "mode": "phase_sampled",
            "executed_kernels": extrapolation.executed_kernels,
            "skipped_kernels": extrapolation.skipped_kernels,
            "skipped_fraction": round(extrapolation.skipped_fraction, 6),
            "signatures": extrapolation.signatures,
            "executed_events": executed_events,
            "represented_events": executed_events + extrapolation.event_addition,
        }

    # ------------------------------------------------------------------
    # cross-run observability (post-run; never touches simulated results)
    # ------------------------------------------------------------------
    @property
    def shared_dispatch(self) -> bool:
        """Whether the run's tenants contend for shared CU dispatch.

        Partitioned tenants own their CUs and cannot crowd each other out,
        so the starvation detector is gated on this.
        """
        return self.streams is None or any(
            stream.cu_share == "shared" for stream in self.streams
        )

    def run_fingerprint(self, workload: str) -> str:
        """Stable identity of this run for the ledger.

        Covers the workload name, the policy label, and the digests of
        every configuration component -- the same inputs that decide what
        the deterministic simulator will compute -- so re-running the same
        cell yields the same fingerprint and ``diff`` can pair entries.
        """
        return fingerprint(
            {
                "workload": workload,
                "policy": self.policy_label,
                "digests": self._component_digests(),
            },
            kind="SessionRun",
        )

    def _component_digests(self) -> dict[str, Optional[str]]:
        return component_digests(
            config=self.config,
            adaptive=self.adaptive,
            topology=self.topology,
            streams=self.streams,
            faults=self.faults,
        )

    def _observe(self, report: RunReport, wall_seconds: float) -> RunReport:
        """Apply the configured observers to the finished report.

        Anomaly detection mutates only ``report.alerts`` (touched-gated in
        serialization); the ledger append writes only to the ledger file.
        Counters, cycles and metrics windows pass through untouched, so an
        observed run reports counter-for-counter identical results to a
        plain one (pinned by the equivalence suites).
        """
        obs = self.obs
        if obs is None or not obs.enabled:
            return report
        if obs.alerts is not None:
            alerts = detect_anomalies(
                report, obs.alerts, shared_dispatch=self.shared_dispatch
            )
            report.alerts = [alert.as_dict() for alert in alerts]
            if self.recorder is not None:
                for alert in alerts:
                    self.recorder.alert_event(
                        alert.kind, alert.severity, alert.message, alert.cycle
                    )
        if obs.ledger_path is not None:
            digests = self._component_digests()
            telemetry = None
            if self.telemetry is not None and self.telemetry.enabled:
                telemetry = {
                    "trace": self.recorder is not None,
                    "trace_truncated": (
                        self.recorder.truncated if self.recorder is not None else False
                    ),
                    "metrics_windows": len(report.metrics),
                    "profile": self.profiler is not None,
                }
            entry = run_entry(
                kind="run",
                fingerprint_hex=self.run_fingerprint(report.workload),
                workload=report.workload,
                policy=report.policy,
                cycles=report.cycles,
                counters=report.counters,
                digests=digests,
                wall_seconds=wall_seconds,
                events=self.sim.queue.executed,
                telemetry=telemetry,
                alerts=report.alerts or None,
                source="session",
            )
            RunLedger(obs.ledger_path).record(entry)
        return report


def simulate(
    workload: Workload | WorkloadTrace | None = None,
    policy: PolicySpec | str | None = None,
    config: Optional[SystemConfig] = None,
    predictor_config: Optional[PredictorConfig] = None,
    dbi_max_rows: Optional[int] = None,
    adaptive: Optional[AdaptiveConfig] = None,
    topology: Optional[TopologyConfig] = None,
    streams: Optional[StreamsSpec] = None,
    faults: Optional[FaultPlan] = None,
    sampling: Optional[SamplingConfig] = None,
    shards: Optional[ShardConfig] = None,
    telemetry: Optional[TelemetryConfig] = None,
    obs: Optional[ObsConfig] = None,
) -> RunReport:
    """Run one workload under one caching policy and return its report.

    This is the primary public entry point::

        from repro import simulate, get_workload, CACHE_RW
        report = simulate(get_workload("FwFc"), CACHE_RW)
        print(report.cycles, report.dram_accesses)

    Pass ``adaptive=AdaptiveConfig(...)`` instead of a policy to let the
    online controller pick (and re-pick) the policy while the workload
    runs, and/or ``topology=TopologyConfig(num_devices=...)`` to simulate
    a multi-device NUMA system.  Pass ``streams=...`` (and no workload) to
    run a multi-tenant serving mix of concurrent streams instead of a
    single workload::

        from repro import simulate, CACHE_RW, mix_by_name
        report = simulate(policy=CACHE_RW, streams=mix_by_name("mha+fwlstm"))
        print(report.per_stream)

    The fast simulation modes compose here too: ``sampling=`` enables
    phase-sampled fast-forward inside each simulated process, and
    ``shards=`` (with ``num_shards > 1``) partitions the run along its
    streams or devices into epoch-synchronized worker processes.  Both
    default to exact mode, which is bit-identical to omitting them.
    """
    if shards is not None and not shards.empty:
        # imported lazily: the shard coordinator builds sessions itself
        from repro.accel.shard import run_sharded

        return run_sharded(
            workload=workload,
            policy=policy,
            config=config,
            predictor_config=predictor_config,
            dbi_max_rows=dbi_max_rows,
            adaptive=adaptive,
            topology=topology,
            streams=streams,
            faults=faults,
            sampling=sampling,
            shards=shards,
            telemetry=telemetry,
            obs=obs,
        )
    session = SimulationSession(
        policy=policy,
        config=config,
        predictor_config=predictor_config,
        dbi_max_rows=dbi_max_rows,
        adaptive=adaptive,
        topology=topology,
        streams=streams,
        faults=faults,
        sampling=sampling,
        telemetry=telemetry,
        obs=obs,
    )
    return session.run(workload)
