"""Top-level simulation entry points.

:func:`simulate` is the main public API: run one workload under one caching
policy -- static, or *online adaptive* when an
:class:`~repro.adaptive.config.AdaptiveConfig` is supplied -- and return a
:class:`~repro.stats.report.RunReport`.
:class:`SimulationSession` is the underlying object for callers that want
access to the assembled components (hierarchy, GPU, statistics, and for
adaptive runs the dynamic controller) -- the examples and some tests use it
directly.
"""

from __future__ import annotations

from typing import Optional

from repro.adaptive.config import AdaptiveConfig
from repro.adaptive.controller import DynamicPolicyController, DynamicPolicyEngine
from repro.adaptive.phase import PhaseDetector
from repro.config import SystemConfig, default_config
from repro.core.policies import PolicySpec, policy_by_name
from repro.core.policy_engine import PolicyEngine
from repro.core.reuse_predictor import PredictorConfig
from repro.engine import Simulator
from repro.gpu.gpu import Gpu
from repro.memory.address_mapping import AddressMapping
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import RunReport, StatsCollector
from repro.workloads.base import Workload
from repro.workloads.trace import WorkloadTrace

__all__ = ["SimulationSession", "simulate"]


class SimulationSession:
    """One fully assembled simulated system ready to run a workload.

    Args:
        policy: the caching policy (a :class:`PolicySpec` or its name).
            Ignored when ``adaptive`` is given -- the adaptive
            configuration's candidates govern the run.
        config: system configuration; defaults to the scaled 8-CU system.
        predictor_config: optional reuse-predictor geometry override.
        dbi_max_rows: optional dirty-block-index capacity bound.
        adaptive: when given, build the online adaptive subsystem instead
            of a static policy engine: a set-dueling monitor on the L2, a
            phase detector on the event queue, and a dynamic controller
            swapping the follower-set policy at kernel boundaries (and
            optionally mid-kernel).  The run report's policy label is the
            adaptive configuration's display name.
    """

    def __init__(
        self,
        policy: PolicySpec | str | None = None,
        config: Optional[SystemConfig] = None,
        predictor_config: Optional[PredictorConfig] = None,
        dbi_max_rows: Optional[int] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        if policy is None and adaptive is None:
            raise ValueError("a session needs a policy or an adaptive configuration")
        self.config = config or default_config()
        self.adaptive = adaptive
        self.sim = Simulator()
        self.stats = StatsCollector()
        mapping = AddressMapping(self.config.dram, line_bytes=self.config.l2.line_bytes)

        self.controller: Optional[DynamicPolicyController] = None
        self.phase_detector: Optional[PhaseDetector] = None
        if adaptive is not None:
            self.policy = adaptive.initial_policy
            self.policy_label = adaptive.name
            engine = DynamicPolicyEngine(
                adaptive,
                l2_config=self.config.l2,
                stats=self.stats,
                row_of=mapping.row_id,
                predictor_config=predictor_config,
                dbi_max_rows=dbi_max_rows,
            )
            self.policy_engine: PolicyEngine = engine
        else:
            self.policy = policy_by_name(policy) if isinstance(policy, str) else policy
            self.policy_label = self.policy.name
            self.policy_engine = PolicyEngine(
                self.policy,
                row_of=mapping.row_id,
                predictor_config=predictor_config,
                dbi_max_rows=dbi_max_rows,
            )

        self.hierarchy = MemoryHierarchy(self.config, self.sim, self.stats, self.policy_engine)
        self.gpu = Gpu(self.config, self.sim, self.stats, self.hierarchy)

        if adaptive is not None:
            engine = self.policy_engine
            assert isinstance(engine, DynamicPolicyEngine)
            # the duel observes the shared L2 (leader sets are L2 sets)
            self.hierarchy.l2.set_monitor = engine.monitor
            self.phase_detector = PhaseDetector(
                self.sim,
                self.stats,
                epoch_cycles=adaptive.epoch_cycles,
                min_requests=adaptive.phase_min_requests,
                intensity_delta=adaptive.phase_intensity_delta,
                hit_rate_delta=adaptive.phase_hit_rate_delta,
                write_fraction_delta=adaptive.phase_write_fraction_delta,
            )
            self.controller = DynamicPolicyController(
                engine, self.phase_detector, self.sim, self.stats
            )
            self.hierarchy.add_kernel_boundary_hook(self.controller.on_kernel_boundary)

    # ------------------------------------------------------------------
    def run(self, workload: Workload | WorkloadTrace) -> RunReport:
        """Execute ``workload`` to completion and return its report."""
        trace = workload.build_trace() if isinstance(workload, Workload) else workload
        finished: list[int] = []

        def on_complete() -> None:
            finished.append(self.sim.now)

        self.gpu.run_workload(trace, on_complete=on_complete)
        if self.controller is not None:
            self.controller.start(lambda: self.gpu.running)
        self.sim.run()
        if not finished:
            raise RuntimeError(
                f"simulation of {trace.name!r} under {self.policy_label} did not complete; "
                "the event queue drained with work outstanding (model deadlock)"
            )
        cycles = finished[0]
        return RunReport.from_stats(
            workload=trace.name,
            policy=self.policy_label,
            cycles=cycles,
            stats=self.stats,
            config=self.config,
        )


def simulate(
    workload: Workload | WorkloadTrace,
    policy: PolicySpec | str | None = None,
    config: Optional[SystemConfig] = None,
    predictor_config: Optional[PredictorConfig] = None,
    dbi_max_rows: Optional[int] = None,
    adaptive: Optional[AdaptiveConfig] = None,
) -> RunReport:
    """Run one workload under one caching policy and return its report.

    This is the primary public entry point::

        from repro import simulate, get_workload, CACHE_RW
        report = simulate(get_workload("FwFc"), CACHE_RW)
        print(report.cycles, report.dram_accesses)

    Pass ``adaptive=AdaptiveConfig(...)`` instead of a policy to let the
    online controller pick (and re-pick) the policy while the workload
    runs.
    """
    session = SimulationSession(
        policy=policy,
        config=config,
        predictor_config=predictor_config,
        dbi_max_rows=dbi_max_rows,
        adaptive=adaptive,
    )
    return session.run(workload)
