"""Configuration of the online adaptive policy subsystem.

An :class:`AdaptiveConfig` fully describes one dynamic-policy run: the
candidate policies the set-dueling monitor arbitrates between, the leader
set allocation, the decision cadence and hysteresis, and the phase-detector
thresholds.  It is a frozen dataclass of primitives (plus nested
:class:`~repro.core.policies.PolicySpec` values), so
:func:`repro.fingerprint.fingerprint` gives it a stable content hash and
adaptive runs key into the persistent result store exactly like static
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.policies import STATIC_POLICIES, PolicySpec
from repro.fingerprint import fingerprint

__all__ = ["AdaptiveConfig"]


def _default_candidates() -> tuple[PolicySpec, ...]:
    return STATIC_POLICIES


@dataclass(frozen=True)
class AdaptiveConfig:
    """One online adaptive-policy configuration.

    Attributes:
        candidates: the policies the set-dueling monitor arbitrates between.
            All candidates must share the same optimization flags
            (allocation bypass / cache rinsing / PC bypass): those
            optimizations attach stateful components to the caches at
            construction time, so they cannot be dueled per-set.  A single
            candidate *pins* the controller (used by the equivalence tests).
        initial_index: index into ``candidates`` of the policy the follower
            sets start under.  ``None`` (the default) starts under the
            second candidate when there is one -- with the default
            candidate order that is CacheR, the read-caching configuration
            GPUs ship with -- and under the only candidate when pinned.
        leader_sets_per_policy: L2 leader sets dedicated to each candidate
            (clamped so leaders never claim more than half of the cache).
        min_leader_accesses: accesses a candidate's leader sets must have
            seen in the current window before its score counts as evidence;
            decisions where any candidate is below this keep the incumbent.
        decay_period: decisions between halvings of the windowed duel
            accumulators.  Decaying every decision would starve the leader
            slices (each sees well under 1% of all requests); decaying
            every few decisions gives an exponential moving window several
            epochs wide.
        commit_decisions: consecutive fully-evidenced decisions confirming
            the incumbent after which the controller *commits*: leader
            overrides and duel scoring switch off and the whole cache obeys
            the winner, so the dueling overhead (bypassed leader slices,
            blocking leader allocations) is only paid during exploration
            windows.  A kernel boundary or a phase change re-opens
            exploration.  0 disables committing (duel forever).
        hysteresis: relative score margin a challenger must win by before
            the controller switches (0.1 = 10% lower cost per access).
        stall_halfline_cycles: blocked-allocation cycles at a leader set
            that cost as much as moving one half-line downstream; this is
            what lets the duel see the caching-hurts-throughput failure
            mode of the paper's section VI (stalls), not just traffic.
        switch_at_kernel_boundaries: evaluate the duel and (possibly) swap
            the follower policy at every kernel boundary.
        duel_epoch_decisions: additionally re-evaluate the duel every
            ``epoch_cycles`` while a kernel runs.  This is what makes the
            controller converge inside the many single-kernel MI workloads
            (classic set dueling consults its PSEL counter continuously);
            disable it to restrict swaps to kernel boundaries.
        mid_kernel_switching: additionally swap when the phase detector
            fires mid-kernel.
        epoch_cycles: phase-detector sampling period in GPU cycles, also
            the cadence of epoch duel decisions.
        phase_min_requests: memory requests a sampling window must contain
            before its metrics are trusted; thinner windows are merged into
            the next sample.
        phase_intensity_delta: relative arithmetic-intensity change that
            constitutes a phase change.
        phase_hit_rate_delta: absolute L2 hit-rate change that constitutes
            a phase change.
        phase_write_fraction_delta: absolute store-fraction change that
            constitutes a phase change.
        name: display name stamped on run reports ("Dynamic" in figures).
    """

    candidates: tuple[PolicySpec, ...] = field(default_factory=_default_candidates)
    initial_index: Optional[int] = None
    leader_sets_per_policy: int = 16
    min_leader_accesses: int = 32
    decay_period: int = 4
    commit_decisions: int = 2
    hysteresis: float = 0.05
    stall_halfline_cycles: int = 25
    switch_at_kernel_boundaries: bool = True
    duel_epoch_decisions: bool = True
    mid_kernel_switching: bool = False
    epoch_cycles: int = 1_000
    phase_min_requests: int = 256
    phase_intensity_delta: float = 0.5
    phase_hit_rate_delta: float = 0.15
    phase_write_fraction_delta: float = 0.15
    name: str = "Dynamic"

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError("adaptive config needs at least one candidate policy")
        names = [policy.name for policy in self.candidates]
        if len(set(names)) != len(names):
            raise ValueError(f"candidate policy names must be unique, got {names}")
        if self.initial_index is not None and not (
            0 <= self.initial_index < len(self.candidates)
        ):
            raise ValueError(
                f"initial_index {self.initial_index} out of range for "
                f"{len(self.candidates)} candidates"
            )
        flags = {
            (p.allocation_bypass, p.cache_rinsing, p.pc_bypass) for p in self.candidates
        }
        if len(flags) != 1:
            raise ValueError(
                "all candidate policies must share the same optimization flags "
                "(allocation bypass / cache rinsing / PC bypass); these attach "
                "stateful cache components that cannot be dueled per-set"
            )
        if self.leader_sets_per_policy < 1:
            raise ValueError("leader_sets_per_policy must be at least 1")
        if self.min_leader_accesses < 1:
            raise ValueError("min_leader_accesses must be at least 1")
        if self.decay_period < 1:
            raise ValueError("decay_period must be at least 1")
        if self.commit_decisions < 0:
            raise ValueError("commit_decisions must be non-negative")
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if self.stall_halfline_cycles < 1:
            raise ValueError("stall_halfline_cycles must be positive")
        if self.epoch_cycles < 1:
            raise ValueError("epoch_cycles must be positive")
        if self.phase_min_requests < 1:
            raise ValueError("phase_min_requests must be at least 1")
        for threshold in (
            self.phase_intensity_delta,
            self.phase_hit_rate_delta,
            self.phase_write_fraction_delta,
        ):
            if threshold <= 0:
                raise ValueError("phase-change thresholds must be positive")

    # ------------------------------------------------------------------
    @property
    def pinned(self) -> bool:
        """True when there is nothing to duel (single candidate)."""
        return len(self.candidates) == 1

    @property
    def start_index(self) -> int:
        """Resolved index of the starting policy (see ``initial_index``)."""
        if self.initial_index is not None:
            return self.initial_index
        return min(1, len(self.candidates) - 1)

    @property
    def initial_policy(self) -> PolicySpec:
        """The policy the follower sets start under."""
        return self.candidates[self.start_index]

    def fingerprint(self) -> str:
        """Stable content hash over every adaptive parameter.

        Used by :meth:`repro.experiments.jobs.JobSpec.fingerprint` so that
        two adaptive runs differing in any knob (candidates, leader sets,
        thresholds, ...) never share a result-store entry.
        """
        return fingerprint(self)
