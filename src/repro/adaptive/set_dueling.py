"""Set dueling: leader sets score competing policies at runtime.

Classic set dueling (Qureshi et al., DIP) dedicates a few *leader sets* in
the cache to each competing policy and lets the rest of the cache -- the
*follower sets* -- obey whichever leader is currently winning.  Here the
competitors are whole :class:`~repro.core.policies.PolicySpec`s rather than
insertion policies: a request that maps to a leader set is annotated with
that leader's caching decision regardless of the active policy, so every
candidate keeps producing fresh evidence even after the controller has
converged.

The score combines the two costs the paper's static characterization shows
separate the policies: *downstream memory traffic* (what bypassing pays)
and *allocation stall cycles* (what caching pays on throughput-sensitive
workloads -- a pure traffic score cannot tell Uncached from CacheR on a
streaming kernel, because both move every line downstream exactly once).
The denominator is *demand* accesses, counted when the policy engine
annotates a request -- not L2-observed accesses, which would erase exactly
the benefit being measured (a caching leader whose slice hits in the L1
never shows up at the L2 at all).  Traffic is counted in half-line units:

========================  =====================================  =======
observed event            downstream cost                        units
========================  =====================================  =======
hit (L1 or L2, or any     none                                   0
coalesced access)
load miss                 one line fetched from memory           2
write-combining store     one deferred writeback, amortized      1
allocate                  (the line may coalesce further stores)
bypass (load or store)    one line moved past the cache          2
========================  =====================================  =======

Stall cycles observed at a leader set (a blocked allocation) are converted
into the same units at ``stall_halfline_cycles`` cycles per half-line --
roughly the data-bus occupancy a line transfer costs -- so one score,
``(traffic + stalls) / demand accesses``, ranks both failure modes and a
lower score wins.  All accounting goes through pre-bound
:class:`~repro.stats.counters.Counter` handles resolved once in
``__init__`` -- the PR-2 hot-path idiom -- so monitored runs never hash
counter names per access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.policies import PolicySpec
from repro.stats import StatsCollector

__all__ = ["DuelScore", "SetDuelingMonitor"]

#: downstream cost of a load miss or a bypass, in half-line units
COST_FETCH = 2
#: amortized downstream cost of a write-combining store allocate
COST_STORE_ALLOCATE = 1
#: default stall-to-traffic conversion: this many blocked cycles at a
#: leader set cost as much as moving one half-line downstream
STALL_HALFLINE_CYCLES = 25
#: extra half-lines a *remote* (cross-fabric) access costs on top of its
#: traffic: the request crosses the inter-device fabric once regardless of
#: whether the home slice then hits, so remote and local traffic score
#: separately.  Only multi-device hierarchies ever record this.
COST_REMOTE_HOP = 1


@dataclass(frozen=True)
class DuelScore:
    """Windowed score of one candidate's leader sets."""

    policy: str
    accesses: int
    traffic: int
    stall_halflines: int = 0
    remote_halflines: int = 0

    @property
    def cost_per_access(self) -> float:
        """Half-lines of traffic-plus-stall-plus-fabric cost per demand
        access (lower wins).  ``remote_halflines`` is zero outside
        multi-device topologies, where local and remote traffic are scored
        separately because a remote line costs a fabric crossing on top of
        whatever the home slice then does with it."""
        if not self.accesses:
            return 0.0
        return (self.traffic + self.stall_halflines + self.remote_halflines) / self.accesses


class SetDuelingMonitor:
    """Assigns L2 leader sets to candidate policies and scores them.

    Args:
        candidates: the competing policies, in duel order.
        num_sets: number of sets in the monitored cache.
        stats: shared counter store (``adaptive.duel.*`` namespace).
        leader_sets_per_policy: leader sets dedicated to each candidate.
        writeback: whether the monitored cache holds dirty lines (store
            hits and allocates are then free at observation time, their
            writeback cost amortized by :data:`COST_STORE_ALLOCATE`).
        stall_halfline_cycles: blocked-allocation cycles equivalent to one
            half-line of downstream traffic in the score.
    """

    def __init__(
        self,
        candidates: Sequence[PolicySpec],
        num_sets: int,
        stats: StatsCollector,
        leader_sets_per_policy: int = 4,
        writeback: bool = True,
        stall_halfline_cycles: int = STALL_HALFLINE_CYCLES,
    ) -> None:
        if not candidates:
            raise ValueError("set dueling needs at least one candidate policy")
        if leader_sets_per_policy < 1:
            raise ValueError("leader_sets_per_policy must be at least 1")
        if stall_halfline_cycles < 1:
            raise ValueError("stall_halfline_cycles must be positive")
        self.candidates = tuple(candidates)
        self.num_sets = num_sets
        self.writeback = writeback
        self.stall_halfline_cycles = stall_halfline_cycles
        #: cost recording is active only during exploration windows; the
        #: controller disables it while committed, when "leader" sets obey
        #: the active policy and their traffic is not candidate evidence
        self.enabled = True
        if num_sets < 2 * len(self.candidates):
            raise ValueError(
                f"a {num_sets}-set cache cannot duel {len(self.candidates)} "
                "policies: follower sets must outnumber leader sets"
            )
        # leaders may never claim more than half the cache (small test
        # configurations clamp rather than fail)
        per_policy = max(1, min(leader_sets_per_policy, num_sets // (2 * len(self.candidates))))
        self.leader_sets_per_policy = per_policy
        num_leaders = len(self.candidates) * per_policy
        # leaders are grouped into constituencies of C *adjacent* sets, one
        # per candidate, spread across the index space.  Adjacency matters:
        # tensors sit on aligned boundaries, so hot lines (e.g. broadcast
        # per-channel parameters) cluster in a few consecutive sets -- a
        # strided assignment can hand all of them to one candidate, which
        # then wins the duel on address luck rather than policy merit.  The
        # candidate order also rotates per constituency so no candidate
        # always samples the first (hottest, tensor-base) set of a cluster.
        num_candidates = len(self.candidates)
        constituency_stride = num_sets // per_policy
        self._leader_of: dict[int, int] = {}
        for slot in range(per_policy):
            base = slot * constituency_stride
            for offset in range(num_candidates):
                self._leader_of[base + offset] = (offset + slot) % num_candidates

        # windowed accumulators plus cumulative report counters, all
        # resolved once (counter-handle idiom)
        self._accesses = [0] * len(self.candidates)
        self._traffic = [0] * len(self.candidates)
        self._stall_cycles = [0] * len(self.candidates)
        self._remote = [0] * len(self.candidates)
        counter = stats.counter
        self._c_accesses = [
            counter(f"adaptive.duel.{policy.name}.leader_accesses")
            for policy in self.candidates
        ]
        self._c_traffic = [
            counter(f"adaptive.duel.{policy.name}.leader_traffic")
            for policy in self.candidates
        ]
        self._c_stalls = [
            counter(f"adaptive.duel.{policy.name}.leader_stall_cycles")
            for policy in self.candidates
        ]
        self._c_remote = [
            counter(f"adaptive.duel.{policy.name}.leader_remote_traffic")
            for policy in self.candidates
        ]

    # ------------------------------------------------------------------
    # leader topology
    # ------------------------------------------------------------------
    def leader_index(self, set_index: int) -> Optional[int]:
        """Candidate index whose leader set this is, or ``None`` (follower)."""
        return self._leader_of.get(set_index)

    def leader_policies(self) -> dict[int, PolicySpec]:
        """Mapping of leader set index to the policy that set obeys."""
        return {
            set_index: self.candidates[candidate]
            for set_index, candidate in self._leader_of.items()
        }

    # ------------------------------------------------------------------
    # hot-path recording
    # ------------------------------------------------------------------
    def record_demand(self, candidate: int) -> None:
        """One GPU demand access annotated for leader ``candidate``.

        Called by the dynamic policy engine (which already resolved the
        leader during annotation), *before* any cache filtering: this is
        the score denominator, so a caching leader whose slice is absorbed
        by the L1 is rewarded rather than invisible.
        """
        self._accesses[candidate] += 1
        self._c_accesses[candidate].add()

    def record_miss(self, set_index: int, is_store: bool) -> None:
        if not self.enabled:
            return
        candidate = self._leader_of.get(set_index)
        if candidate is None:
            return
        cost = COST_STORE_ALLOCATE if (is_store and self.writeback) else COST_FETCH
        self._traffic[candidate] += cost
        self._c_traffic[candidate].add(cost)

    def record_bypass(self, set_index: int, is_store: bool) -> None:
        if not self.enabled:
            return
        candidate = self._leader_of.get(set_index)
        if candidate is None:
            return
        self._traffic[candidate] += COST_FETCH
        self._c_traffic[candidate].add(COST_FETCH)

    def record_remote(self, set_index: int) -> None:
        """One cross-fabric access arrived at a leader set's home slice.

        Called by the multi-device hierarchy when it routes a request to a
        remote L2 slice, keyed by the *local* set index the slice will
        use.  Remote traffic accumulates separately from the ordinary
        miss/bypass traffic so the duel can see that a caching candidate
        which keeps remote lines resident saves fabric crossings, not just
        DRAM accesses.  Never called in single-device systems.
        """
        if not self.enabled:
            return
        candidate = self._leader_of.get(set_index)
        if candidate is None:
            return
        self._remote[candidate] += COST_REMOTE_HOP
        self._c_remote[candidate].add(COST_REMOTE_HOP)

    def record_stall(self, set_index: int, cycles: int) -> None:
        """Charge a blocked allocation's wait to the set's leader (if any)."""
        if not self.enabled:
            return
        candidate = self._leader_of.get(set_index)
        if candidate is None or cycles <= 0:
            return
        self._stall_cycles[candidate] += cycles
        self._c_stalls[candidate].add(cycles)

    # ------------------------------------------------------------------
    # decision-time interface (called by the controller)
    # ------------------------------------------------------------------
    def scores(self) -> list[DuelScore]:
        """Current windowed score of every candidate, in duel order."""
        return [
            DuelScore(
                policy=policy.name,
                accesses=accesses,
                traffic=traffic,
                stall_halflines=stalls // self.stall_halfline_cycles,
                remote_halflines=remote,
            )
            for policy, accesses, traffic, stalls, remote in zip(
                self.candidates,
                self._accesses,
                self._traffic,
                self._stall_cycles,
                self._remote,
            )
        ]

    def decay(self) -> None:
        """Halve the windowed accumulators (exponential moving window).

        Called periodically by the controller so old evidence fades while
        short kernels still accumulate enough leader traffic to reach a
        verdict -- a hard reset would starve many-kernel workloads whose
        kernels individually touch only a few leader sets.
        """
        self._accesses = [value >> 1 for value in self._accesses]
        self._traffic = [value >> 1 for value in self._traffic]
        self._stall_cycles = [value >> 1 for value in self._stall_cycles]
        self._remote = [value >> 1 for value in self._remote]

    def reset(self) -> None:
        """Clear the windowed accumulators (start of an exploration window).

        Costs observed while the controller was committed (leader sets then
        obey the active policy, so their traffic is not evidence about
        their own candidate) must not leak into the next duel.
        """
        self._accesses = [0] * len(self.candidates)
        self._traffic = [0] * len(self.candidates)
        self._stall_cycles = [0] * len(self.candidates)
        self._remote = [0] * len(self.candidates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(policy.name for policy in self.candidates)
        return f"SetDuelingMonitor([{names}], leaders={len(self._leader_of)})"
