"""Online adaptive cache-policy selection.

The paper's conclusion calls for "smart and adaptive cache policies" for MI
workloads; the offline :class:`~repro.core.advisor.PolicyAdvisor` already
recommends a static policy from pre-measured profiles.  This package closes
the loop *at runtime*: a simulation can start with no knowledge of the
workload and converge on the right caching policy while it executes.

Three cooperating components implement the mechanism:

* :class:`~repro.adaptive.set_dueling.SetDuelingMonitor` -- dedicates a few
  L2 *leader sets* to each candidate policy and scores the downstream
  memory traffic each one generates (set dueling, after Qureshi's DIP).
* :class:`~repro.adaptive.phase.PhaseDetector` -- watches windowed counters
  (arithmetic intensity, L2 hit rate, write coalescing) and emits
  phase-change events on the simulator's event queue.
* :class:`~repro.adaptive.controller.DynamicPolicyController` -- consumes
  both signals and swaps the active policy for the *follower* sets at
  kernel boundaries (and, optionally, mid-kernel at phase changes).

:class:`~repro.adaptive.config.AdaptiveConfig` describes one adaptive
configuration and is content-fingerprinted, so adaptive runs cache in the
persistent result store exactly like static runs do.
"""

from repro.adaptive.config import AdaptiveConfig
from repro.adaptive.controller import DynamicPolicyController, DynamicPolicyEngine
from repro.adaptive.phase import PhaseDetector, PhaseSample, phase_changed
from repro.adaptive.set_dueling import DuelScore, SetDuelingMonitor

__all__ = [
    "AdaptiveConfig",
    "DuelScore",
    "DynamicPolicyController",
    "DynamicPolicyEngine",
    "PhaseDetector",
    "PhaseSample",
    "SetDuelingMonitor",
    "phase_changed",
]
