"""Runtime phase detection from windowed hardware counters.

MI workloads are built from kernels with very different memory behaviour
(streaming elementwise layers next to reuse-heavy GEMMs next to
write-dominated backward passes), and a policy chosen for one phase can be
wrong for the next.  :class:`PhaseDetector` samples the shared counter
store on a fixed cycle period, derives three windowed metrics --

* **arithmetic intensity**: vector operations per memory request,
* **L2 hit rate**: hits per L2 access,
* **write fraction**: stores per memory request (a proxy for
  write-coalescing opportunity),

-- and compares them against the metrics of the current phase.  When any
metric moves beyond its configured threshold the detector declares a phase
change and notifies its listeners *via the simulator's event queue* (a
zero-delay event), so listeners observe the change at a well-defined point
in simulated time.

The detector only ever *reads* pre-bound counter handles; it writes its own
``adaptive.phase_*`` counters through handles resolved once in
``__init__`` (the PR-2 idiom), and it never blocks the event queue from
draining: the sampling loop re-arms itself only while the supplied
``is_active`` predicate holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.engine import Simulator
from repro.stats import StatsCollector

__all__ = ["PhaseDetector", "PhaseSample", "phase_changed"]


@dataclass(frozen=True)
class PhaseSample:
    """Metrics of one completed sampling window."""

    cycle: int
    requests: int
    arithmetic_intensity: float
    hit_rate: float
    write_fraction: float


def phase_changed(
    reference: PhaseSample,
    sample: PhaseSample,
    intensity_delta: float,
    hit_rate_delta: float,
    write_fraction_delta: float,
) -> bool:
    """Whether ``sample`` represents a different phase than ``reference``.

    Arithmetic intensity is compared relatively (intensities span orders
    of magnitude across layers); hit rate and write fraction are bounded
    ratios and compare absolutely.  Shared by :class:`PhaseDetector` and
    the fast-forward sampler in :mod:`repro.accel.sampling`, which uses
    the same thresholds to decide when repeated kernels are steady.
    """
    base_intensity = max(reference.arithmetic_intensity, 1e-9)
    relative_intensity = (
        abs(sample.arithmetic_intensity - reference.arithmetic_intensity)
        / base_intensity
    )
    if relative_intensity > intensity_delta:
        return True
    if abs(sample.hit_rate - reference.hit_rate) > hit_rate_delta:
        return True
    return abs(sample.write_fraction - reference.write_fraction) > write_fraction_delta


class PhaseDetector:
    """Watches windowed counters and emits phase-change events.

    Args:
        sim: shared simulator (sampling events and listener notification).
        stats: shared counter store; the detector reads the GPU and L2
            counters and writes the ``adaptive.phase_*`` namespace.
        epoch_cycles: sampling period in GPU cycles.
        min_requests: memory requests a window must contain before its
            metrics are trusted; thinner windows merge into the next one.
        intensity_delta: relative arithmetic-intensity change that fires.
        hit_rate_delta: absolute hit-rate change that fires.
        write_fraction_delta: absolute write-fraction change that fires.
    """

    def __init__(
        self,
        sim: Simulator,
        stats: StatsCollector,
        epoch_cycles: int = 20_000,
        min_requests: int = 256,
        intensity_delta: float = 0.5,
        hit_rate_delta: float = 0.15,
        write_fraction_delta: float = 0.15,
    ) -> None:
        if epoch_cycles < 1:
            raise ValueError("epoch_cycles must be positive")
        if min_requests < 1:
            raise ValueError("min_requests must be at least 1")
        self.sim = sim
        self.epoch_cycles = epoch_cycles
        self.min_requests = min_requests
        self.intensity_delta = intensity_delta
        self.hit_rate_delta = hit_rate_delta
        self.write_fraction_delta = write_fraction_delta

        counter = stats.counter
        # inputs (read-only handles; reading never marks a counter touched)
        self._h_vector_ops = counter("gpu.vector_ops")
        self._h_mem_requests = counter("gpu.mem_requests")
        self._h_store_requests = counter("gpu.store_requests")
        self._h_l2_hits = counter("l2.hits")
        self._h_l2_accesses = counter("l2.accesses")
        # outputs
        self._c_samples = counter("adaptive.phase_samples")
        self._c_changes = counter("adaptive.phase_changes")

        self._listeners: List[Callable[[PhaseSample], None]] = []
        self._last = (0, 0, 0, 0, 0)  # cumulative marks at the window start
        self._phase: Optional[PhaseSample] = None
        self._started = False

    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[PhaseSample], None]) -> None:
        """Register a callback invoked (as a queue event) on phase changes."""
        self._listeners.append(listener)

    @property
    def current_phase(self) -> Optional[PhaseSample]:
        """Metrics of the phase the detector currently believes it is in."""
        return self._phase

    # ------------------------------------------------------------------
    def start(self, is_active: Callable[[], bool]) -> None:
        """Begin periodic sampling; stops once ``is_active`` returns False.

        The loop re-arms itself one epoch at a time, so after the workload
        completes at most one trailing (no-op) sample remains in the queue
        and the simulation still drains.
        """
        if self._started:
            raise RuntimeError("phase detector already started")
        self._started = True
        self._last = self._cumulative()

        def tick() -> None:
            if not is_active():
                return
            self._sample()
            self.sim.schedule(self.epoch_cycles, tick)

        self.sim.schedule(self.epoch_cycles, tick)

    # ------------------------------------------------------------------
    def _cumulative(self) -> tuple[int, int, int, int, int]:
        return (
            self._h_vector_ops.value,
            self._h_mem_requests.value,
            self._h_store_requests.value,
            self._h_l2_hits.value,
            self._h_l2_accesses.value,
        )

    def _sample(self) -> None:
        current = self._cumulative()
        ops, requests, stores, hits, accesses = (
            now - before for now, before in zip(current, self._last)
        )
        if requests < self.min_requests:
            # too thin to judge; merge into the next window
            return
        self._c_samples.add()
        self._last = current
        sample = PhaseSample(
            cycle=self.sim.now,
            requests=requests,
            arithmetic_intensity=ops / requests,
            hit_rate=(hits / accesses) if accesses else 0.0,
            write_fraction=stores / requests,
        )
        reference = self._phase
        if reference is None:
            self._phase = sample
            return
        if self._changed(reference, sample):
            self._phase = sample
            self._c_changes.add()
            for listener in self._listeners:
                # notify through the event queue so listeners run at a
                # well-defined simulated time, after this sampling event
                self.sim.schedule(0, lambda cb=listener: cb(sample))

    def _changed(self, reference: PhaseSample, sample: PhaseSample) -> bool:
        return phase_changed(
            reference,
            sample,
            intensity_delta=self.intensity_delta,
            hit_rate_delta=self.hit_rate_delta,
            write_fraction_delta=self.write_fraction_delta,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseDetector(epoch={self.epoch_cycles}, listeners={len(self._listeners)})"
