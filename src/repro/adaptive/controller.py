"""Dynamic policy selection: the engine and the controller.

Two classes close the adaptive loop:

* :class:`DynamicPolicyEngine` extends the static
  :class:`~repro.core.policy_engine.PolicyEngine` with per-set policy
  resolution: requests mapping to a *leader* set are always annotated with
  that leader's candidate policy (so the duel keeps collecting evidence for
  every candidate), while requests mapping to *follower* sets obey the
  currently active policy, which the controller may swap at runtime.
* :class:`DynamicPolicyController` consumes the set-dueling scores and the
  phase-detector events and performs the actual swaps: at every kernel
  boundary (where the coherence protocol flushes dirty data anyway, making
  a policy change free of correctness concerns) and, optionally, mid-kernel
  when a phase change fires.

A controller whose configuration has a single candidate is *pinned*: it
never swaps, and the annotated flags are identical to the static engine's
for every request.  The integration suite exploits this to prove that the
adaptive machinery is timing-neutral (see
``tests/integration/test_core_equivalence.py``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.adaptive.config import AdaptiveConfig
from repro.adaptive.phase import PhaseDetector, PhaseSample
from repro.adaptive.set_dueling import SetDuelingMonitor
from repro.config import CacheConfig
from repro.core.policies import PolicySpec
from repro.core.policy_engine import PolicyEngine
from repro.core.reuse_predictor import PredictorConfig
from repro.engine import Simulator
from repro.stats import StatsCollector

__all__ = ["DynamicPolicyEngine", "DynamicPolicyController"]


class DynamicPolicyEngine(PolicyEngine):
    """A policy engine whose per-request decision is set-aware and mutable.

    Args:
        adaptive: the adaptive configuration (candidates, leader geometry).
        l2_config: geometry of the monitored L2 (leader sets are L2 sets).
        stats: shared counter store for the embedded dueling monitor.
        row_of: DRAM row mapping, required when the candidates enable cache
            rinsing (all candidates share optimization flags by
            construction, so the optimization components are created once,
            exactly as the static engine would).
        predictor_config / dbi_max_rows: optional component overrides,
            forwarded to :class:`PolicyEngine`.
        address_to_set: optional override of the address -> monitored-set
            mapping.  Multi-device sessions pass the *slice-local* set
            index here (the L2 slices operate on re-addressed local
            partition addresses), so the leader a request is annotated
            for at demand time is the same leader whose set the home
            slice's miss/bypass/stall/remote hooks will charge --
            otherwise duel numerators and denominators would be keyed in
            different index spaces.  ``None`` (every single-device run)
            keeps the plain global formula.
    """

    def __init__(
        self,
        adaptive: AdaptiveConfig,
        l2_config: CacheConfig,
        stats: StatsCollector,
        row_of: Optional[Callable[[int], int]] = None,
        predictor_config: Optional[PredictorConfig] = None,
        dbi_max_rows: Optional[int] = None,
        address_to_set: Optional[Callable[[int], int]] = None,
    ) -> None:
        super().__init__(
            adaptive.initial_policy,
            row_of=row_of,
            predictor_config=predictor_config,
            dbi_max_rows=dbi_max_rows,
        )
        self.adaptive = adaptive
        self.monitor = SetDuelingMonitor(
            adaptive.candidates,
            num_sets=l2_config.num_sets,
            stats=stats,
            leader_sets_per_policy=adaptive.leader_sets_per_policy,
            writeback=l2_config.writeback,
            stall_halfline_cycles=adaptive.stall_halfline_cycles,
        )
        self._leader_specs: dict[int, PolicySpec] = self.monitor.leader_policies()
        self._leader_index: dict[int, int] = {
            set_index: self.monitor.leader_index(set_index)
            for set_index in self._leader_specs
        }
        self._line_bytes = l2_config.line_bytes
        self._num_sets = l2_config.num_sets
        self._address_to_set = address_to_set
        self._active_index = adaptive.start_index
        self._active_spec = adaptive.initial_policy
        # pinned configurations have nothing to learn, so they never pay
        # the leader-set overrides; the controller re-opens exploration
        # when there is an actual duel to run
        self._exploring = not adaptive.pinned

    # ------------------------------------------------------------------
    @property
    def active_index(self) -> int:
        """Index (into the candidates) of the follower sets' policy."""
        return self._active_index

    @property
    def active_policy(self) -> PolicySpec:
        """The policy the follower sets currently obey."""
        return self._active_spec

    def set_active(self, index: int) -> None:
        """Swap the follower sets to candidate ``index`` (controller use)."""
        self._active_index = index
        self._active_spec = self.adaptive.candidates[index]
        # keep the base-class attribute in sync for describe()/reporting
        self.policy = self._active_spec

    @property
    def exploring(self) -> bool:
        """Whether leader sets currently override the active policy."""
        return self._exploring

    def set_exploring(self, exploring: bool) -> None:
        """Toggle the leader-set overrides (controller use).

        While committed (not exploring) every set obeys the active policy
        and annotation takes the same path as the static engine -- the
        dueling overhead (bypassed leader slices, blocking leader
        allocations) drops to zero between exploration windows.
        """
        self._exploring = exploring

    # ------------------------------------------------------------------
    def annotate(self, request):  # type: ignore[override]
        """Stamp ``request`` with the flags of its set's governing policy.

        Leader sets always obey their own candidate; follower sets obey the
        active policy.  The leader lookup keys on the request's *L2* set
        index; the L1 flag follows the same per-request policy, which is
        what a hardware implementation broadcasting the duel verdict to the
        L1s would do.
        """
        if self._exploring:
            if self._address_to_set is None:
                set_index = (request.address // self._line_bytes) % self._num_sets
            else:
                set_index = self._address_to_set(request.address)
            candidate = self._leader_index.get(set_index)
        else:
            candidate = None
        if candidate is None:
            spec = self._active_spec
        else:
            spec = self._leader_specs[set_index]
            self.monitor.record_demand(candidate)
        return self.stamp(request, spec)

    def describe(self) -> dict[str, object]:
        """Static summary plus the adaptive state."""
        summary = super().describe()
        summary["adaptive"] = True
        summary["candidates"] = [policy.name for policy in self.adaptive.candidates]
        summary["active_policy"] = self._active_spec.name
        return summary


class DynamicPolicyController:
    """Arbitrates the duel and swaps the active policy at safe points.

    Args:
        engine: the dynamic policy engine whose active policy is managed.
        phase_detector: source of mid-kernel phase-change events.
        sim: shared simulator (decision timestamps, detector lifecycle).
        stats: shared counter store (``adaptive.*`` namespace).

    The controller records every decision and swap both as counters (so
    they land in run reports) and in :attr:`history` (cycle, policy name)
    for tests and the CLI.
    """

    def __init__(
        self,
        engine: DynamicPolicyEngine,
        phase_detector: PhaseDetector,
        sim: Simulator,
        stats: StatsCollector,
    ) -> None:
        self.engine = engine
        self.monitor = engine.monitor
        self.phase_detector = phase_detector
        self.sim = sim
        self.config = engine.adaptive
        counter = stats.counter
        self._c_decisions = counter("adaptive.decisions")
        self._c_switches = counter("adaptive.switches")
        self._c_commits = counter("adaptive.commits")
        self._c_explorations = counter("adaptive.explorations")
        self._c_kernels_under = [
            counter(f"adaptive.kernels_under.{policy.name}")
            for policy in self.config.candidates
        ]
        self.history: list[tuple[int, str]] = [(0, engine.active_policy.name)]
        self._decisions_since_decay = 0
        self._stable_decisions = 0
        #: optional telemetry TraceRecorder (one None-test per swap /
        #: explore / commit -- controller decisions, never cache events)
        self.trace = None
        if self.config.pinned:
            # nothing to learn: no leader overrides (engine construction)
            # and no cost recording either
            self.monitor.enabled = False
        else:
            # a phase change always re-opens a committed duel; whether it
            # may additionally swap mid-decision is gated in the handler
            phase_detector.add_listener(self._on_phase_change)

    # ------------------------------------------------------------------
    def start(self, is_active: Callable[[], bool]) -> None:
        """Begin phase sampling (and epoch decisions) for the workload.

        The epoch-decision loop re-arms itself only while ``is_active``
        holds, so it cannot keep the event queue from draining.
        """
        self.phase_detector.start(is_active)
        if self.config.duel_epoch_decisions and not self.config.pinned:

            def tick() -> None:
                if not is_active():
                    return
                self._decide()
                self.sim.schedule(self.config.epoch_cycles, tick)

            self.sim.schedule(self.config.epoch_cycles, tick)

    def on_kernel_boundary(self) -> None:
        """Kernel completed: account it and re-open the duel.

        Invoked by the memory hierarchy at the start of its kernel-boundary
        synchronization.  The next kernel may behave nothing like the last
        one, so a committed controller returns to exploration here; an
        exploring controller gets a decision point, so a swap decided here
        governs the next kernel's requests while the flush of the previous
        kernel's dirty data is still charged to the policy that created it.
        """
        self._c_kernels_under[self.engine.active_index].add()
        if self.config.pinned:
            return
        if not self.engine.exploring:
            self._explore()
        elif self.config.switch_at_kernel_boundaries:
            self._decide()

    def _on_phase_change(self, sample: PhaseSample) -> None:
        """A phase change re-opens a committed duel; mid-kernel swaps opt in.

        Re-opening is unconditional -- a committed controller would
        otherwise ride a stale winner through the new phase until the next
        kernel boundary, which single-kernel workloads never reach.  An
        *immediate* re-decision on an already-open duel is the optional
        ``mid_kernel_switching`` behaviour.
        """
        if self.config.pinned:
            return
        if not self.engine.exploring:
            self._explore()
        elif self.config.mid_kernel_switching:
            self._decide()

    # ------------------------------------------------------------------
    def _explore(self) -> None:
        """Re-open an exploration window (stale evidence is discarded)."""
        self.monitor.reset()
        self.monitor.enabled = True
        self.engine.set_exploring(True)
        self._stable_decisions = 0
        self._decisions_since_decay = 0
        self._c_explorations.add()
        if self.trace is not None:
            self.trace.adaptive_event("explore")

    def _commit(self) -> None:
        """Close the duel: the whole cache obeys the winner, overhead-free."""
        self.engine.set_exploring(False)
        self.monitor.enabled = False
        self._stable_decisions = 0
        self._c_commits.add()
        if self.trace is not None:
            self.trace.adaptive_event("commit")

    def _decide(self) -> None:
        """One duel evaluation: swap if a challenger clearly wins."""
        if self.config.pinned or not self.engine.exploring:
            return
        self._c_decisions.add()
        scores = self.monitor.scores()
        if all(s.accesses >= self.config.min_leader_accesses for s in scores):
            per_access = [s.cost_per_access for s in scores]
            active = self.engine.active_index
            best = min(range(len(per_access)), key=per_access.__getitem__)
            # the challenger must beat the incumbent by the hysteresis
            # margin; an incumbent with zero cost is unbeatable
            if best != active and per_access[best] < per_access[active] * (
                1.0 - self.config.hysteresis
            ):
                self._swap(best)
            else:
                self._stable_decisions += 1
                if (
                    self.config.commit_decisions
                    and self._stable_decisions >= self.config.commit_decisions
                ):
                    self._commit()
                    return
        self._decisions_since_decay += 1
        if self._decisions_since_decay >= self.config.decay_period:
            self._decisions_since_decay = 0
            self.monitor.decay()

    def _swap(self, index: int) -> None:
        self.engine.set_active(index)
        self._c_switches.add()
        self._stable_decisions = 0
        self.history.append((self.sim.now, self.engine.active_policy.name))
        if self.trace is not None:
            self.trace.policy_switch(self.engine.active_policy.name)

    # ------------------------------------------------------------------
    @property
    def switches(self) -> int:
        """Number of policy swaps performed so far."""
        return len(self.history) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicPolicyController(active={self.engine.active_policy.name}, "
            f"switches={self.switches})"
        )
