"""Reproduction of *Optimizing GPU Cache Policies for MI Workloads* (IISWC 2019).

The package provides:

* a trace-driven, discrete-event simulator of a coherent CPU-GPU memory
  hierarchy (per-CU L1s, shared banked L2, directory, HBM-style DRAM);
* the paper's three static GPU caching policies (Uncached, CacheR, CacheRW)
  and its three cumulative optimizations (allocation bypass, DBI-based cache
  rinsing, PC-based L2 bypassing);
* synthetic trace generators for the seventeen MI workloads of Table 2;
* experiment drivers that regenerate every table and figure of the paper's
  evaluation;
* an online adaptive policy subsystem (:mod:`repro.adaptive`), a
  multi-device NUMA topology subsystem (:mod:`repro.topology`) and a
  multi-tenant serving subsystem (:mod:`repro.streams`) that go beyond
  the paper: set-dueling policy selection at runtime, chiplet/multi-GPU
  systems with distributed L2 slices joined by a latency/bandwidth-
  modelled fabric, and concurrent execution streams with stream-scoped
  cache synchronization for interference studies;
* a deterministic fault-injection subsystem (:mod:`repro.faults`) that
  chaos-tests the simulated fleet -- link brownouts, device outages with
  stream evacuation, DRAM latency storms, tenant churn -- with graceful
  degradation and resilience metrics (availability, recovery latency);
* an observability layer (:mod:`repro.telemetry`): cycle-accurate
  Chrome/Perfetto trace-event timelines, windowed counter time-series
  attached to run reports, and host-side simulator/sweep profiling.

Quickstart::

    from repro import simulate, get_workload, STATIC_POLICIES

    workload = get_workload("FwFc")
    for policy in STATIC_POLICIES:
        report = simulate(workload, policy)
        print(policy.name, report.cycles, report.dram_accesses)
"""

from repro.accel import SamplingConfig, ShardConfig
from repro.adaptive import (
    AdaptiveConfig,
    DynamicPolicyController,
    DynamicPolicyEngine,
    PhaseDetector,
    SetDuelingMonitor,
)
from repro.config import (
    CacheConfig,
    DramConfig,
    GpuConfig,
    InterconnectConfig,
    SystemConfig,
    default_config,
    paper_config,
    scaled_config,
)
from repro.core import (
    CACHE_R,
    CACHE_RW,
    CACHE_RW_AB,
    CACHE_RW_CR,
    CACHE_RW_PCBY,
    OPTIMIZED_POLICIES,
    STATIC_POLICIES,
    UNCACHED,
    DirtyBlockIndex,
    PolicyAdvisor,
    PolicyEngine,
    PolicySpec,
    ReusePredictor,
    WorkloadCategory,
    classify,
    policy_by_name,
)
from repro.faults import (
    FAULT_PLAN_NAMES,
    FAULT_PLANS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    fault_plan_by_name,
    generate_fault_plan,
)
from repro.session import SimulationSession, simulate
from repro.stats import PolicyComparison, RunReport
from repro.telemetry import (
    MetricsSampler,
    SimProfiler,
    TelemetryConfig,
    TraceRecorder,
    validate_trace,
)
from repro.streams import (
    MIX_NAMES,
    SERVING_MIXES,
    ServingMix,
    StreamConfig,
    mix_by_name,
)
from repro.topology import (
    TOPOLOGIES,
    TOPOLOGY_NAMES,
    TopologyConfig,
    topology_by_name,
)
from repro.workloads import (
    WORKLOAD_NAMES,
    Workload,
    WorkloadTrace,
    get_workload,
    standard_suite,
    workload_metadata_table,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "CacheConfig",
    "DramConfig",
    "GpuConfig",
    "InterconnectConfig",
    "SystemConfig",
    "default_config",
    "paper_config",
    "scaled_config",
    # policies and optimizations
    "PolicySpec",
    "UNCACHED",
    "CACHE_R",
    "CACHE_RW",
    "CACHE_RW_AB",
    "CACHE_RW_CR",
    "CACHE_RW_PCBY",
    "STATIC_POLICIES",
    "OPTIMIZED_POLICIES",
    "policy_by_name",
    "PolicyEngine",
    "DirtyBlockIndex",
    "ReusePredictor",
    "PolicyAdvisor",
    "WorkloadCategory",
    "classify",
    # online adaptive policy selection
    "AdaptiveConfig",
    "DynamicPolicyController",
    "DynamicPolicyEngine",
    "PhaseDetector",
    "SetDuelingMonitor",
    # multi-device NUMA topologies
    "TopologyConfig",
    "TOPOLOGIES",
    "TOPOLOGY_NAMES",
    "topology_by_name",
    # multi-tenant serving streams
    "StreamConfig",
    "ServingMix",
    "SERVING_MIXES",
    "MIX_NAMES",
    "mix_by_name",
    # fault injection and graceful degradation
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FAULT_PLANS",
    "FAULT_PLAN_NAMES",
    "fault_plan_by_name",
    "generate_fault_plan",
    # acceleration: phase-sampled fast-forward + sharded execution
    "SamplingConfig",
    "ShardConfig",
    # simulation
    "SimulationSession",
    "simulate",
    "RunReport",
    "PolicyComparison",
    # telemetry / observability
    "TelemetryConfig",
    "TraceRecorder",
    "MetricsSampler",
    "SimProfiler",
    "validate_trace",
    # workloads
    "Workload",
    "WorkloadTrace",
    "WORKLOAD_NAMES",
    "get_workload",
    "standard_suite",
    "workload_metadata_table",
]
