"""Kernel dispatch and the top-level GPU model.

The :class:`Gpu` executes a :class:`~repro.workloads.trace.WorkloadTrace`
kernel by kernel.  Within a kernel, wavefronts are dispatched to CUs in
round-robin order as slots free up (mirroring the hardware workgroup
dispatcher).  In a multi-device topology the dispatcher honours the
device-affinity tags the workload partitioner stamped on the wavefront
programs: a tagged wavefront round-robins only over its own device's CU
block, so data-parallel shards execute next to their home L2 slice and
DRAM partition.  When the last wavefront of a kernel completes, the GPU applies
the kernel-boundary synchronization required by the coherence protocol
(self-invalidation of valid data and a flush of dirty L2 data -- see
:meth:`repro.memory.hierarchy.MemoryHierarchy.kernel_boundary`), waits for
the flush to drain, pays the kernel-launch overhead, and starts the next
kernel.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Optional

from repro.config import SystemConfig
from repro.engine import Simulator
from repro.gpu.compute_unit import ComputeUnit
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatsCollector
from repro.workloads.trace import KernelTrace, WorkloadTrace

__all__ = ["Gpu"]


class Gpu:
    """The GPU: a set of CUs plus the kernel dispatcher."""

    def __init__(
        self,
        config: SystemConfig,
        sim: Simulator,
        stats: StatsCollector,
        hierarchy: MemoryHierarchy,
        cus_per_device: Optional[int] = None,
    ) -> None:
        """``cus_per_device`` activates device-affine dispatch: CU block
        ``[d*cus_per_device, (d+1)*cus_per_device)`` belongs to device
        ``d`` and only runs wavefronts tagged for it.  ``None`` (every
        single-device run) keeps the plain global round-robin."""
        self.config = config
        self.sim = sim
        self.stats = stats
        self.hierarchy = hierarchy
        self.cus_per_device = cus_per_device
        if cus_per_device is not None:
            if cus_per_device < 1 or config.gpu.num_cus % cus_per_device != 0:
                raise ValueError(
                    f"cus_per_device {cus_per_device} must evenly divide "
                    f"{config.gpu.num_cus} CUs"
                )
            self._num_devices = config.gpu.num_cus // cus_per_device
            self._pending_by_device: list[deque] = [deque() for _ in range(self._num_devices)]
            self._next_cu_of_device = [0] * self._num_devices
        self.cus = [
            ComputeUnit(
                cu_id=cu,
                config=config.gpu,
                sim=sim,
                stats=stats,
                hierarchy=hierarchy,
                on_wavefront_finished=self._on_wavefront_finished,
            )
            for cu in range(config.gpu.num_cus)
        ]
        self._wavefront_ids = itertools.count()
        self._pending_wavefronts: deque = deque()
        self._kernel_outstanding = 0
        self._kernels: deque[KernelTrace] = deque()
        self._kernel_index = -1
        self._running = False
        self._next_cu = 0
        self._on_workload_complete: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    def run_workload(
        self, workload: WorkloadTrace, on_complete: Optional[Callable[[], None]] = None
    ) -> None:
        """Schedule ``workload`` for execution starting at the current cycle."""
        if self._running:
            raise RuntimeError("a workload is already running on this GPU")
        if workload.num_kernels == 0:
            raise ValueError(f"workload {workload.name!r} has no kernels")
        self._running = True
        self._kernels = deque(workload.kernels)
        self._kernel_index = -1
        self._on_workload_complete = on_complete
        self.stats.set("gpu.kernels_total", workload.num_kernels)
        self.sim.schedule(self.config.gpu.kernel_launch_cycles, self._launch_next_kernel)

    # ------------------------------------------------------------------
    def _launch_next_kernel(self) -> None:
        if not self._kernels:
            self._running = False
            self.stats.set("gpu.finish_cycle", self.sim.now)
            if self._on_workload_complete is not None:
                self._on_workload_complete()
            return
        kernel = self._kernels.popleft()
        self._kernel_index += 1
        self.stats.add("gpu.kernels_launched")
        if kernel.num_wavefronts == 0:
            raise ValueError(f"kernel {kernel.name!r} has no wavefronts")
        self._kernel_outstanding = kernel.num_wavefronts
        if self.cus_per_device is None:
            self._pending_wavefronts = deque(
                (next(self._wavefront_ids), self._kernel_index, program)
                for program in kernel.wavefronts
            )
        else:
            for index, program in enumerate(kernel.wavefronts):
                # untagged wavefronts (a raw trace run on a multi-device
                # system) are spread round-robin so no device sits idle
                device = program.device if program.device is not None else index % self._num_devices
                if not (0 <= device < self._num_devices):
                    raise ValueError(
                        f"wavefront tagged for device {device}, but the system "
                        f"has {self._num_devices} devices"
                    )
                self._pending_by_device[device].append(
                    (next(self._wavefront_ids), self._kernel_index, program)
                )
        self._fill_cus()

    def _has_pending_wavefronts(self) -> bool:
        if self.cus_per_device is not None:
            return any(self._pending_by_device)
        return bool(self._pending_wavefronts)

    def _fill_cus(self) -> None:
        """Dispatch queued wavefronts onto CUs with free slots, round robin."""
        if self.cus_per_device is not None:
            self._fill_cus_per_device()
            return
        if not self._pending_wavefronts:
            return
        num_cus = len(self.cus)
        attempts = 0
        while self._pending_wavefronts and attempts < num_cus:
            cu = self.cus[self._next_cu]
            self._next_cu = (self._next_cu + 1) % num_cus
            if cu.has_free_slot:
                wavefront_id, kernel_id, program = self._pending_wavefronts.popleft()
                cu.start_wavefront(wavefront_id, kernel_id, program)
                attempts = 0
            else:
                attempts += 1

    def _fill_cus_per_device(self) -> None:
        """Device-affine dispatch: each device's queue feeds its CU block."""
        cus_per_device = self.cus_per_device
        for device, pending in enumerate(self._pending_by_device):
            if not pending:
                continue
            base = device * cus_per_device
            pointer = self._next_cu_of_device[device]
            attempts = 0
            while pending and attempts < cus_per_device:
                cu = self.cus[base + pointer]
                pointer = (pointer + 1) % cus_per_device
                if cu.has_free_slot:
                    wavefront_id, kernel_id, program = pending.popleft()
                    cu.start_wavefront(wavefront_id, kernel_id, program)
                    attempts = 0
                else:
                    attempts += 1
            self._next_cu_of_device[device] = pointer

    def _on_wavefront_finished(self, cu_id: int) -> None:
        self._kernel_outstanding -= 1
        if self._has_pending_wavefronts():
            self._fill_cus()
        if self._kernel_outstanding == 0 and not self._has_pending_wavefronts():
            self._kernel_complete()

    def _kernel_complete(self) -> None:
        self.stats.add("gpu.kernels_completed")

        def after_sync() -> None:
            launch_delay = self.config.gpu.kernel_launch_cycles
            self.sim.schedule(launch_delay, self._launch_next_kernel)

        self.hierarchy.kernel_boundary(after_sync)

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def occupancy(self) -> float:
        """Fraction of wavefront slots currently occupied (for debugging)."""
        resident = sum(cu.resident_wavefronts for cu in self.cus)
        capacity = sum(cu.max_resident_wavefronts for cu in self.cus)
        return resident / capacity if capacity else 0.0
