"""Stream scheduling and the top-level GPU model.

The :class:`Gpu` executes one or more concurrent *execution streams*, each
an independent :class:`~repro.workloads.trace.WorkloadTrace` kernel
sequence with its own in-flight wavefronts -- the multi-tenant serving
model where several users' kernels are co-resident on one GPU.  A plain
single-workload run (:meth:`run_workload`) is the degenerate one-stream
case and reduces exactly to the historical kernel-by-kernel dispatch.

Within each stream, kernels execute in order.  A kernel's wavefronts are
dispatched to CUs as slots free up, under the mix's CU share policy:

* ``"shared"`` -- all streams' wavefronts round-robin over the full CU
  array (round-robin across streams as well, so no tenant starves);
* ``"partitioned"`` -- the CU array is statically split into one
  contiguous block per stream, and each stream round-robins only inside
  its own block (spatial isolation, CIAO-style).

Both modes compose with multi-device topologies: the dispatcher honours
the device-affinity tags the workload partitioner stamped on the
wavefront programs (a tagged wavefront runs only on its device's CU
block), and a partitioned mix subdivides each *device's* block among the
streams.

When the last wavefront of a stream's kernel completes, the GPU applies
the kernel-boundary synchronization required by the coherence protocol --
self-invalidation of valid data and a flush of dirty L2 data, scoped to
the finishing stream's cache lines in multi-stream runs (see
:meth:`repro.memory.hierarchy.MemoryHierarchy.kernel_boundary`) -- waits
for the flush to drain, pays the kernel-launch overhead, and starts the
stream's next kernel.  Other streams keep executing throughout.

The scheduler is also the fault injector's compute-side surface
(:mod:`repro.faults`): :meth:`Gpu.fail_device` cordons a device and
evacuates its queued wavefronts onto the survivors,
:meth:`Gpu.recover_device` lifts the cordon, and
:meth:`Gpu.kill_stream` / :meth:`Gpu.restart_stream` model tenant churn
(drop queued work, drain in-flight work, release the dead tenant's cache
footprint, re-execute the interrupted kernel on restart).  Healthy runs
never touch any of it: the only additions to the common path are an
empty-set test per kernel launch and a launch-token equality test per
scheduled launch, neither of which changes behaviour -- enforced
bit-identically by ``tests/integration/test_core_equivalence.py``.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Optional, Sequence

from repro.config import SystemConfig
from repro.engine import Simulator
from repro.gpu.compute_unit import ComputeUnit
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatsCollector
from repro.streams.config import CU_SHARE_MODES, StreamConfig
from repro.workloads.trace import KernelTrace, WorkloadTrace

__all__ = ["Gpu"]


class _StreamState:
    """Runtime state of one execution stream on the GPU."""

    __slots__ = (
        "stream_id",
        "kernels",
        "kernel_index",
        "outstanding",
        "pending",
        "active",
        "launch_cycle",
        "cu_ranges",
        "next_cu_in_range",
        "launch_token",
        "killed",
        "drained",
        "will_restart",
        "pending_restart",
        "kill_cycle",
        "current_kernel",
    )

    def __init__(self, stream_id: int, num_devices: int, launch_cycle: int) -> None:
        self.stream_id = stream_id
        self.kernels: deque[KernelTrace] = deque()
        self.kernel_index = -1
        self.outstanding = 0
        #: queued (wavefront_id, kernel_index, program) per device
        self.pending: list[deque] = [deque() for _ in range(num_devices)]
        self.active = True
        self.launch_cycle = launch_cycle
        #: static CU partition, per device: (base, count); None when shared
        self.cu_ranges: Optional[list[tuple[int, int]]] = None
        self.next_cu_in_range: Optional[list[int]] = None
        #: kernel-launch epoch: a tenant kill bumps it, disarming launch
        #: callbacks already in flight (they carry the token they were
        #: scheduled under); never changes in a healthy run
        self.launch_token = 0
        # tenant-churn state (fault injection): a killed stream drops its
        # queued work, drains its in-flight wavefronts, releases its cache
        # footprint, and either finishes for good or restarts its
        # interrupted kernel after the churn interval
        self.killed = False
        self.drained = False
        self.will_restart = False
        self.pending_restart = False
        self.kill_cycle = 0
        self.current_kernel: Optional[KernelTrace] = None

    def has_pending(self) -> bool:
        for queue in self.pending:
            if queue:
                return True
        return False


class Gpu:
    """The GPU: a set of CUs plus the stream-aware kernel dispatcher."""

    def __init__(
        self,
        config: SystemConfig,
        sim: Simulator,
        stats: StatsCollector,
        hierarchy: MemoryHierarchy,
        cus_per_device: Optional[int] = None,
    ) -> None:
        """``cus_per_device`` activates device-affine dispatch: CU block
        ``[d*cus_per_device, (d+1)*cus_per_device)`` belongs to device
        ``d`` and only runs wavefronts tagged for it.  ``None`` (every
        single-device run) keeps the plain global round-robin."""
        self.config = config
        self.sim = sim
        self.stats = stats
        self.hierarchy = hierarchy
        self.cus_per_device = cus_per_device
        if cus_per_device is None:
            self._num_devices = 1
        else:
            if cus_per_device < 1 or config.gpu.num_cus % cus_per_device != 0:
                raise ValueError(
                    f"cus_per_device {cus_per_device} must evenly divide "
                    f"{config.gpu.num_cus} CUs"
                )
            self._num_devices = config.gpu.num_cus // cus_per_device
        self.cus = [
            ComputeUnit(
                cu_id=cu,
                config=config.gpu,
                sim=sim,
                stats=stats,
                hierarchy=hierarchy,
                on_wavefront_finished=self._on_wavefront_finished,
            )
            for cu in range(config.gpu.num_cus)
        ]
        self._wavefront_ids = itertools.count()
        self._streams: list[_StreamState] = []
        self._running = False
        self._partitioned = False
        #: devices cordoned by the fault injector: no new dispatch, queued
        #: work evacuated to survivors; empty in every healthy run
        self._failed_devices: set[int] = set()
        #: stream-scoped kernel boundaries + per-stream counters; enabled
        #: by the serving API, off for legacy single-workload runs
        self._serving = False
        # round-robin pointers of the shared dispatch modes: one CU pointer
        # and one stream pointer per device (index 0 doubles as the global
        # pointer of the no-topology path)
        self._next_cu = 0
        self._next_cu_of_device = [0] * self._num_devices
        self._next_stream_of_device = [0] * self._num_devices
        self._on_workload_complete: Optional[Callable[[], None]] = None
        #: when set (by tests), every dispatch appends
        #: ``(stream_id, cu_id, wavefront_id)`` -- one None-test per
        #: wavefront start, nothing on the per-event hot path
        self.dispatch_log: Optional[list[tuple[int, int, int]]] = None
        #: optional telemetry TraceRecorder (same None-test pattern as the
        #: dispatch log: per kernel launch/completion, never per event)
        self.trace = None
        #: optional fast-forward gate: called once per kernel launch with
        #: ``(stream_id, kernel)``; returning False skips the kernel (the
        #: sampler extrapolates its counters at finalize).  Same one
        #: None-test per launch as the dispatch log, nothing per event.
        self.kernel_filter: Optional[Callable[[int, object], bool]] = None

    def attach_trace(self, recorder) -> None:
        """Attach a telemetry trace recorder to the GPU and its CUs."""
        self.trace = recorder
        recorder.set_topology(
            self._num_devices, self.cus_per_device or len(self.cus)
        )
        for cu in self.cus:
            cu.trace = recorder

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def run_workload(
        self, workload: WorkloadTrace, on_complete: Optional[Callable[[], None]] = None
    ) -> None:
        """Schedule ``workload`` for execution starting at the current cycle.

        The legacy single-stream entry point: one stream, global (shared)
        dispatch, unscoped kernel boundaries -- bit-identical to the
        pre-stream GPU model.
        """
        self._start(
            [(workload, StreamConfig(workload=workload.name or "workload"))],
            on_complete=on_complete,
            serving=False,
        )

    def run_streams(
        self,
        traces: Sequence[WorkloadTrace],
        configs: Sequence[StreamConfig],
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Schedule one execution stream per (trace, config) pair.

        Streams launch at their configured arrival cycles, share or
        partition the CUs according to the (uniform) ``cu_share`` mode,
        and synchronize their kernel boundaries independently, scoped to
        their own cache lines.  ``on_complete`` fires when the last
        stream finishes.
        """
        if len(traces) != len(configs):
            raise ValueError(
                f"got {len(traces)} traces but {len(configs)} stream configs"
            )
        if not traces:
            raise ValueError("a serving run needs at least one stream")
        self._start(list(zip(traces, configs)), on_complete=on_complete, serving=True)

    # ------------------------------------------------------------------
    def _start(
        self,
        workloads: list[tuple[WorkloadTrace, StreamConfig]],
        on_complete: Optional[Callable[[], None]],
        serving: bool,
    ) -> None:
        if self._running:
            raise RuntimeError("a workload is already running on this GPU")
        # validate everything before mutating any scheduler state, so a
        # rejected run leaves the GPU reusable
        modes = {config.cu_share for _trace, config in workloads}
        if len(modes) > 1:
            raise ValueError(
                f"streams mix cu_share modes {sorted(modes)}; "
                "all streams of a run must share one mode"
            )
        mode = modes.pop()
        if mode not in CU_SHARE_MODES:  # pragma: no cover - StreamConfig validates
            raise ValueError(f"unknown cu_share mode {mode!r}")
        for trace, _config in workloads:
            if trace.num_kernels == 0:
                raise ValueError(f"workload {trace.name!r} has no kernels")
        partitioned = mode == "partitioned" and len(workloads) > 1
        if partitioned:
            cus_per_device = self.cus_per_device or len(self.cus)
            if cus_per_device < len(workloads):
                raise ValueError(
                    f"cannot partition {cus_per_device} CUs per device across "
                    f"{len(workloads)} streams (each stream needs at least one CU)"
                )
        self._running = True
        self._serving = serving
        self._partitioned = partitioned
        self._failed_devices = set()
        self._on_workload_complete = on_complete
        self._next_cu = 0
        self._next_cu_of_device = [0] * self._num_devices
        self._next_stream_of_device = [0] * self._num_devices
        self._streams = []
        total_kernels = 0
        for stream_id, (trace, config) in enumerate(workloads):
            stream = _StreamState(stream_id, self._num_devices, config.launch_cycle)
            stream.kernels.extend(trace.kernels)
            self._streams.append(stream)
            total_kernels += trace.num_kernels
            if serving:
                self.stats.set(f"stream{stream_id}.kernels_total", trace.num_kernels)
                self.stats.set(f"stream{stream_id}.launch_cycle", config.launch_cycle)
        if self._partitioned:
            self._assign_cu_partitions()
        self.stats.set("gpu.kernels_total", total_kernels)
        launch_delay = self.config.gpu.kernel_launch_cycles
        for stream in self._streams:
            self._schedule_launch(stream, stream.launch_cycle + launch_delay)

    def _assign_cu_partitions(self) -> None:
        """Split each device's CU block into one contiguous range per stream.

        Feasibility (one CU per stream per device) was validated by
        :meth:`_start` before any state changed.
        """
        num_streams = len(self._streams)
        cus_per_device = self.cus_per_device or len(self.cus)
        base_share, extra = divmod(cus_per_device, num_streams)
        for stream in self._streams:
            stream.cu_ranges = []
            stream.next_cu_in_range = [0] * self._num_devices
        for device in range(self._num_devices):
            offset = device * cus_per_device
            for index, stream in enumerate(self._streams):
                count = base_share + (1 if index < extra else 0)
                stream.cu_ranges.append((offset, count))
                offset += count

    # ------------------------------------------------------------------
    # kernel launch / completion
    # ------------------------------------------------------------------
    def _schedule_launch(self, stream: _StreamState, delay: int) -> None:
        """Schedule the stream's next kernel launch under its current
        launch token, so a tenant kill in the interim disarms it."""
        token = stream.launch_token
        self.sim.schedule(delay, lambda: self._launch_next_kernel(stream, token))

    def _launch_next_kernel(self, stream: _StreamState, token: int) -> None:
        if token != stream.launch_token:
            return  # superseded by a tenant kill; the restart relaunches
        if not stream.kernels:
            self._stream_finished(stream)
            return
        kernel = stream.kernels.popleft()
        if self.kernel_filter is not None and not self.kernel_filter(
            stream.stream_id, kernel
        ):
            # fast-forward: the sampler declared this instance a steady
            # repeat; account for the slot, keep the dispatch rotation
            # where the exact run would leave it, and move straight on
            stream.kernel_index += 1
            self._skip_dispatch_rotation(stream, kernel)
            self._schedule_launch(stream, 0)
            return
        stream.current_kernel = kernel
        stream.kernel_index += 1
        self.stats.add("gpu.kernels_launched")
        if self._serving:
            self.stats.add(f"stream{stream.stream_id}.kernels_launched")
        if self.trace is not None:
            self.trace.kernel_started(
                stream.stream_id, stream.kernel_index, kernel.name
            )
        if kernel.num_wavefronts == 0:
            raise ValueError(f"kernel {kernel.name!r} has no wavefronts")
        stream.outstanding = kernel.num_wavefronts
        if self.cus_per_device is None:
            stream.pending[0].extend(
                (next(self._wavefront_ids), stream.kernel_index, program)
                for program in kernel.wavefronts
            )
        else:
            num_devices = self._num_devices
            failed = self._failed_devices
            for index, program in enumerate(kernel.wavefronts):
                # untagged wavefronts (a raw trace run on a multi-device
                # system) are spread round-robin so no device sits idle
                device = program.device if program.device is not None else index % num_devices
                if not (0 <= device < num_devices):
                    raise ValueError(
                        f"wavefront tagged for device {device}, but the system "
                        f"has {num_devices} devices"
                    )
                if failed and device in failed:
                    device = self._reroute_device(device, index)
                stream.pending[device].append(
                    (next(self._wavefront_ids), stream.kernel_index, program)
                )
        self._fill_cus()

    def _skip_dispatch_rotation(self, stream: _StreamState, kernel) -> None:
        """Advance the round-robin dispatch pointers past a skipped kernel.

        A stream's kernels serialize, so when a kernel launches its CUs
        are idle and every wavefront dispatches on the first pass: the
        pointer moves by exactly the wavefront count.  Replaying that
        advance for skipped kernels keeps the kernels that *are*
        simulated on the same CUs as in the exact run -- without it the
        per-CU attribution (link transfers, contention) drifts even
        though the global totals stay exact.
        """
        if self._partitioned or self.cus_per_device is not None:
            # mirror the enqueue path's per-device spread (device tags,
            # round-robin for untagged wavefronts)
            num_devices = self._num_devices
            per_device = [0] * num_devices
            if self.cus_per_device is None:
                per_device[0] = kernel.num_wavefronts
            else:
                for index, program in enumerate(kernel.wavefronts):
                    device = (
                        program.device
                        if program.device is not None
                        else index % num_devices
                    )
                    per_device[device % num_devices] += 1
            if self._partitioned:
                for device, share in enumerate(per_device):
                    _, count = stream.cu_ranges[device]
                    if count:
                        stream.next_cu_in_range[device] = (
                            stream.next_cu_in_range[device] + share
                        ) % count
            else:
                cus_per_device = self.cus_per_device
                for device, share in enumerate(per_device):
                    self._next_cu_of_device[device] = (
                        self._next_cu_of_device[device] + share
                    ) % cus_per_device
        else:
            self._next_cu = (
                self._next_cu + kernel.num_wavefronts
            ) % len(self.cus)

    def _reroute_device(self, device: int, salt: int) -> int:
        """Pick a surviving device for a wavefront homed on a failed one
        (deterministic spread; its memory stays on the failed device's
        partition, reached over the degraded fabric)."""
        survivors = [d for d in range(self._num_devices) if d not in self._failed_devices]
        if not survivors:  # pragma: no cover - fail_device guards this
            raise RuntimeError("every device has failed; nothing can dispatch")
        self.stats.add("faults.rerouted_wavefronts")
        return survivors[(device + salt) % len(survivors)]

    def _stream_finished(self, stream: _StreamState) -> None:
        stream.active = False
        now = self.sim.now
        if self._serving:
            prefix = f"stream{stream.stream_id}"
            self.stats.set(f"{prefix}.finish_cycle", now)
            self.stats.set(f"{prefix}.cycles", now - stream.launch_cycle)
        if any(other.active for other in self._streams):
            return
        self._running = False
        self.stats.set("gpu.finish_cycle", now)
        if self._on_workload_complete is not None:
            self._on_workload_complete()

    def _on_wavefront_finished(self, cu_id: int, stream_id: int) -> None:
        stream = self._streams[stream_id]
        stream.outstanding -= 1
        if self._has_pending_wavefronts():
            self._fill_cus()
        if stream.outstanding == 0 and not stream.has_pending():
            if stream.killed:
                self._stream_drained_after_kill(stream)
            else:
                self._kernel_complete(stream)

    def _kernel_complete(self, stream: _StreamState) -> None:
        if self.trace is not None:
            self.trace.kernel_finished(stream.stream_id)
        stream.current_kernel = None
        self.stats.add("gpu.kernels_completed")
        if self._serving:
            self.stats.add(f"stream{stream.stream_id}.kernels_completed")

        def after_sync() -> None:
            self._schedule_launch(stream, self.config.gpu.kernel_launch_cycles)

        # multi-tenant boundaries are scoped to the finishing stream's
        # cache lines; the legacy path keeps the global (None) walk
        self.hierarchy.kernel_boundary(
            after_sync, stream_id=stream.stream_id if self._serving else None
        )

    # ------------------------------------------------------------------
    # fault injection: device failure + tenant churn
    # ------------------------------------------------------------------
    def fail_device(self, device: int) -> int:
        """Cordon ``device`` and evacuate its queued wavefronts.

        The failed device's CUs accept no new work (wavefronts already
        resident drain out naturally -- dispatch is non-preemptive); its
        queued wavefronts are re-dispatched round-robin onto the surviving
        devices, and kernels launched while it is down route around it
        (:meth:`_reroute_device`).  The memory side survives: its L2
        slice and DRAM partition stay reachable over the fabric.

        Returns the number of evacuated wavefronts, or ``-1`` if the
        device had already failed.
        """
        if self.cus_per_device is None:
            raise RuntimeError("device failure needs a multi-device run")
        if not (0 <= device < self._num_devices):
            raise IndexError(
                f"device {device} out of range (have {self._num_devices} devices)"
            )
        if device in self._failed_devices:
            return -1
        self._failed_devices.add(device)
        survivors = [d for d in range(self._num_devices) if d not in self._failed_devices]
        if not survivors:
            self._failed_devices.discard(device)
            raise RuntimeError(
                "every device has failed; at least one must survive to absorb the work"
            )
        evacuated = 0
        for stream in self._streams:
            queue = stream.pending[device]
            while queue:
                stream.pending[survivors[evacuated % len(survivors)]].append(
                    queue.popleft()
                )
                evacuated += 1
        if evacuated:
            self._fill_cus()
        return evacuated

    def recover_device(self, device: int) -> None:
        """Lift the cordon: ``device`` dispatches new wavefronts again."""
        self._failed_devices.discard(device)

    def kill_stream(self, stream_id: int, will_restart: bool = True) -> bool:
        """Kill one tenant mid-run (fault-injected churn).

        The stream's queued wavefronts are dropped, its in-flight
        wavefronts drain out, and once drained its cache footprint is
        released (stream-scoped invalidate + dirty flush).  With
        ``will_restart`` the stream then waits for
        :meth:`restart_stream`; without it the tenant is gone for good
        and the run completes without it.

        Returns ``False`` (a no-op) when the stream already finished or
        is already dead.
        """
        if not self._serving:
            raise RuntimeError("stream kills need a serving run (run_streams)")
        stream = self._streams[stream_id]
        if not stream.active or stream.killed:
            return False
        stream.killed = True
        stream.drained = False
        stream.will_restart = will_restart
        stream.pending_restart = False
        stream.kill_cycle = self.sim.now
        stream.launch_token += 1  # disarm launch callbacks already in flight
        if self.trace is not None and stream.current_kernel is not None:
            self.trace.kernel_interrupted(stream_id)
        dropped = 0
        for queue in stream.pending:
            dropped += len(queue)
            queue.clear()
        stream.outstanding -= dropped
        self.stats.add(f"stream{stream_id}.kills")
        if dropped:
            self.stats.add("faults.dropped_wavefronts", dropped)
        if stream.outstanding == 0:
            self._stream_drained_after_kill(stream)
        return True

    def restart_stream(self, stream_id: int) -> bool:
        """Restart a killed tenant (the churn interval elapsed).

        The interrupted kernel re-executes from its first wavefront --
        the tenant lost its in-progress work and its cache footprint, but
        nothing it had previously synchronized (its earlier kernels'
        flushed output) is affected.  If the stream is still draining its
        in-flight wavefronts the restart is deferred until the drain
        completes.  Returns ``False`` when there is nothing to restart.
        """
        stream = self._streams[stream_id]
        if not stream.killed or not stream.active:
            return False
        if not stream.drained:
            stream.pending_restart = True
            return True
        self._restart_stream_now(stream)
        return True

    def _stream_drained_after_kill(self, stream: _StreamState) -> None:
        """The killed stream's last in-flight wavefront finished: release
        its cache footprint, then restart or retire it."""

        def after_flush() -> None:
            stream.drained = True
            if stream.pending_restart:
                stream.pending_restart = False
                self._restart_stream_now(stream)
            elif not stream.will_restart:
                # permanent kill: the tenant is lost; the run completes
                # without it (its finish cycle is the evacuation time)
                self.stats.add(f"stream{stream.stream_id}.lost")
                self._stream_finished(stream)

        self.hierarchy.evacuate_stream(stream.stream_id, after_flush)

    def _restart_stream_now(self, stream: _StreamState) -> None:
        now = self.sim.now
        prefix = f"stream{stream.stream_id}"
        stream.killed = False
        stream.drained = False
        self.stats.add(f"{prefix}.restarts")
        self.stats.add(f"{prefix}.recovery_cycles", now - stream.kill_cycle)
        if stream.current_kernel is not None:
            # re-queue the interrupted kernel; it re-launches (and is
            # re-counted as launched) with its original kernel index
            stream.kernels.appendleft(stream.current_kernel)
            stream.current_kernel = None
            stream.kernel_index -= 1
            stream.outstanding = 0
        self._schedule_launch(stream, self.config.gpu.kernel_launch_cycles)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _has_pending_wavefronts(self) -> bool:
        for stream in self._streams:
            if stream.has_pending():
                return True
        return False

    def _fill_cus(self) -> None:
        """Dispatch queued wavefronts onto CUs with free slots, round robin."""
        if self._partitioned:
            self._fill_partitioned()
        elif self.cus_per_device is not None:
            self._fill_shared_devices()
        else:
            self._fill_shared()

    def _start_wavefront(self, cu: ComputeUnit, stream: _StreamState, device: int) -> None:
        wavefront_id, kernel_id, program = stream.pending[device].popleft()
        if self.dispatch_log is not None:
            self.dispatch_log.append((stream.stream_id, cu.cu_id, wavefront_id))
        cu.start_wavefront(wavefront_id, kernel_id, program, stream.stream_id)

    def _next_stream_with_work(self, device: int) -> _StreamState:
        """Round-robin pick among the streams with work queued for ``device``."""
        streams = self._streams
        count = len(streams)
        pointer = self._next_stream_of_device[device]
        for step in range(count):
            index = (pointer + step) % count
            if streams[index].pending[device]:
                self._next_stream_of_device[device] = (index + 1) % count
                return streams[index]
        raise RuntimeError("no stream has pending work")  # pragma: no cover

    def _any_pending(self, device: int) -> bool:
        for stream in self._streams:
            if stream.pending[device]:
                return True
        return False

    def _fill_shared(self) -> None:
        """Shared dispatch, single device: one global CU pointer; streams
        interleave round-robin.  With one stream this is exactly the
        historical global round-robin."""
        if not self._any_pending(0):
            return
        cus = self.cus
        num_cus = len(cus)
        attempts = 0
        while self._any_pending(0) and attempts < num_cus:
            cu = cus[self._next_cu]
            self._next_cu = (self._next_cu + 1) % num_cus
            if cu.has_free_slot:
                self._start_wavefront(cu, self._next_stream_with_work(0), 0)
                attempts = 0
            else:
                attempts += 1

    def _fill_shared_devices(self) -> None:
        """Shared dispatch with device affinity: each device's queues feed
        its CU block; streams interleave round-robin per device."""
        cus_per_device = self.cus_per_device
        cus = self.cus
        for device in range(self._num_devices):
            if not self._any_pending(device):
                continue
            base = device * cus_per_device
            pointer = self._next_cu_of_device[device]
            attempts = 0
            while self._any_pending(device) and attempts < cus_per_device:
                cu = cus[base + pointer]
                pointer = (pointer + 1) % cus_per_device
                if cu.has_free_slot:
                    self._start_wavefront(cu, self._next_stream_with_work(device), device)
                    attempts = 0
                else:
                    attempts += 1
            self._next_cu_of_device[device] = pointer

    def _fill_partitioned(self) -> None:
        """Partitioned dispatch: every stream round-robins inside its own
        contiguous CU range (per device)."""
        cus = self.cus
        for stream in self._streams:
            for device in range(self._num_devices):
                pending = stream.pending[device]
                if not pending:
                    continue
                base, count = stream.cu_ranges[device]
                pointer = stream.next_cu_in_range[device]
                attempts = 0
                while pending and attempts < count:
                    cu = cus[base + pointer]
                    pointer = (pointer + 1) % count
                    if cu.has_free_slot:
                        self._start_wavefront(cu, stream, device)
                        attempts = 0
                    else:
                        attempts += 1
                stream.next_cu_in_range[device] = pointer

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def num_streams(self) -> int:
        """Streams of the current (or last) run; 0 before any run."""
        return len(self._streams)

    def cu_partition_of(self, stream_id: int) -> Optional[list[tuple[int, int]]]:
        """The per-device (base, count) CU ranges of ``stream_id``
        (``None`` in shared mode)."""
        return self._streams[stream_id].cu_ranges

    def occupancy(self) -> float:
        """Fraction of wavefront slots currently occupied (for debugging)."""
        resident = sum(cu.resident_wavefronts for cu in self.cus)
        capacity = sum(cu.max_resident_wavefronts for cu in self.cus)
        return resident / capacity if capacity else 0.0
