"""Local data share (LDS) staging filter.

The paper notes that even with GPU caches bypassed, two forms of reuse
remain available to a kernel: coalescing of in-flight requests to the same
line, and *LDS staging* -- data loaded once from memory into the per-CU
scratchpad and then reused by all work items of the work group.  Tiled GEMM
kernels and convolution kernels use LDS heavily, which is why the paper's
GEMM workloads show large cache-hit-rate improvements but no performance
change (the reuse that matters was already captured in LDS/registers).

Workload generators use :class:`LdsFilter` to model this: accesses that a
real kernel would stage through LDS are issued to memory only once per work
group; subsequent touches are converted into compute-visible reuse (they do
not generate memory traffic).
"""

from __future__ import annotations

__all__ = ["LdsFilter"]


class LdsFilter:
    """Tracks which lines a work group has already staged into the LDS.

    Args:
        capacity_bytes: LDS capacity available to the work group; staging
            beyond the capacity evicts the oldest staged line (FIFO), which
            models double-buffered tiles being overwritten.
        line_bytes: granularity of staging (one cache line).
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0:
            raise ValueError("capacity_bytes and line_bytes must be positive")
        self.capacity_lines = max(1, capacity_bytes // line_bytes)
        self.line_bytes = line_bytes
        self._staged: dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    def _line(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def access(self, address: int) -> bool:
        """Record a touch of ``address``.

        Returns True when the data was already staged (no memory traffic
        needed) and False when it must be fetched from memory (the caller
        should emit a memory access and the line becomes staged).
        """
        line = self._line(address)
        if line in self._staged:
            self.hits += 1
            return True
        self.misses += 1
        if len(self._staged) >= self.capacity_lines:
            oldest = next(iter(self._staged))
            del self._staged[oldest]
        self._staged[line] = None
        return False

    def reset(self) -> None:
        """Forget all staged data (work-group boundary)."""
        self._staged.clear()

    @property
    def staged_lines(self) -> int:
        return len(self._staged)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
