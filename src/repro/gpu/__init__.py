"""GPU compute-side models.

The GPU model executes :class:`~repro.workloads.trace.WorkloadTrace` objects
against a :class:`~repro.memory.hierarchy.MemoryHierarchy`:

* :mod:`repro.gpu.coalescer` -- per-wavefront memory coalescing (used at
  trace-generation time).
* :mod:`repro.gpu.lds` -- local-data-share staging filter that removes
  nearby-work-item reuse from the generated traffic (that reuse exists even
  when GPU caches are bypassed, as the paper notes).
* :mod:`repro.gpu.wavefront` -- the wavefront state machine.
* :mod:`repro.gpu.compute_unit` -- a CU: issue bandwidth, SIMD occupancy,
  resident-wavefront slots.
* :mod:`repro.gpu.gpu` -- kernel dispatch, wavefront scheduling across CUs,
  kernel-boundary synchronization.
"""

from repro.gpu.coalescer import coalesce_addresses
from repro.gpu.lds import LdsFilter
from repro.gpu.compute_unit import ComputeUnit
from repro.gpu.gpu import Gpu
from repro.gpu.wavefront import Wavefront

__all__ = ["coalesce_addresses", "LdsFilter", "ComputeUnit", "Gpu", "Wavefront"]
