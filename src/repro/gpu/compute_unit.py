"""Compute unit model.

A CU owns an instruction-issue port (finite issue bandwidth shared by the
wavefronts resident on it), a SIMD pool (finite vector throughput), and a
set of resident-wavefront slots.  It forwards memory requests to its private
L1 through the memory hierarchy.

The SIMD pool is modelled as a single throughput resource: with
``simd_per_cu`` SIMD units executing 64-wide wavefront operations over
``wavefront_size / simd_width`` cycles, the aggregate throughput is one
wavefront-wide vector operation per cycle, which is how GCN hardware
behaves (4 SIMDs x 16 lanes, 4-cycle cadence).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.config import GpuConfig
from repro.engine import Simulator, ThroughputResource
from repro.gpu.wavefront import Wavefront
from repro.memory.request import MemoryRequest
from repro.stats import StatsCollector
from repro.workloads.trace import WavefrontProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["ComputeUnit"]


class ComputeUnit:
    """One GPU compute unit."""

    def __init__(
        self,
        cu_id: int,
        config: GpuConfig,
        sim: Simulator,
        stats: StatsCollector,
        hierarchy: "MemoryHierarchy",
        on_wavefront_finished: Callable[[int, int], None],
    ) -> None:
        self.cu_id = cu_id
        self.config = config
        self.sim = sim
        self.stats = stats
        self.hierarchy = hierarchy
        self.on_wavefront_finished = on_wavefront_finished

        self.issue_port = ThroughputResource(
            f"cu{cu_id}.issue", cycles_per_grant=1.0 / config.issue_width
        )
        # aggregate SIMD throughput: one wavefront-wide vector op per cycle
        simd_cycles_per_op = (config.wavefront_size / 16.0) / config.simd_per_cu
        self.simd_pool = ThroughputResource(
            f"cu{cu_id}.simd", cycles_per_grant=max(simd_cycles_per_op, 0.25)
        )
        self._cycles_per_vector_op = max(simd_cycles_per_op, 0.25)
        self.max_outstanding_mem = config.max_outstanding_mem_per_wave
        self._resident: dict[int, Wavefront] = {}
        # pre-bound handles shared with the wavefronts resident on this CU
        self._c_wavefronts_started = stats.counter("gpu.wavefronts_started")
        self._c_wavefronts_finished = stats.counter("gpu.wavefronts_finished")
        self._c_vector_ops = stats.counter("gpu.vector_ops")
        self._c_mem_instructions = stats.counter("gpu.mem_instructions")
        self._h_mem_latency = stats.histogram_handle("gpu.mem_latency")
        #: optional telemetry TraceRecorder (one None-test per wavefront
        #: start/finish, nothing on the per-instruction path)
        self.trace = None

    # ------------------------------------------------------------------
    @property
    def max_resident_wavefronts(self) -> int:
        return self.config.max_waves_per_cu

    @property
    def resident_wavefronts(self) -> int:
        return len(self._resident)

    @property
    def has_free_slot(self) -> bool:
        return self.resident_wavefronts < self.max_resident_wavefronts

    # ------------------------------------------------------------------
    def start_wavefront(
        self,
        wavefront_id: int,
        kernel_id: int,
        program: WavefrontProgram,
        stream_id: int = 0,
    ) -> None:
        """Place a wavefront on this CU and start executing it."""
        if not self.has_free_slot:
            raise RuntimeError(f"CU {self.cu_id} has no free wavefront slot")
        wavefront = Wavefront(
            wavefront_id=wavefront_id,
            kernel_id=kernel_id,
            program=program,
            cu=self,
            on_finished=self._wavefront_finished,
            stream_id=stream_id,
        )
        self._resident[wavefront_id] = wavefront
        self._c_wavefronts_started.add()
        if self.trace is not None:
            self.trace.wavefront_started(wavefront_id, self.cu_id, stream_id, kernel_id)
        wavefront.start()

    def _wavefront_finished(self, wavefront: Wavefront) -> None:
        del self._resident[wavefront.wavefront_id]
        self._c_wavefronts_finished.add()
        if self.trace is not None:
            self.trace.wavefront_finished(wavefront.wavefront_id)
        self.on_wavefront_finished(self.cu_id, wavefront.stream_id)

    # ------------------------------------------------------------------
    def book_compute(self, now: int, vector_ops: int) -> int:
        """Occupy the SIMD pool for ``vector_ops`` wavefront-wide operations."""
        return self.simd_pool.grant_duration(now, vector_ops * self._cycles_per_vector_op)

    def issue_memory_request(
        self, request: MemoryRequest, on_done: Callable[[MemoryRequest], None]
    ) -> None:
        """Send one line request into the memory hierarchy."""
        self.hierarchy.access(self.cu_id, request, on_done)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComputeUnit(id={self.cu_id}, resident={self.resident_wavefronts})"
