"""Wavefront execution state machine.

A wavefront walks its :class:`~repro.workloads.trace.WavefrontProgram` in
order.  Compute instructions occupy the CU's SIMD resource; memory
instructions issue line requests into the memory hierarchy.  A wavefront may
keep a bounded number of memory instructions in flight
(``max_outstanding_mem_per_wave``); past that it stalls until responses
return -- this is the mechanism by which memory latency that cannot be
hidden turns into lost issue slots and, ultimately, execution time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.memory.request import MemoryRequest
from repro.workloads.trace import ComputeInstr, MemInstr, WavefrontProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.compute_unit import ComputeUnit

__all__ = ["Wavefront"]


class Wavefront:
    """Runtime state of one wavefront resident on a CU."""

    def __init__(
        self,
        wavefront_id: int,
        kernel_id: int,
        program: WavefrontProgram,
        cu: "ComputeUnit",
        on_finished: Callable[["Wavefront"], None],
    ) -> None:
        self.wavefront_id = wavefront_id
        self.kernel_id = kernel_id
        self.program = program
        self.cu = cu
        self.on_finished = on_finished
        self._next_instr = 0
        self._inflight_mem = 0
        self._pending_lines: dict[int, int] = {}  # mem-instr index -> lines outstanding
        self._blocked = False
        self._finished = False
        self.issued_lines = 0
        self.issued_vector_ops = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin executing at the current simulation time."""
        self.cu.sim.schedule(0, self._issue_next)

    # ------------------------------------------------------------------
    @property
    def done_issuing(self) -> bool:
        return self._next_instr >= len(self.program.instructions)

    @property
    def finished(self) -> bool:
        return self._finished

    def _issue_next(self) -> None:
        if self._finished:
            return
        if self.done_issuing:
            self._maybe_finish()
            return
        if self._inflight_mem >= self.cu.max_outstanding_mem:
            self._blocked = True
            return
        grant = self.cu.issue_port.grant(self.cu.sim.now)
        instruction = self.program.instructions[self._next_instr]
        self._next_instr += 1
        if isinstance(instruction, ComputeInstr):
            self.cu.sim.schedule_at(grant, lambda: self._execute_compute(instruction))
        else:
            self.cu.sim.schedule_at(grant, lambda: self._execute_memory(instruction))

    def _execute_compute(self, instruction: ComputeInstr) -> None:
        now = self.cu.sim.now
        end = self.cu.book_compute(now, instruction.vector_ops)
        self.issued_vector_ops += instruction.vector_ops
        self.cu.stats.add("gpu.vector_ops", instruction.vector_ops)
        self.cu.sim.schedule_at(max(end, now), self._issue_next)

    def _execute_memory(self, instruction: MemInstr) -> None:
        now = self.cu.sim.now
        index = self._next_instr - 1
        self._pending_lines[index] = len(instruction.line_addresses)
        self._inflight_mem += 1
        self.cu.stats.add("gpu.mem_instructions")
        for address in instruction.line_addresses:
            request = MemoryRequest(
                access=instruction.access,
                address=address,
                pc=instruction.pc,
                cu_id=self.cu.cu_id,
                wavefront_id=self.wavefront_id,
                kernel_id=self.kernel_id,
                issue_cycle=now,
            )
            self.issued_lines += 1
            self.cu.issue_memory_request(
                request, lambda req, idx=index: self._on_response(idx, req)
            )
        # keep issuing unless the in-flight window is now full
        if self._inflight_mem < self.cu.max_outstanding_mem:
            self.cu.sim.schedule(1, self._issue_next)
        else:
            self._blocked = True

    def _on_response(self, index: int, request: MemoryRequest) -> None:
        remaining = self._pending_lines.get(index)
        if remaining is None:
            raise RuntimeError(
                f"wavefront {self.wavefront_id} got a response for an unknown "
                f"memory instruction (index {index})"
            )
        if remaining <= 1:
            del self._pending_lines[index]
            self._inflight_mem -= 1
        else:
            self._pending_lines[index] = remaining - 1
        self.cu.stats.observe("gpu.mem_latency", self.cu.sim.now - request.issue_cycle)
        if self._blocked and self._inflight_mem < self.cu.max_outstanding_mem:
            self._blocked = False
            self.cu.sim.schedule(0, self._issue_next)
        elif self.done_issuing:
            self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self._finished or not self.done_issuing or self._inflight_mem > 0:
            return
        self._finished = True
        self.on_finished(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Wavefront(id={self.wavefront_id}, kernel={self.kernel_id}, "
            f"instr={self._next_instr}/{len(self.program.instructions)}, "
            f"inflight={self._inflight_mem})"
        )
