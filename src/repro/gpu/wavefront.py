"""Wavefront execution state machine.

A wavefront walks its :class:`~repro.workloads.trace.WavefrontProgram` in
order.  Compute instructions occupy the CU's SIMD resource; memory
instructions issue line requests into the memory hierarchy.  A wavefront may
keep a bounded number of memory instructions in flight
(``max_outstanding_mem_per_wave``); past that it stalls until responses
return -- this is the mechanism by which memory latency that cannot be
hidden turns into lost issue slots and, ultimately, execution time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.memory.request import MemoryRequest
from repro.workloads.trace import ComputeInstr, MemInstr, WavefrontProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.compute_unit import ComputeUnit

__all__ = ["Wavefront"]


class Wavefront:
    """Runtime state of one wavefront resident on a CU."""

    __slots__ = (
        "wavefront_id",
        "kernel_id",
        "stream_id",
        "program",
        "cu",
        "on_finished",
        "_next_instr",
        "_inflight_mem",
        "_pending_lines",
        "_blocked",
        "_finished",
        "issued_lines",
        "issued_vector_ops",
        "_queue",
        "_schedule",
        "_schedule_at",
        "_instructions",
    )

    def __init__(
        self,
        wavefront_id: int,
        kernel_id: int,
        program: WavefrontProgram,
        cu: "ComputeUnit",
        on_finished: Callable[["Wavefront"], None],
        stream_id: int = 0,
    ) -> None:
        self.wavefront_id = wavefront_id
        self.kernel_id = kernel_id
        self.stream_id = stream_id
        self.program = program
        self.cu = cu
        self.on_finished = on_finished
        self._next_instr = 0
        self._inflight_mem = 0
        self._pending_lines: dict[int, int] = {}  # mem-instr index -> lines outstanding
        self._blocked = False
        self._finished = False
        self.issued_lines = 0
        self.issued_vector_ops = 0
        queue = cu.sim.queue
        self._queue = queue
        self._schedule = queue.schedule
        self._schedule_at = queue.schedule_at
        self._instructions = program.instructions

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin executing at the current simulation time."""
        self._schedule(0, self._issue_next)

    # ------------------------------------------------------------------
    @property
    def done_issuing(self) -> bool:
        return self._next_instr >= len(self._instructions)

    @property
    def finished(self) -> bool:
        return self._finished

    def _issue_next(self) -> None:
        if self._finished:
            return
        instructions = self._instructions
        if self._next_instr >= len(instructions):
            self._maybe_finish()
            return
        cu = self.cu
        if self._inflight_mem >= cu.max_outstanding_mem:
            self._blocked = True
            return
        grant = cu.issue_port.grant(self._queue.now)
        instruction = instructions[self._next_instr]
        self._next_instr += 1
        if isinstance(instruction, ComputeInstr):
            self._schedule_at(grant, lambda: self._execute_compute(instruction))
        else:
            self._schedule_at(grant, lambda: self._execute_memory(instruction))

    def _execute_compute(self, instruction: ComputeInstr) -> None:
        cu = self.cu
        now = self._queue.now
        vector_ops = instruction.vector_ops
        end = cu.book_compute(now, vector_ops)
        self.issued_vector_ops += vector_ops
        cu._c_vector_ops.add(vector_ops)
        self._schedule_at(max(end, now), self._issue_next)

    def _execute_memory(self, instruction: MemInstr) -> None:
        cu = self.cu
        now = self._queue.now
        index = self._next_instr - 1
        line_addresses = instruction.line_addresses
        self._pending_lines[index] = len(line_addresses)
        self._inflight_mem += 1
        cu._c_mem_instructions.add()
        access = instruction.access
        pc = instruction.pc
        for address in line_addresses:
            request = MemoryRequest(
                access=access,
                address=address,
                pc=pc,
                cu_id=cu.cu_id,
                wavefront_id=self.wavefront_id,
                kernel_id=self.kernel_id,
                stream_id=self.stream_id,
                issue_cycle=now,
            )
            self.issued_lines += 1
            cu.issue_memory_request(
                request, lambda req, idx=index: self._on_response(idx, req)
            )
        # keep issuing unless the in-flight window is now full
        if self._inflight_mem < cu.max_outstanding_mem:
            self._schedule(1, self._issue_next)
        else:
            self._blocked = True

    def _on_response(self, index: int, request: MemoryRequest) -> None:
        remaining = self._pending_lines.get(index)
        if remaining is None:
            raise RuntimeError(
                f"wavefront {self.wavefront_id} got a response for an unknown "
                f"memory instruction (index {index})"
            )
        if remaining <= 1:
            del self._pending_lines[index]
            self._inflight_mem -= 1
        else:
            self._pending_lines[index] = remaining - 1
        cu = self.cu
        cu._h_mem_latency[self._queue.now - request.issue_cycle] += 1
        if self._blocked and self._inflight_mem < cu.max_outstanding_mem:
            self._blocked = False
            self._schedule(0, self._issue_next)
        elif self._next_instr >= len(self._instructions):
            self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self._finished or self._next_instr < len(self._instructions) or self._inflight_mem > 0:
            return
        self._finished = True
        self.on_finished(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Wavefront(id={self.wavefront_id}, kernel={self.kernel_id}, "
            f"instr={self._next_instr}/{len(self._instructions)}, "
            f"inflight={self._inflight_mem})"
        )
