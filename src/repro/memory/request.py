"""Memory request primitives.

A :class:`MemoryRequest` is the unit of traffic in the hierarchy: one
cache-line-sized access produced by the per-wavefront coalescer.  Requests
carry the issuing PC (needed by the PC-based reuse predictor), the issuing
CU and wavefront (needed to route the response), and the kernel id (needed
to attribute accesses to synchronization epochs).

Requests are allocated once per line access and touched by every level of
the hierarchy, so the class is slotted (no per-instance ``__dict__``) and
the load/store flags are computed once at construction instead of going
through the :class:`AccessType` enum on every check.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["AccessType", "MemoryRequest"]

_request_ids = itertools.count()


class AccessType(enum.Enum):
    """Kind of memory access."""

    LOAD = "load"
    STORE = "store"

    @property
    def is_load(self) -> bool:
        return self is AccessType.LOAD

    @property
    def is_store(self) -> bool:
        return self is AccessType.STORE


@dataclass(slots=True)
class MemoryRequest:
    """A single cache-line access travelling through the hierarchy.

    Attributes:
        access: load or store.
        address: byte address of the access (line-aligned by the caches).
        pc: program counter of the memory instruction that produced the
            request; used by the PC-based L2 bypass predictor.
        cu_id: compute unit that issued the request.
        wavefront_id: issuing wavefront (unique across the simulation).
        kernel_id: kernel (synchronization epoch) the request belongs to.
        stream_id: execution stream (tenant) the request belongs to; cache
            lines are tagged with it so kernel-boundary synchronization can
            be scoped to the finishing stream.  Always 0 outside
            multi-stream serving runs.
        issue_cycle: cycle at which the CU issued the request.
        bypass_l1 / bypass_l2: set by the policy engine; a bypassed request
            is forwarded without allocating in that cache.
        converted_bypass: True when the allocation-bypass optimization turned
            a cached request into a bypass request because allocation would
            have blocked.
        on_complete: callback invoked exactly once when the data returns to
            the CU (loads) or the store is accepted by its destination.
        complete_cycle: filled in when the request completes.
        is_load / is_store: derived from ``access`` at construction time so
            hot paths branch on a plain attribute instead of two property
            hops through the enum.
    """

    access: AccessType
    address: int
    pc: int = 0
    cu_id: int = 0
    wavefront_id: int = 0
    kernel_id: int = 0
    stream_id: int = 0
    issue_cycle: int = 0
    size: int = 64
    bypass_l1: bool = False
    bypass_l2: bool = False
    converted_bypass: bool = False
    on_complete: Optional[Callable[["MemoryRequest"], None]] = None
    complete_cycle: Optional[int] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    #: per-cache completion callbacks keyed by cache name (coalesced
    #: requests each get their own response); a real slot rather than an
    #: ad-hoc attribute so the class stays ``__dict__``-free
    _cache_callbacks: Optional[dict[str, Callable[["MemoryRequest"], None]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")
        self.is_load = self.access is AccessType.LOAD
        self.is_store = not self.is_load

    def line_address(self, line_bytes: int) -> int:
        """Address of the cache line containing this access."""
        return self.address - (self.address % line_bytes)

    def complete(self, cycle: int) -> None:
        """Mark the request complete and fire its callback (once)."""
        if self.complete_cycle is not None:
            raise RuntimeError(f"request {self.req_id} completed twice")
        self.complete_cycle = cycle
        if self.on_complete is not None:
            self.on_complete(self)

    @property
    def latency(self) -> Optional[int]:
        """Observed round-trip latency in cycles, if completed."""
        if self.complete_cycle is None:
            return None
        return self.complete_cycle - self.issue_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryRequest(id={self.req_id}, {self.access.value}, "
            f"addr=0x{self.address:x}, pc=0x{self.pc:x}, cu={self.cu_id}, "
            f"wf={self.wavefront_id}, k={self.kernel_id})"
        )
