"""Host-side coherence directory interface.

In the simulated APU the GPU L2 interfaces with a conventional CPU coherence
fabric through a shared system directory (paper section III).  GPU requests
that miss (or bypass) the GPU caches are looked up in the directory before
being forwarded to the memory controllers.  The directory model here adds a
fixed lookup latency, a finite lookup bandwidth, and tracks coherence
traffic statistics; it does not model CPU sharers holding GPU data because
the MI workloads studied keep their working sets GPU-resident between
synchronization points (the CPU only touches data around kernel launches).
"""

from __future__ import annotations

from typing import Callable

from repro.engine import Simulator, ThroughputResource
from repro.memory.dram import DramSystem
from repro.memory.request import MemoryRequest
from repro.stats import StatsCollector

__all__ = ["Directory"]


class Directory:
    """System directory between the GPU L2 and the memory controllers."""

    #: directory tag lookup latency, GPU cycles
    LOOKUP_LATENCY = 15

    def __init__(
        self,
        sim: Simulator,
        stats: StatsCollector,
        dram: DramSystem,
        dram_latency: int,
        lookups_per_cycle: float = 4.0,
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.dram = dram
        self.dram_latency = dram_latency
        self.port = ThroughputResource("directory.port", cycles_per_grant=1.0 / lookups_per_cycle)
        self._c_lookups = stats.counter("directory.lookups")
        self._c_read_requests = stats.counter("directory.read_requests")
        self._c_write_requests = stats.counter("directory.write_requests")
        self._queue = sim.queue
        self._schedule_at = sim.queue.schedule_at

    def access(self, request: MemoryRequest, on_done: Callable[[MemoryRequest], None]) -> None:
        """Look up the line and forward the access to DRAM.

        Loads complete (``on_done``) when DRAM returns the line.  Stores are
        acknowledged to the requester once they have been accepted by the
        target DRAM bank queue -- the write itself still occupies DRAM
        bandwidth, which is how the write-through policies pressure memory.
        """
        now = self._queue.now
        grant = self.port.grant(now)
        self._c_lookups.add()
        if request.is_load:
            self._c_read_requests.add()
        else:
            self._c_write_requests.add()

        def forward() -> None:
            if request.is_load:
                self.dram.access(request, on_done)
            else:
                # acknowledge the store when the DRAM bank queue accepts it;
                # the write itself still consumes DRAM bandwidth afterwards
                self.dram.access(
                    request,
                    on_done=lambda r: None,
                    on_accepted=lambda: on_done(request),
                )

        self._schedule_at(grant + self.LOOKUP_LATENCY + self.dram_latency, forward)
