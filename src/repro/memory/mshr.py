"""Miss-status holding registers (MSHRs).

An MSHR tracks an outstanding miss for one cache line and the list of
requests waiting for its fill.  The MSHR file has a fixed capacity; when it
is exhausted, further misses must stall at the cache input (a cache stall in
the paper's terminology) or, under the allocation-bypass optimization, be
converted into bypass requests.

The same structure is reused (with unlimited capacity) as the pending-bypass
coalescing table: the paper notes that when load caching is disabled,
"read requests to the same cache line may be coalesced while the original
bypass request is pending".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.memory.request import MemoryRequest

__all__ = ["MshrEntry", "MshrFile"]


@dataclass(slots=True)
class MshrEntry:
    """Bookkeeping for one outstanding line fill."""

    line_address: int
    primary: MemoryRequest
    allocate_way: Optional[int] = None
    issued_cycle: int = 0
    waiters: list[MemoryRequest] = field(default_factory=list)

    def add_waiter(self, request: MemoryRequest) -> None:
        self.waiters.append(request)

    @property
    def all_requests(self) -> list[MemoryRequest]:
        """Primary request plus every coalesced waiter."""
        return [self.primary, *self.waiters]


class MshrFile:
    """Fixed-capacity table of outstanding misses keyed by line address."""

    def __init__(self, capacity: Optional[int]) -> None:
        """Create an MSHR file.

        Args:
            capacity: maximum simultaneous outstanding lines; ``None`` means
                unlimited (used for the bypass-coalescing table).
        """
        if capacity is not None and capacity <= 0:
            raise ValueError("MSHR capacity must be positive or None")
        self.capacity = capacity
        self._entries: dict[int, MshrEntry] = {}
        self.peak_occupancy = 0
        self.total_allocations = 0
        self.total_coalesced = 0
        self.lookup = self._entries.get

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MshrEntry]:
        return iter(self._entries.values())

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._entries) >= self.capacity

    #: ``lookup(line_address)`` returns the outstanding entry or ``None``;
    #: bound directly to ``dict.get`` in ``__init__`` (hot path)
    lookup: Callable[[int], Optional[MshrEntry]]

    def allocate(
        self,
        line_address: int,
        primary: MemoryRequest,
        cycle: int,
        allocate_way: Optional[int] = None,
    ) -> MshrEntry:
        """Allocate a new entry.  The caller must have checked :attr:`full`."""
        if line_address in self._entries:
            raise RuntimeError(f"MSHR already allocated for line 0x{line_address:x}")
        if self.full:
            raise RuntimeError("MSHR file is full")
        entry = MshrEntry(
            line_address=line_address,
            primary=primary,
            allocate_way=allocate_way,
            issued_cycle=cycle,
        )
        self._entries[line_address] = entry
        self.total_allocations += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def coalesce(self, line_address: int, request: MemoryRequest) -> MshrEntry:
        """Attach ``request`` to the outstanding miss for its line."""
        entry = self._entries.get(line_address)
        if entry is None:
            raise KeyError(f"no outstanding miss for line 0x{line_address:x}")
        entry.add_waiter(request)
        self.total_coalesced += 1
        return entry

    def release(self, line_address: int) -> MshrEntry:
        """Remove and return the entry once its fill has completed."""
        entry = self._entries.pop(line_address, None)
        if entry is None:
            raise KeyError(f"no outstanding miss for line 0x{line_address:x}")
        return entry
