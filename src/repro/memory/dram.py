"""HBM-style DRAM timing model.

The model captures the properties the paper measures:

* per-bank open-row buffers -- an access to the open row is a *row hit*
  (cheap); an access to a closed bank is a *row miss*; an access to a bank
  with a different row open is a *row conflict* (precharge + activate).
* a per-channel data bus with finite bandwidth (one 64 B burst every
  ``burst_cycles`` cycles).
* per-bank queues with an FR-FCFS-style scheduler: among queued requests the
  bank prefers row hits, falling back to the oldest request, with a
  starvation cap so old requests are not deferred indefinitely.
* finite queue capacity -- when a bank queue is full, new arrivals wait,
  which provides natural back-pressure to the write-through store stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import DramConfig
from repro.engine import Simulator, ThroughputResource, WaitQueue
from repro.memory.address_mapping import AddressMapping
from repro.memory.request import MemoryRequest
from repro.stats import StatsCollector

__all__ = ["DramBank", "DramChannel", "DramSystem"]

#: maximum consecutive row-hit preferences before the oldest request is forced
FR_FCFS_STARVATION_LIMIT = 8


@dataclass(slots=True)
class _QueuedAccess:
    request: MemoryRequest
    row: int
    arrival: int
    on_done: Callable[[MemoryRequest], None]


class DramBank:
    """One DRAM bank: an open-row register, a queue and a scheduler."""

    def __init__(
        self,
        name: str,
        config: DramConfig,
        sim: Simulator,
        stats: StatsCollector,
        data_bus: ThroughputResource,
    ) -> None:
        self.name = name
        self.config = config
        self.sim = sim
        self.stats = stats
        self.data_bus = data_bus
        self.open_row: Optional[int] = None
        self.queue: deque[_QueuedAccess] = deque()
        self.busy = False
        self._hits_in_a_row = 0
        self.full_waiters = WaitQueue(f"{name}.full")
        # pre-bound handles: the counters are global ("dram.*"), so every
        # bank shares the same cells and they aggregate exactly as before
        counter = stats.counter
        self._c_enqueued = counter("dram.enqueued")
        self._c_row_hits = counter("dram.row_hits")
        self._c_row_misses = counter("dram.row_misses")
        self._c_row_conflicts = counter("dram.row_conflicts")
        self._c_reads = counter("dram.reads")
        self._c_writes = counter("dram.writes")
        self._c_accesses = counter("dram.accesses")
        self._h_queue_delay = stats.histogram_handle("dram.queue_delay")
        #: fault condition installed by the fault injector (a
        #: :class:`~repro.faults.injector.DramFaultState`); ``None`` --
        #: every healthy run -- keeps the scheduler byte-identical
        self.fault = None
        queue = sim.queue
        self._queue = queue
        self._schedule = queue.schedule
        self._schedule_at = queue.schedule_at

    @property
    def queue_full(self) -> bool:
        return len(self.queue) >= self.config.queue_depth

    def enqueue(
        self, request: MemoryRequest, row: int, on_done: Callable[[MemoryRequest], None]
    ) -> None:
        """Add an access to the bank queue and kick the scheduler."""
        self.queue.append(
            _QueuedAccess(request=request, row=row, arrival=self._queue.now, on_done=on_done)
        )
        self._c_enqueued.add()
        if not self.busy:
            self._schedule_service()

    def _schedule_service(self) -> None:
        if self.busy or not self.queue:
            return
        self.busy = True
        self._schedule(0, self._service_next)

    def _select(self) -> _QueuedAccess:
        """FR-FCFS: prefer a row hit unless the oldest request is starving."""
        oldest = self.queue[0]
        if self.open_row is None:
            return oldest
        if self._hits_in_a_row >= FR_FCFS_STARVATION_LIMIT:
            self._hits_in_a_row = 0
            return oldest
        for access in self.queue:
            if access.row == self.open_row:
                return access
        return oldest

    def _service_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        access = self._select()
        self.queue.remove(access)
        now = self._queue.now

        if self.open_row is None:
            latency = self.config.row_miss_cycles
            self._c_row_misses.add()
            self._hits_in_a_row = 0
        elif self.open_row == access.row:
            latency = self.config.row_hit_cycles
            self._c_row_hits.add()
            self._hits_in_a_row += 1
        else:
            latency = self.config.row_conflict_cycles
            self._c_row_conflicts.add()
            self._hits_in_a_row = 0
        self.open_row = access.row
        fault = self.fault
        if fault is not None:
            # transient latency spike (thermal throttle / refresh storm)
            latency += fault.apply()

        if access.request.is_load:
            self._c_reads.add()
        else:
            self._c_writes.add()
        self._c_accesses.add()
        self._h_queue_delay[now - access.arrival] += 1

        # the data transfer occupies the shared channel bus after the array access
        bus_start = self.data_bus.grant(now + latency)
        finish = bus_start + self.config.burst_cycles

        def done() -> None:
            access.on_done(access.request)
            # space freed in the queue: wake a blocked producer, then continue
            self.full_waiters.wake_one(self._queue.now)
            self._service_next()

        self._schedule_at(finish, done)

    def pending(self) -> int:
        return len(self.queue) + (1 if self.busy else 0)


class DramChannel:
    """A channel: a set of banks sharing one data bus."""

    def __init__(
        self,
        channel_id: int,
        config: DramConfig,
        sim: Simulator,
        stats: StatsCollector,
    ) -> None:
        self.channel_id = channel_id
        self.config = config
        self.sim = sim
        self.stats = stats
        self._queue = sim.queue
        self._c_queue_full_stalls = stats.counter("dram.queue_full_stalls")
        self.data_bus = ThroughputResource(
            f"dram.ch{channel_id}.bus", cycles_per_grant=config.burst_cycles
        )
        self.banks = [
            DramBank(f"dram.ch{channel_id}.bank{b}", config, sim, stats, self.data_bus)
            for b in range(config.banks_per_channel)
        ]

    def access(
        self,
        request: MemoryRequest,
        bank: int,
        row: int,
        on_done: Callable[[MemoryRequest], None],
        on_accepted: Optional[Callable[[], None]] = None,
    ) -> None:
        """Route an access to its bank, waiting if the bank queue is full.

        ``on_accepted`` (if given) fires when the request actually enters the
        bank queue; the write-through store path uses it to acknowledge
        stores, which gives the producer back-pressure when banks are full.
        """
        target = self.banks[bank]
        if target.queue_full:
            self._c_queue_full_stalls.add()

            def retry(_wake_time: int) -> None:
                self.access(request, bank, row, on_done, on_accepted)

            target.full_waiters.wait(self._queue.now, retry)
            return
        if on_accepted is not None:
            on_accepted()
        target.enqueue(request, row, on_done)


class DramSystem:
    """All channels plus the address mapping."""

    def __init__(
        self,
        config: DramConfig,
        sim: Simulator,
        stats: StatsCollector,
        line_bytes: int = 64,
    ) -> None:
        self.config = config
        self.sim = sim
        self.stats = stats
        self.mapping = AddressMapping(config, line_bytes=line_bytes)
        self.channels = [DramChannel(c, config, sim, stats) for c in range(config.channels)]

    def access(
        self,
        request: MemoryRequest,
        on_done: Callable[[MemoryRequest], None],
        on_accepted: Optional[Callable[[], None]] = None,
    ) -> None:
        """Issue one line access; ``on_done`` fires when the burst completes."""
        loc = self.mapping.locate(request.address)
        self.channels[loc.channel].access(request, loc.bank, loc.row, on_done, on_accepted)

    def row_id(self, address: int) -> int:
        """Expose the row mapping for the dirty-block index."""
        return self.mapping.row_id(address)

    def pending(self) -> int:
        """Total requests queued or in flight (used by drain checks in tests)."""
        return sum(bank.pending() for ch in self.channels for bank in ch.banks)

    def row_hit_rate(self) -> float:
        """Fraction of DRAM accesses that hit an open row so far."""
        hits = self.stats.get("dram.row_hits")
        total = self.stats.get("dram.accesses")
        return hits / total if total else 0.0
