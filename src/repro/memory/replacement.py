"""Cache replacement policies.

GPU caches in the simulated system use LRU replacement (the gem5 Ruby GPU
protocol default).  A pseudo-random policy is provided for ablation studies
of replacement sensitivity.
"""

from __future__ import annotations

import abc
from typing import Sequence

__all__ = ["ReplacementPolicy", "LruReplacement", "RandomReplacement", "make_replacement"]


class ReplacementPolicy(abc.ABC):
    """Chooses a victim way among the non-busy ways of a set."""

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int, cycle: int) -> None:
        """Record a touch of ``way`` in ``set_index`` at ``cycle``."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int, cycle: int) -> None:
        """Record insertion of a new line into ``way``."""

    @abc.abstractmethod
    def select_victim(self, set_index: int, candidate_ways: Sequence[int]) -> int:
        """Pick the way to evict among ``candidate_ways`` (never empty)."""


class LruReplacement(ReplacementPolicy):
    """Least-recently-used replacement with per-way timestamps."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        if num_sets <= 0 or assoc <= 0:
            raise ValueError("num_sets and assoc must be positive")
        self._stamps = [[-1] * assoc for _ in range(num_sets)]

    def on_access(self, set_index: int, way: int, cycle: int) -> None:
        self._stamps[set_index][way] = cycle

    def on_fill(self, set_index: int, way: int, cycle: int) -> None:
        self._stamps[set_index][way] = cycle

    def select_victim(self, set_index: int, candidate_ways: Sequence[int]) -> int:
        if not candidate_ways:
            raise ValueError("no candidate ways to evict")
        stamps = self._stamps[set_index]
        return min(candidate_ways, key=lambda way: stamps[way])


class RandomReplacement(ReplacementPolicy):
    """Deterministic pseudo-random replacement (xorshift on an internal seed).

    Random replacement is cheaper in hardware than LRU; it is included so the
    ablation benchmarks can quantify how much the paper's conclusions depend
    on the replacement policy.
    """

    def __init__(self, num_sets: int, assoc: int, seed: int = 0x9E3779B9) -> None:
        if num_sets <= 0 or assoc <= 0:
            raise ValueError("num_sets and assoc must be positive")
        self._state = seed or 1

    def _next(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x & 0xFFFFFFFF
        return self._state

    def on_access(self, set_index: int, way: int, cycle: int) -> None:
        return None

    def on_fill(self, set_index: int, way: int, cycle: int) -> None:
        return None

    def select_victim(self, set_index: int, candidate_ways: Sequence[int]) -> int:
        if not candidate_ways:
            raise ValueError("no candidate ways to evict")
        return candidate_ways[self._next() % len(candidate_ways)]


def make_replacement(kind: str, num_sets: int, assoc: int) -> ReplacementPolicy:
    """Factory used by cache construction.

    Args:
        kind: ``"lru"`` or ``"random"``.
    """
    kind = kind.lower()
    if kind == "lru":
        return LruReplacement(num_sets, assoc)
    if kind == "random":
        return RandomReplacement(num_sets, assoc)
    raise ValueError(f"unknown replacement policy {kind!r}")
