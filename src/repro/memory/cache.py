"""Set-associative GPU cache with MSHRs and blocking allocation.

The same class models both the per-CU write-through L1 data caches and the
shared GPU L2.  The behaviours the paper's results hinge on are all modelled
explicitly:

* **Blocking allocation** -- a miss needs a victim way that is not busy
  (pending fill) and a free MSHR.  When neither is available the request is
  blocked at the cache input and every blocked cycle is counted as a *cache
  stall* (paper section VI.C.1).
* **Allocation bypass** -- with the optimization of section VII.A enabled,
  a request that would block is instead converted into a bypass request and
  forwarded downstream without allocating.
* **Bypass coalescing** -- bypassed loads to the same line are merged while
  the original bypass request is outstanding (paper section III).
* **Write combining (CacheRW)** -- stores allocate dirty lines without
  fetching and later stores to the same line coalesce; dirty data is written
  back on eviction or when :meth:`flush_dirty` is called at a system-scope
  synchronization point.
* **Self-invalidation** -- :meth:`invalidate_clean` drops all valid clean
  lines at kernel boundaries (GPU release/acquire semantics).
* **Cache rinsing (DBI)** -- when a dirty line is evicted and a
  :class:`~repro.core.dirty_block_index.DirtyBlockIndex` is attached, all
  other dirty lines mapping to the same DRAM row are written back with it
  (paper section VII.B).
* **PC-based bypassing** -- when a reuse predictor is attached, loads and
  stores whose PC is predicted dead bypass the cache; a subset of sampler
  sets always caches so the predictor keeps learning (paper section VII.C).

Implementation notes for the hot path: tag lookup is indexed (each set
keeps a ``tag -> way`` dict maintained on fill/evict/invalidate, so lookups
never scan ways linearly), all statistics are pre-bound
:class:`~repro.stats.counters.Counter` handles resolved once in
``__init__``, and event scheduling goes straight to the shared event queue.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Optional

from repro.config import CacheConfig
from repro.engine import Simulator, ThroughputResource, WaitQueue
from repro.memory.mshr import MshrFile
from repro.memory.replacement import make_replacement
from repro.memory.request import AccessType, MemoryRequest
from repro.stats import StatsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.adaptive.set_dueling import SetDuelingMonitor
    from repro.core.dirty_block_index import DirtyBlockIndex
    from repro.core.reuse_predictor import ReusePredictor

__all__ = ["Cache", "CacheLine", "LineState"]

#: latency of the pass-through path used by bypassed requests (cycles)
BYPASS_LATENCY = 5


class LineState(enum.Enum):
    """State of one cache line."""

    INVALID = "invalid"
    VALID = "valid"
    DIRTY = "dirty"
    PENDING = "pending"


_INVALID = LineState.INVALID
_VALID = LineState.VALID
_DIRTY = LineState.DIRTY
_PENDING = LineState.PENDING


class CacheLine:
    """One way of one set.

    ``stream_id`` records which execution stream (tenant) allocated the
    line, so kernel-boundary synchronization can walk only the finishing
    stream's lines.  Outside multi-stream serving runs every request --
    and therefore every line -- carries stream 0.
    """

    __slots__ = ("state", "tag", "inserted_pc", "reused", "stream_id")

    def __init__(
        self,
        state: LineState = _INVALID,
        tag: int = -1,
        inserted_pc: int = 0,
        reused: bool = False,
        stream_id: int = 0,
    ) -> None:
        self.state = state
        self.tag = tag
        self.inserted_pc = inserted_pc
        self.reused = reused
        self.stream_id = stream_id

    @property
    def busy(self) -> bool:
        return self.state is _PENDING

    @property
    def holds_data(self) -> bool:
        state = self.state
        return state is _VALID or state is _DIRTY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheLine({self.state.value}, tag=0x{self.tag:x})"


DownstreamFn = Callable[[MemoryRequest, Callable[[MemoryRequest], None]], None]


class Cache:
    """Timing model of one GPU cache level.

    Args:
        name: human-readable identifier (e.g. ``"l1.cu3"`` or ``"l2"``).
        config: geometry and latency parameters.
        sim: shared simulator (event queue).
        stats: shared counter store; counters are prefixed with
            ``stat_prefix``.
        downstream: function used to forward misses, bypasses and writebacks
            to the next level.  It receives the request and a response
            callback.
        stat_prefix: namespace for this cache's counters (``"l1"``/``"l2"``),
            so per-CU L1s aggregate naturally.
        allocation_bypass: enable the section VII.A optimization.
        reuse_predictor: optional PC-based reuse predictor (section VII.C).
        dirty_block_index: optional DBI used for cache rinsing (VII.B).
        row_of: maps a line address to its DRAM row identifier (required when
            a DBI is attached).
        replacement: ``"lru"`` (default) or ``"random"``.
    """

    def __init__(
        self,
        name: str,
        config: CacheConfig,
        sim: Simulator,
        stats: StatsCollector,
        downstream: DownstreamFn,
        stat_prefix: str,
        allocation_bypass: bool = False,
        reuse_predictor: Optional["ReusePredictor"] = None,
        dirty_block_index: Optional["DirtyBlockIndex"] = None,
        row_of: Optional[Callable[[int], int]] = None,
        replacement: str = "lru",
    ) -> None:
        self.name = name
        self.config = config
        self.sim = sim
        self.stats = stats
        self.downstream = downstream
        self.prefix = stat_prefix
        self.allocation_bypass = allocation_bypass
        self.reuse_predictor = reuse_predictor
        self.dbi = dirty_block_index
        self.row_of = row_of
        if self.dbi is not None and self.row_of is None:
            raise ValueError("a dirty-block index requires a row_of mapping function")

        self.sets: list[list[CacheLine]] = [
            [CacheLine() for _ in range(config.assoc)] for _ in range(config.num_sets)
        ]
        #: per-set tag -> way index, maintained on fill/evict/invalidate so
        #: lookups are one dict probe instead of a scan over the ways
        self._tag_to_way: list[dict[int, int]] = [{} for _ in range(config.num_sets)]
        self.replacement = make_replacement(replacement, config.num_sets, config.assoc)
        self.mshrs = MshrFile(config.mshrs)
        self.bypass_pending = MshrFile(capacity=None)
        #: optional set-dueling observer (attached to the L2 by adaptive
        #: sessions); when None -- every static run -- the hooks cost one
        #: attribute test per lookup and record nothing
        self.set_monitor: Optional["SetDuelingMonitor"] = None
        self.port = ThroughputResource(f"{name}.port", cycles_per_grant=1.0 / config.ports)
        self._set_waiters: dict[int, WaitQueue] = {}
        # sampler sets always cache so the reuse predictor keeps training
        self._sampler_stride = 16
        # blocked-on-MSHR requests poll for a free entry on this period; the
        # added latency is negligible next to memory latency under load and
        # the polling model cannot lose wake-ups
        self._mshr_retry_period = 64

        # geometry constants and event-queue entry points, resolved once
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._hit_latency = config.hit_latency
        queue = sim.queue
        self._queue = queue
        self._schedule = queue.schedule
        self._schedule_at = queue.schedule_at

        # pre-bound counter handles: no per-access f-strings or dict hashing
        counter = stats.counter
        prefix = stat_prefix
        self._c_accesses = counter(f"{prefix}.accesses")
        self._c_hits = counter(f"{prefix}.hits")
        self._c_misses = counter(f"{prefix}.misses")
        self._c_fills = counter(f"{prefix}.fills")
        self._c_stall_cycles = counter(f"{prefix}.stall_cycles")
        self._c_stall_cycles_port = counter(f"{prefix}.stall_cycles_port")
        self._c_stall_cycles_alloc = counter(f"{prefix}.stall_cycles_alloc")
        self._c_blocked_set_busy = counter(f"{prefix}.blocked_set_busy")
        self._c_blocked_mshr_full = counter(f"{prefix}.blocked_mshr_full")
        self._c_mshr_coalesced = counter(f"{prefix}.mshr_coalesced")
        self._c_store_coalesced_on_miss = counter(f"{prefix}.store_coalesced_on_miss")
        self._c_store_hits = counter(f"{prefix}.store_hits")
        self._c_store_allocates = counter(f"{prefix}.store_allocates")
        self._c_writethrough_stores = counter(f"{prefix}.writethrough_stores")
        self._c_self_invalidations = counter(f"{prefix}.self_invalidations")
        self._c_flush_writebacks = counter(f"{prefix}.flush_writebacks")
        self._c_eviction_writebacks = counter(f"{prefix}.eviction_writebacks")
        self._c_clean_evictions = counter(f"{prefix}.clean_evictions")
        self._c_rinse_writebacks = counter(f"{prefix}.rinse_writebacks")
        self._c_writebacks = counter(f"{prefix}.writebacks")
        self._c_bypasses = counter(f"{prefix}.bypasses")
        self._c_bypass_coalesced = counter(f"{prefix}.bypass_coalesced")
        self._c_allocation_bypasses = counter(f"{prefix}.allocation_bypasses")
        self._c_predictor_bypasses = counter(f"{prefix}.predictor_bypasses")
        self._is_l1 = stat_prefix.startswith("l1")

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def access(self, request: MemoryRequest, on_done: Callable[[MemoryRequest], None]) -> None:
        """Handle ``request`` arriving at this cache at the current cycle."""
        self._c_accesses.add()
        if self._is_bypass(request):
            self._bypass_access(request, on_done)
            return
        now = self._queue.now
        grant = self.port.grant(now)
        wait = grant - now
        if wait > 0:
            self._c_stall_cycles_port.add(wait)
            self._c_stall_cycles.add(wait)
        self._schedule_at(grant, lambda: self._lookup(request, on_done, first_attempt=True))

    def invalidate_clean(self, stream_id: Optional[int] = None) -> int:
        """Self-invalidate valid (clean) lines; returns the count dropped.

        Dirty lines are left in place -- they are handled by
        :meth:`flush_dirty` at release synchronization points.

        Args:
            stream_id: when given, only lines allocated by that execution
                stream are invalidated (stream-scoped acquire at a
                multi-tenant kernel boundary); ``None`` -- every
                single-stream run -- drops all valid lines.
        """
        dropped = 0
        for ways, tag_map in zip(self.sets, self._tag_to_way):
            for line in ways:
                if line.state is _VALID and (
                    stream_id is None or line.stream_id == stream_id
                ):
                    self._notify_eviction(line)
                    line.state = _INVALID
                    tag_map.pop(line.tag, None)
                    line.tag = -1
                    dropped += 1
        self._c_self_invalidations.add(dropped)
        return dropped

    def flush_dirty(
        self,
        on_complete: Callable[[], None],
        keep_clean: bool = True,
        stream_id: Optional[int] = None,
    ) -> int:
        """Write back dirty lines, then invoke ``on_complete``.

        Returns the number of writebacks issued.  With a dirty-block index
        attached the flush walks DRAM rows (row-ordered writebacks); without
        one it walks sets in index order, which is what a hardware flush
        engine does and which produces the row-locality disruption discussed
        in section VI.C.2.

        Args:
            keep_clean: leave the flushed lines valid (clean) in the cache,
                as a release flush does; pass False to invalidate them.
            stream_id: when given, only lines allocated by that execution
                stream are flushed (stream-scoped release at a multi-tenant
                kernel boundary); ``None`` flushes every dirty line.
        """
        dirty: list[tuple[int, int]] = []  # (set_index, way)
        for set_index, ways in enumerate(self.sets):
            for way, line in enumerate(ways):
                if line.state is _DIRTY and (
                    stream_id is None or line.stream_id == stream_id
                ):
                    dirty.append((set_index, way))
        if not dirty:
            self._schedule(0, on_complete)
            return 0
        if self.dbi is not None:
            dirty.sort(key=lambda sw: self.row_of(self._line_address(*sw)))
        outstanding = len(dirty)

        def writeback_done(_req: MemoryRequest) -> None:
            nonlocal outstanding
            outstanding -= 1
            if outstanding == 0:
                on_complete()

        for set_index, way in dirty:
            line = self.sets[set_index][way]
            address = self._line_address(set_index, way)
            if keep_clean:
                line.state = _VALID
            else:
                self._notify_eviction(line)
                line.state = _INVALID
                self._tag_to_way[set_index].pop(line.tag, None)
                line.tag = -1
            if self.dbi is not None:
                self.dbi.clear(address)
            self._send_writeback(address, writeback_done)
        self._c_flush_writebacks.add(len(dirty))
        return len(dirty)

    def contents(self) -> dict[int, LineState]:
        """Snapshot of line states keyed by line address (for tests)."""
        result: dict[int, LineState] = {}
        for set_index, ways in enumerate(self.sets):
            for way, line in enumerate(ways):
                if line.state is not _INVALID and line.tag >= 0:
                    result[self._line_address(set_index, way)] = line.state
        return result

    def dirty_line_count(self) -> int:
        """Number of dirty lines currently held."""
        return sum(1 for ways in self.sets for line in ways if line.state is _DIRTY)

    # ------------------------------------------------------------------
    # lookup path
    # ------------------------------------------------------------------
    def _is_bypass(self, request: MemoryRequest) -> bool:
        """Decide whether this request uses the bypass path at this level."""
        if self._is_l1:
            if request.bypass_l1:
                return True
        elif request.bypass_l2:
            return True
        if self.reuse_predictor is not None and not self._is_sampler_set(request):
            if self.reuse_predictor.should_bypass(request.pc):
                self._c_predictor_bypasses.add()
                return True
        return False

    def _is_sampler_set(self, request: MemoryRequest) -> bool:
        set_index = (request.address // self._line_bytes) % self._num_sets
        return set_index % self._sampler_stride == 0

    def _lookup(
        self,
        request: MemoryRequest,
        on_done: Callable[[MemoryRequest], None],
        first_attempt: bool,
    ) -> None:
        address = request.address
        line_address = address - (address % self._line_bytes)
        set_index = (address // self._line_bytes) % self._num_sets

        # hit?  (the tag map also holds PENDING lines, which do not hit)
        way = self._tag_to_way[set_index].get(line_address)
        if way is not None:
            line = self.sets[set_index][way]
            state = line.state
            if state is _VALID or state is _DIRTY:
                self._on_hit(request, set_index, way, on_done)
                return

        # outstanding miss for the same line?
        entry = self.mshrs.lookup(line_address)
        if entry is not None:
            if request.is_store and self.config.writeback:
                # the store's data will be merged when the fill returns
                entry.add_waiter(request)
                self._c_store_coalesced_on_miss.add()
            else:
                self.mshrs.coalesce(line_address, request)
            self._c_mshr_coalesced.add()
            self._record_waiter_callback(request, on_done)
            return

        # miss: need an MSHR (loads) and a victim way
        if first_attempt:
            self._c_misses.add()
            if self.set_monitor is not None:
                self.set_monitor.record_miss(set_index, request.is_store)
        if request.is_store and self.config.writeback:
            self._store_allocate(request, set_index, line_address, on_done)
            return
        self._load_miss(request, set_index, line_address, on_done)

    def _on_hit(
        self,
        request: MemoryRequest,
        set_index: int,
        way: int,
        on_done: Callable[[MemoryRequest], None],
    ) -> None:
        line = self.sets[set_index][way]
        line.reused = True
        if self.reuse_predictor is not None:
            self.reuse_predictor.train_reuse(line.inserted_pc)
            self.reuse_predictor.train_reuse(request.pc)
        self.replacement.on_access(set_index, way, self._queue.now)
        self._c_hits.add()
        if request.is_store:
            if self.config.writeback:
                line.state = _DIRTY
                # the dirty data belongs to the storing stream: its own
                # release (kernel boundary) must write it back
                line.stream_id = request.stream_id
                if self.dbi is not None:
                    self.dbi.mark_dirty(self._line_address(set_index, way))
                self._c_store_hits.add()
            else:
                # write-through cache: update and forward the write downstream
                self._c_writethrough_stores.add()
                self._schedule(
                    self._hit_latency,
                    lambda: self.downstream(request, lambda r: None),
                )
                self._schedule(self._hit_latency, lambda: on_done(request))
                return
        self._schedule(self._hit_latency, lambda: on_done(request))

    def _load_miss(
        self,
        request: MemoryRequest,
        set_index: int,
        line_address: int,
        on_done: Callable[[MemoryRequest], None],
    ) -> None:
        victim_way = self._find_victim(set_index)
        blocked_reason = None
        if victim_way is None:
            blocked_reason = "set_busy"
        elif self.mshrs.full:
            blocked_reason = "mshr_full"

        if blocked_reason is not None:
            if self.allocation_bypass:
                request.converted_bypass = True
                self._c_allocation_bypasses.add()
                self._bypass_access(request, on_done)
                return
            self._block(request, set_index, blocked_reason, on_done)
            return

        self._evict(set_index, victim_way)
        victim = self.sets[set_index][victim_way]
        victim.state = _PENDING
        victim.tag = line_address
        victim.inserted_pc = request.pc
        victim.reused = False
        victim.stream_id = request.stream_id
        self._tag_to_way[set_index][line_address] = victim_way
        self.mshrs.allocate(
            line_address, request, self._queue.now, allocate_way=victim_way
        )
        self._record_waiter_callback(request, on_done)
        if self.reuse_predictor is not None:
            self.reuse_predictor.record_insertion(request.pc)

        miss_request = request
        self._schedule(
            self._hit_latency,
            lambda: self.downstream(
                miss_request, lambda resp: self._fill(line_address, set_index, victim_way)
            ),
        )

    def _store_allocate(
        self,
        request: MemoryRequest,
        set_index: int,
        line_address: int,
        on_done: Callable[[MemoryRequest], None],
    ) -> None:
        """Write-combining store miss: allocate a dirty line without fetching."""
        victim_way = self._find_victim(set_index)
        if victim_way is None:
            if self.allocation_bypass:
                request.converted_bypass = True
                self._c_allocation_bypasses.add()
                self._bypass_access(request, on_done)
                return
            self._block(request, set_index, "set_busy", on_done)
            return
        self._evict(set_index, victim_way)
        line = self.sets[set_index][victim_way]
        line.state = _DIRTY
        line.tag = line_address
        line.inserted_pc = request.pc
        line.reused = False
        line.stream_id = request.stream_id
        self._tag_to_way[set_index][line_address] = victim_way
        self.replacement.on_fill(set_index, victim_way, self._queue.now)
        if self.dbi is not None:
            self.dbi.mark_dirty(line_address)
        if self.reuse_predictor is not None:
            self.reuse_predictor.record_insertion(request.pc)
        self._c_store_allocates.add()
        self._schedule(self._hit_latency, lambda: on_done(request))

    # ------------------------------------------------------------------
    # blocking / waking
    # ------------------------------------------------------------------
    def _block(
        self,
        request: MemoryRequest,
        set_index: int,
        reason: str,
        on_done: Callable[[MemoryRequest], None],
    ) -> None:
        """Park a request that cannot allocate; it retries when unblocked.

        Set-busy blocking uses precise per-set wake-ups (every way of the set
        holds a pending fill, and each completing fill wakes the waiters).
        MSHR exhaustion uses periodic polling instead: a fill releasing an
        MSHR does not guarantee that the woken request can use it (it may hit
        or coalesce on retry), so event-driven wake-ups can strand waiters;
        polling cannot.
        """
        blocked_at = self._queue.now
        if reason == "set_busy":
            self._c_blocked_set_busy.add()
        else:
            self._c_blocked_mshr_full.add()

        def account(wake_time: int) -> None:
            stall = wake_time - blocked_at
            if stall > 0:
                self._c_stall_cycles_alloc.add(stall)
                self._c_stall_cycles.add(stall)
                if self.set_monitor is not None:
                    self.set_monitor.record_stall(set_index, stall)

        if reason == "set_busy":

            def resume(wake_time: int) -> None:
                account(wake_time)
                grant = self.port.grant(wake_time)
                self._schedule_at(
                    grant, lambda: self._lookup(request, on_done, first_attempt=False)
                )

            self._set_wait_queue(set_index).wait(blocked_at, resume)
            return

        def retry() -> None:
            now = self._queue.now
            if self.mshrs.full:
                self._schedule(self._mshr_retry_period, retry)
                return
            account(now)
            grant = self.port.grant(now)
            self._schedule_at(
                grant, lambda: self._lookup(request, on_done, first_attempt=False)
            )

        self._schedule(self._mshr_retry_period, retry)

    def _set_wait_queue(self, set_index: int) -> WaitQueue:
        queue = self._set_waiters.get(set_index)
        if queue is None:
            queue = WaitQueue(f"{self.name}.set{set_index}")
            self._set_waiters[set_index] = queue
        return queue

    def _wake_after_fill(self, set_index: int) -> None:
        queue = self._set_waiters.get(set_index)
        if queue:
            queue.wake_all(self._queue.now)

    # ------------------------------------------------------------------
    # fills, evictions, writebacks
    # ------------------------------------------------------------------
    def _fill(self, line_address: int, set_index: int, way: int) -> None:
        """Downstream response arrived: install the line, answer waiters."""
        now = self._queue.now
        entry = self.mshrs.release(line_address)
        line = self.sets[set_index][way]
        requests = entry.all_requests
        any_store = any(r.is_store for r in requests)
        line.state = _DIRTY if (any_store and self.config.writeback) else _VALID
        if line.state is _DIRTY:
            # a store coalesced from another stream dirties the line on its
            # behalf: the release duty follows the (first) storing stream
            for req in requests:
                if req.is_store:
                    line.stream_id = req.stream_id
                    break
        line.tag = line_address
        self.replacement.on_fill(set_index, way, now)
        if line.state is _DIRTY and self.dbi is not None:
            self.dbi.mark_dirty(line_address)
        if len(requests) > 1:
            line.reused = True
            if self.reuse_predictor is not None:
                self.reuse_predictor.train_reuse(line.inserted_pc)
        self._c_fills.add()
        schedule = self._schedule
        for req in requests:
            callback = self._pop_waiter_callback(req)
            if callback is not None:
                schedule(0, lambda r=req, cb=callback: cb(r))
        self._wake_after_fill(set_index)

    def _find_victim(self, set_index: int) -> Optional[int]:
        """Pick a victim way, or None if every way is busy (pending fill).

        Single pass, no intermediate lists: the first invalid way wins
        immediately; otherwise the non-busy ways are collected lazily for
        the replacement policy.
        """
        ways = self.sets[set_index]
        candidates: Optional[list[int]] = None
        for way, line in enumerate(ways):
            state = line.state
            if state is _INVALID:
                return way
            if state is not _PENDING:
                if candidates is None:
                    candidates = [way]
                else:
                    candidates.append(way)
        if candidates is None:
            return None
        return self.replacement.select_victim(set_index, candidates)

    def _evict(self, set_index: int, way: int) -> None:
        """Evict the current occupant of ``way`` (issuing writebacks as needed)."""
        line = self.sets[set_index][way]
        if line.state is _INVALID:
            return
        address = self._line_address(set_index, way)
        self._notify_eviction(line)
        if line.state is _DIRTY:
            self._c_eviction_writebacks.add()
            if self.dbi is not None:
                self._rinse_row(address)
            else:
                self._send_writeback(address, lambda r: None)
        else:
            self._c_clean_evictions.add()
        line.state = _INVALID
        self._tag_to_way[set_index].pop(line.tag, None)
        line.tag = -1

    def _rinse_row(self, evicted_address: int) -> None:
        """Write back the evicted dirty line plus all dirty lines in its DRAM row."""
        row = self.row_of(evicted_address)
        victims = [evicted_address]
        for address in self.dbi.dirty_lines_in_row(row):
            if address != evicted_address:
                victims.append(address)
        self.dbi.clear(evicted_address)
        for address in victims[1:]:
            located = self._locate(address)
            if located is None:
                self.dbi.clear(address)
                continue
            set_index, way = located
            line = self.sets[set_index][way]
            if line.state is not _DIRTY:
                self.dbi.clear(address)
                continue
            line.state = _VALID  # data stays, now clean
            self.dbi.clear(address)
            self._c_rinse_writebacks.add()
            self._send_writeback(address, lambda r: None)
        self._send_writeback(evicted_address, lambda r: None)

    def _locate(self, line_address: int) -> Optional[tuple[int, int]]:
        set_index = (line_address // self._line_bytes) % self._num_sets
        way = self._tag_to_way[set_index].get(line_address)
        if way is None:
            return None
        state = self.sets[set_index][way].state
        if state is _VALID or state is _DIRTY:
            return set_index, way
        return None

    def _send_writeback(self, address: int, on_done: Callable[[MemoryRequest], None]) -> None:
        writeback = MemoryRequest(
            access=AccessType.STORE,
            address=address,
            pc=0,
            issue_cycle=self._queue.now,
            bypass_l1=True,
            bypass_l2=True,
        )
        self._c_writebacks.add()
        self.downstream(writeback, on_done)

    def _notify_eviction(self, line: CacheLine) -> None:
        if self.reuse_predictor is not None and line.state is not _INVALID:
            self.reuse_predictor.train_eviction(line.inserted_pc, line.reused)

    # ------------------------------------------------------------------
    # bypass path
    # ------------------------------------------------------------------
    def _bypass_access(
        self, request: MemoryRequest, on_done: Callable[[MemoryRequest], None]
    ) -> None:
        """Forward without allocation, coalescing pending bypassed loads."""
        self._c_bypasses.add()
        address = request.address
        line_address = address - (address % self._line_bytes)
        if request.is_load:
            pending = self.bypass_pending.lookup(line_address)
            if pending is not None:
                self.bypass_pending.coalesce(line_address, request)
                self._record_waiter_callback(request, on_done)
                self._c_bypass_coalesced.add()
                return
            if self.set_monitor is not None:
                # only traffic-initiating bypasses score (coalesced riders
                # are free, matching the MSHR-coalesced case on the cached
                # side which is likewise not recorded)
                self.set_monitor.record_bypass(
                    (address // self._line_bytes) % self._num_sets, False
                )
            self.bypass_pending.allocate(line_address, request, self._queue.now)
            self._record_waiter_callback(request, on_done)
            self._schedule(
                BYPASS_LATENCY,
                lambda: self.downstream(request, lambda resp: self._bypass_fill(line_address)),
            )
            return
        # bypassed store: fire and forward; completion when downstream accepts
        if self.set_monitor is not None:
            self.set_monitor.record_bypass(
                (address // self._line_bytes) % self._num_sets, True
            )
        self._schedule(BYPASS_LATENCY, lambda: self.downstream(request, on_done))

    def _bypass_fill(self, line_address: int) -> None:
        entry = self.bypass_pending.release(line_address)
        schedule = self._schedule
        for req in entry.all_requests:
            callback = self._pop_waiter_callback(req)
            if callback is not None:
                schedule(0, lambda r=req, cb=callback: cb(r))

    # ------------------------------------------------------------------
    # waiter-callback bookkeeping
    # ------------------------------------------------------------------
    def _record_waiter_callback(
        self, request: MemoryRequest, on_done: Callable[[MemoryRequest], None]
    ) -> None:
        # completion callbacks are stored on the request itself so coalesced
        # requests each get their own response
        callbacks = request._cache_callbacks
        if callbacks is None:
            callbacks = request._cache_callbacks = {}
        callbacks[self.name] = on_done

    def _pop_waiter_callback(
        self, request: MemoryRequest
    ) -> Optional[Callable[[MemoryRequest], None]]:
        callbacks = request._cache_callbacks
        if not callbacks:
            return None
        return callbacks.pop(self.name, None)

    # ------------------------------------------------------------------
    def _line_address(self, set_index: int, way: int) -> int:
        return self.sets[set_index][way].tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cache({self.name}, {self.config.size_bytes // 1024} KB)"
