"""Set-associative GPU cache with MSHRs and blocking allocation.

The same class models both the per-CU write-through L1 data caches and the
shared GPU L2.  The behaviours the paper's results hinge on are all modelled
explicitly:

* **Blocking allocation** -- a miss needs a victim way that is not busy
  (pending fill) and a free MSHR.  When neither is available the request is
  blocked at the cache input and every blocked cycle is counted as a *cache
  stall* (paper section VI.C.1).
* **Allocation bypass** -- with the optimization of section VII.A enabled,
  a request that would block is instead converted into a bypass request and
  forwarded downstream without allocating.
* **Bypass coalescing** -- bypassed loads to the same line are merged while
  the original bypass request is outstanding (paper section III).
* **Write combining (CacheRW)** -- stores allocate dirty lines without
  fetching and later stores to the same line coalesce; dirty data is written
  back on eviction or when :meth:`flush_dirty` is called at a system-scope
  synchronization point.
* **Self-invalidation** -- :meth:`invalidate_clean` drops all valid clean
  lines at kernel boundaries (GPU release/acquire semantics).
* **Cache rinsing (DBI)** -- when a dirty line is evicted and a
  :class:`~repro.core.dirty_block_index.DirtyBlockIndex` is attached, all
  other dirty lines mapping to the same DRAM row are written back with it
  (paper section VII.B).
* **PC-based bypassing** -- when a reuse predictor is attached, loads and
  stores whose PC is predicted dead bypass the cache; a subset of sampler
  sets always caches so the predictor keeps learning (paper section VII.C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.config import CacheConfig
from repro.engine import Simulator, ThroughputResource, WaitQueue
from repro.memory.mshr import MshrFile
from repro.memory.replacement import make_replacement
from repro.memory.request import AccessType, MemoryRequest
from repro.stats import StatsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.dirty_block_index import DirtyBlockIndex
    from repro.core.reuse_predictor import ReusePredictor

__all__ = ["Cache", "CacheLine", "LineState"]

#: latency of the pass-through path used by bypassed requests (cycles)
BYPASS_LATENCY = 5


class LineState(enum.Enum):
    """State of one cache line."""

    INVALID = "invalid"
    VALID = "valid"
    DIRTY = "dirty"
    PENDING = "pending"


@dataclass
class CacheLine:
    """One way of one set."""

    state: LineState = LineState.INVALID
    tag: int = -1
    inserted_pc: int = 0
    reused: bool = False

    @property
    def busy(self) -> bool:
        return self.state is LineState.PENDING

    @property
    def holds_data(self) -> bool:
        return self.state in (LineState.VALID, LineState.DIRTY)


DownstreamFn = Callable[[MemoryRequest, Callable[[MemoryRequest], None]], None]


class Cache:
    """Timing model of one GPU cache level.

    Args:
        name: human-readable identifier (e.g. ``"l1.cu3"`` or ``"l2"``).
        config: geometry and latency parameters.
        sim: shared simulator (event queue).
        stats: shared counter store; counters are prefixed with
            ``stat_prefix``.
        downstream: function used to forward misses, bypasses and writebacks
            to the next level.  It receives the request and a response
            callback.
        stat_prefix: namespace for this cache's counters (``"l1"``/``"l2"``),
            so per-CU L1s aggregate naturally.
        allocation_bypass: enable the section VII.A optimization.
        reuse_predictor: optional PC-based reuse predictor (section VII.C).
        dirty_block_index: optional DBI used for cache rinsing (VII.B).
        row_of: maps a line address to its DRAM row identifier (required when
            a DBI is attached).
        replacement: ``"lru"`` (default) or ``"random"``.
    """

    def __init__(
        self,
        name: str,
        config: CacheConfig,
        sim: Simulator,
        stats: StatsCollector,
        downstream: DownstreamFn,
        stat_prefix: str,
        allocation_bypass: bool = False,
        reuse_predictor: Optional["ReusePredictor"] = None,
        dirty_block_index: Optional["DirtyBlockIndex"] = None,
        row_of: Optional[Callable[[int], int]] = None,
        replacement: str = "lru",
    ) -> None:
        self.name = name
        self.config = config
        self.sim = sim
        self.stats = stats
        self.downstream = downstream
        self.prefix = stat_prefix
        self.allocation_bypass = allocation_bypass
        self.reuse_predictor = reuse_predictor
        self.dbi = dirty_block_index
        self.row_of = row_of
        if self.dbi is not None and self.row_of is None:
            raise ValueError("a dirty-block index requires a row_of mapping function")

        self.sets: list[list[CacheLine]] = [
            [CacheLine() for _ in range(config.assoc)] for _ in range(config.num_sets)
        ]
        self.replacement = make_replacement(replacement, config.num_sets, config.assoc)
        self.mshrs = MshrFile(config.mshrs)
        self.bypass_pending = MshrFile(capacity=None)
        self.port = ThroughputResource(f"{name}.port", cycles_per_grant=1.0 / config.ports)
        self._set_waiters: dict[int, WaitQueue] = {}
        # sampler sets always cache so the reuse predictor keeps training
        self._sampler_stride = 16
        # blocked-on-MSHR requests poll for a free entry on this period; the
        # added latency is negligible next to memory latency under load and
        # the polling model cannot lose wake-ups
        self._mshr_retry_period = 64

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def access(self, request: MemoryRequest, on_done: Callable[[MemoryRequest], None]) -> None:
        """Handle ``request`` arriving at this cache at the current cycle."""
        self.stats.add(f"{self.prefix}.accesses")
        if self._is_bypass(request):
            self._bypass_access(request, on_done)
            return
        now = self.sim.now
        grant = self.port.grant(now)
        wait = grant - now
        if wait > 0:
            self.stats.add(f"{self.prefix}.stall_cycles_port", wait)
            self.stats.add(f"{self.prefix}.stall_cycles", wait)
        self.sim.schedule_at(grant, lambda: self._lookup(request, on_done, first_attempt=True))

    def invalidate_clean(self) -> int:
        """Self-invalidate every valid (clean) line; returns the count dropped.

        Dirty lines are left in place -- they are handled by
        :meth:`flush_dirty` at release synchronization points.
        """
        dropped = 0
        for set_index, ways in enumerate(self.sets):
            for way, line in enumerate(ways):
                if line.state is LineState.VALID:
                    self._notify_eviction(line)
                    line.state = LineState.INVALID
                    line.tag = -1
                    dropped += 1
        self.stats.add(f"{self.prefix}.self_invalidations", dropped)
        return dropped

    def flush_dirty(self, on_complete: Callable[[], None], keep_clean: bool = True) -> int:
        """Write back every dirty line, then invoke ``on_complete``.

        Returns the number of writebacks issued.  With a dirty-block index
        attached the flush walks DRAM rows (row-ordered writebacks); without
        one it walks sets in index order, which is what a hardware flush
        engine does and which produces the row-locality disruption discussed
        in section VI.C.2.

        Args:
            keep_clean: leave the flushed lines valid (clean) in the cache,
                as a release flush does; pass False to invalidate them.
        """
        dirty: list[tuple[int, int]] = []  # (set_index, way)
        for set_index, ways in enumerate(self.sets):
            for way, line in enumerate(ways):
                if line.state is LineState.DIRTY:
                    dirty.append((set_index, way))
        if not dirty:
            self.sim.schedule(0, on_complete)
            return 0
        if self.dbi is not None:
            dirty.sort(key=lambda sw: self.row_of(self._line_address(*sw)))
        outstanding = len(dirty)

        def writeback_done(_req: MemoryRequest) -> None:
            nonlocal outstanding
            outstanding -= 1
            if outstanding == 0:
                on_complete()

        for set_index, way in dirty:
            line = self.sets[set_index][way]
            address = self._line_address(set_index, way)
            if keep_clean:
                line.state = LineState.VALID
            else:
                self._notify_eviction(line)
                line.state = LineState.INVALID
                line.tag = -1
            if self.dbi is not None:
                self.dbi.clear(address)
            self._send_writeback(address, writeback_done)
        self.stats.add(f"{self.prefix}.flush_writebacks", len(dirty))
        return len(dirty)

    def contents(self) -> dict[int, LineState]:
        """Snapshot of line states keyed by line address (for tests)."""
        result: dict[int, LineState] = {}
        for set_index, ways in enumerate(self.sets):
            for way, line in enumerate(ways):
                if line.state is not LineState.INVALID and line.tag >= 0:
                    result[self._line_address(set_index, way)] = line.state
        return result

    def dirty_line_count(self) -> int:
        """Number of dirty lines currently held."""
        return sum(
            1 for ways in self.sets for line in ways if line.state is LineState.DIRTY
        )

    # ------------------------------------------------------------------
    # lookup path
    # ------------------------------------------------------------------
    def _is_bypass(self, request: MemoryRequest) -> bool:
        """Decide whether this request uses the bypass path at this level."""
        if self.prefix.startswith("l1"):
            if request.bypass_l1:
                return True
        elif request.bypass_l2:
            return True
        if self.reuse_predictor is not None and not self._is_sampler_set(request):
            if self.reuse_predictor.should_bypass(request.pc):
                self.stats.add(f"{self.prefix}.predictor_bypasses")
                return True
        return False

    def _is_sampler_set(self, request: MemoryRequest) -> bool:
        set_index = self.config.set_index(request.address)
        return set_index % self._sampler_stride == 0

    def _lookup(
        self,
        request: MemoryRequest,
        on_done: Callable[[MemoryRequest], None],
        first_attempt: bool,
    ) -> None:
        now = self.sim.now
        line_address = request.line_address(self.config.line_bytes)
        set_index = self.config.set_index(request.address)
        ways = self.sets[set_index]
        tag = line_address

        # hit?
        for way, line in enumerate(ways):
            if line.holds_data and line.tag == tag:
                self._on_hit(request, set_index, way, on_done)
                return

        # outstanding miss for the same line?
        entry = self.mshrs.lookup(line_address)
        if entry is not None:
            if request.is_store and self.config.writeback:
                # the store's data will be merged when the fill returns
                entry.add_waiter(request)
                self.stats.add(f"{self.prefix}.store_coalesced_on_miss")
            else:
                self.mshrs.coalesce(line_address, request)
            self.stats.add(f"{self.prefix}.mshr_coalesced")
            self._record_waiter_callback(request, on_done)
            return

        # miss: need an MSHR (loads) and a victim way
        if first_attempt:
            self.stats.add(f"{self.prefix}.misses")
        if request.is_store and self.config.writeback:
            self._store_allocate(request, set_index, on_done, first_attempt)
            return
        self._load_miss(request, set_index, line_address, on_done, first_attempt)

    def _on_hit(
        self,
        request: MemoryRequest,
        set_index: int,
        way: int,
        on_done: Callable[[MemoryRequest], None],
    ) -> None:
        line = self.sets[set_index][way]
        line.reused = True
        if self.reuse_predictor is not None:
            self.reuse_predictor.train_reuse(line.inserted_pc)
            self.reuse_predictor.train_reuse(request.pc)
        self.replacement.on_access(set_index, way, self.sim.now)
        self.stats.add(f"{self.prefix}.hits")
        if request.is_store:
            if self.config.writeback:
                line.state = LineState.DIRTY
                if self.dbi is not None:
                    self.dbi.mark_dirty(self._line_address(set_index, way))
                self.stats.add(f"{self.prefix}.store_hits")
            else:
                # write-through cache: update and forward the write downstream
                self.stats.add(f"{self.prefix}.writethrough_stores")
                self.sim.schedule(
                    self.config.hit_latency,
                    lambda: self.downstream(request, lambda r: None),
                )
                self.sim.schedule(self.config.hit_latency, lambda: on_done(request))
                return
        self.sim.schedule(self.config.hit_latency, lambda: on_done(request))

    def _load_miss(
        self,
        request: MemoryRequest,
        set_index: int,
        line_address: int,
        on_done: Callable[[MemoryRequest], None],
        first_attempt: bool,
    ) -> None:
        victim_way = self._find_victim(set_index)
        blocked_reason = None
        if victim_way is None:
            blocked_reason = "set_busy"
        elif self.mshrs.full:
            blocked_reason = "mshr_full"

        if blocked_reason is not None:
            if self.allocation_bypass:
                request.converted_bypass = True
                self.stats.add(f"{self.prefix}.allocation_bypasses")
                self._bypass_access(request, on_done)
                return
            self._block(request, set_index, blocked_reason, on_done)
            return

        self._evict(set_index, victim_way)
        victim = self.sets[set_index][victim_way]
        victim.state = LineState.PENDING
        victim.tag = line_address
        victim.inserted_pc = request.pc
        victim.reused = False
        entry = self.mshrs.allocate(line_address, request, self.sim.now, allocate_way=victim_way)
        self._record_waiter_callback(request, on_done)
        if self.reuse_predictor is not None:
            self.reuse_predictor.record_insertion(request.pc)

        miss_request = request
        self.sim.schedule(
            self.config.hit_latency,
            lambda: self.downstream(
                miss_request, lambda resp: self._fill(line_address, set_index, victim_way)
            ),
        )

    def _store_allocate(
        self,
        request: MemoryRequest,
        set_index: int,
        on_done: Callable[[MemoryRequest], None],
        first_attempt: bool,
    ) -> None:
        """Write-combining store miss: allocate a dirty line without fetching."""
        victim_way = self._find_victim(set_index)
        if victim_way is None:
            if self.allocation_bypass:
                request.converted_bypass = True
                self.stats.add(f"{self.prefix}.allocation_bypasses")
                self._bypass_access(request, on_done)
                return
            self._block(request, set_index, "set_busy", on_done)
            return
        self._evict(set_index, victim_way)
        line = self.sets[set_index][victim_way]
        line.state = LineState.DIRTY
        line.tag = request.line_address(self.config.line_bytes)
        line.inserted_pc = request.pc
        line.reused = False
        self.replacement.on_fill(set_index, victim_way, self.sim.now)
        if self.dbi is not None:
            self.dbi.mark_dirty(line.tag)
        if self.reuse_predictor is not None:
            self.reuse_predictor.record_insertion(request.pc)
        self.stats.add(f"{self.prefix}.store_allocates")
        self.sim.schedule(self.config.hit_latency, lambda: on_done(request))

    # ------------------------------------------------------------------
    # blocking / waking
    # ------------------------------------------------------------------
    def _block(
        self,
        request: MemoryRequest,
        set_index: int,
        reason: str,
        on_done: Callable[[MemoryRequest], None],
    ) -> None:
        """Park a request that cannot allocate; it retries when unblocked.

        Set-busy blocking uses precise per-set wake-ups (every way of the set
        holds a pending fill, and each completing fill wakes the waiters).
        MSHR exhaustion uses periodic polling instead: a fill releasing an
        MSHR does not guarantee that the woken request can use it (it may hit
        or coalesce on retry), so event-driven wake-ups can strand waiters;
        polling cannot.
        """
        blocked_at = self.sim.now
        self.stats.add(f"{self.prefix}.blocked_{reason}")

        def account(wake_time: int) -> None:
            stall = wake_time - blocked_at
            if stall > 0:
                self.stats.add(f"{self.prefix}.stall_cycles_alloc", stall)
                self.stats.add(f"{self.prefix}.stall_cycles", stall)

        if reason == "set_busy":

            def resume(wake_time: int) -> None:
                account(wake_time)
                grant = self.port.grant(wake_time)
                self.sim.schedule_at(
                    grant, lambda: self._lookup(request, on_done, first_attempt=False)
                )

            self._set_wait_queue(set_index).wait(blocked_at, resume)
            return

        def retry() -> None:
            now = self.sim.now
            if self.mshrs.full:
                self.sim.schedule(self._mshr_retry_period, retry)
                return
            account(now)
            grant = self.port.grant(now)
            self.sim.schedule_at(
                grant, lambda: self._lookup(request, on_done, first_attempt=False)
            )

        self.sim.schedule(self._mshr_retry_period, retry)

    def _set_wait_queue(self, set_index: int) -> WaitQueue:
        queue = self._set_waiters.get(set_index)
        if queue is None:
            queue = WaitQueue(f"{self.name}.set{set_index}")
            self._set_waiters[set_index] = queue
        return queue

    def _wake_after_fill(self, set_index: int) -> None:
        queue = self._set_waiters.get(set_index)
        if queue:
            queue.wake_all(self.sim.now)

    # ------------------------------------------------------------------
    # fills, evictions, writebacks
    # ------------------------------------------------------------------
    def _fill(self, line_address: int, set_index: int, way: int) -> None:
        """Downstream response arrived: install the line, answer waiters."""
        now = self.sim.now
        entry = self.mshrs.release(line_address)
        line = self.sets[set_index][way]
        requests = entry.all_requests
        any_store = any(r.is_store for r in requests)
        line.state = (
            LineState.DIRTY if (any_store and self.config.writeback) else LineState.VALID
        )
        line.tag = line_address
        self.replacement.on_fill(set_index, way, now)
        if line.state is LineState.DIRTY and self.dbi is not None:
            self.dbi.mark_dirty(line_address)
        if len(requests) > 1:
            line.reused = True
            if self.reuse_predictor is not None:
                self.reuse_predictor.train_reuse(line.inserted_pc)
        self.stats.add(f"{self.prefix}.fills")
        for req in requests:
            callback = self._pop_waiter_callback(req)
            if callback is not None:
                self.sim.schedule(0, lambda r=req, cb=callback: cb(r))
        self._wake_after_fill(set_index)

    def _find_victim(self, set_index: int) -> Optional[int]:
        """Pick a victim way, or None if every way is busy (pending fill)."""
        ways = self.sets[set_index]
        invalid = [w for w, line in enumerate(ways) if line.state is LineState.INVALID]
        if invalid:
            return invalid[0]
        candidates = [w for w, line in enumerate(ways) if not line.busy]
        if not candidates:
            return None
        return self.replacement.select_victim(set_index, candidates)

    def _evict(self, set_index: int, way: int) -> None:
        """Evict the current occupant of ``way`` (issuing writebacks as needed)."""
        line = self.sets[set_index][way]
        if line.state is LineState.INVALID:
            return
        address = self._line_address(set_index, way)
        self._notify_eviction(line)
        if line.state is LineState.DIRTY:
            self.stats.add(f"{self.prefix}.eviction_writebacks")
            if self.dbi is not None:
                self._rinse_row(address)
            else:
                self._send_writeback(address, lambda r: None)
        else:
            self.stats.add(f"{self.prefix}.clean_evictions")
        line.state = LineState.INVALID
        line.tag = -1

    def _rinse_row(self, evicted_address: int) -> None:
        """Write back the evicted dirty line plus all dirty lines in its DRAM row."""
        row = self.row_of(evicted_address)
        victims = [evicted_address]
        for address in self.dbi.dirty_lines_in_row(row):
            if address != evicted_address:
                victims.append(address)
        self.dbi.clear(evicted_address)
        for address in victims[1:]:
            located = self._locate(address)
            if located is None:
                self.dbi.clear(address)
                continue
            set_index, way = located
            line = self.sets[set_index][way]
            if line.state is not LineState.DIRTY:
                self.dbi.clear(address)
                continue
            line.state = LineState.VALID  # data stays, now clean
            self.dbi.clear(address)
            self.stats.add(f"{self.prefix}.rinse_writebacks")
            self._send_writeback(address, lambda r: None)
        self._send_writeback(evicted_address, lambda r: None)

    def _locate(self, line_address: int) -> Optional[tuple[int, int]]:
        set_index = self.config.set_index(line_address)
        for way, line in enumerate(self.sets[set_index]):
            if line.holds_data and line.tag == line_address:
                return set_index, way
        return None

    def _send_writeback(self, address: int, on_done: Callable[[MemoryRequest], None]) -> None:
        writeback = MemoryRequest(
            access=AccessType.STORE,
            address=address,
            pc=0,
            issue_cycle=self.sim.now,
            bypass_l1=True,
            bypass_l2=True,
        )
        self.stats.add(f"{self.prefix}.writebacks")
        self.downstream(writeback, on_done)

    def _notify_eviction(self, line: CacheLine) -> None:
        if self.reuse_predictor is not None and line.state is not LineState.INVALID:
            self.reuse_predictor.train_eviction(line.inserted_pc, line.reused)

    # ------------------------------------------------------------------
    # bypass path
    # ------------------------------------------------------------------
    def _bypass_access(
        self, request: MemoryRequest, on_done: Callable[[MemoryRequest], None]
    ) -> None:
        """Forward without allocation, coalescing pending bypassed loads."""
        self.stats.add(f"{self.prefix}.bypasses")
        line_address = request.line_address(self.config.line_bytes)
        if request.is_load:
            pending = self.bypass_pending.lookup(line_address)
            if pending is not None:
                self.bypass_pending.coalesce(line_address, request)
                self._record_waiter_callback(request, on_done)
                self.stats.add(f"{self.prefix}.bypass_coalesced")
                return
            self.bypass_pending.allocate(line_address, request, self.sim.now)
            self._record_waiter_callback(request, on_done)
            self.sim.schedule(
                BYPASS_LATENCY,
                lambda: self.downstream(request, lambda resp: self._bypass_fill(line_address)),
            )
            return
        # bypassed store: fire and forward; completion when downstream accepts
        self.sim.schedule(BYPASS_LATENCY, lambda: self.downstream(request, on_done))

    def _bypass_fill(self, line_address: int) -> None:
        entry = self.bypass_pending.release(line_address)
        for req in entry.all_requests:
            callback = self._pop_waiter_callback(req)
            if callback is not None:
                self.sim.schedule(0, lambda r=req, cb=callback: cb(r))

    # ------------------------------------------------------------------
    # waiter-callback bookkeeping
    # ------------------------------------------------------------------
    def _record_waiter_callback(
        self, request: MemoryRequest, on_done: Callable[[MemoryRequest], None]
    ) -> None:
        # completion callbacks are stored on the request itself so coalesced
        # requests each get their own response
        if getattr(request, "_cache_callbacks", None) is None:
            request._cache_callbacks = {}  # type: ignore[attr-defined]
        request._cache_callbacks[self.name] = on_done  # type: ignore[attr-defined]

    def _pop_waiter_callback(
        self, request: MemoryRequest
    ) -> Optional[Callable[[MemoryRequest], None]]:
        callbacks = getattr(request, "_cache_callbacks", None)
        if not callbacks:
            return None
        return callbacks.pop(self.name, None)

    # ------------------------------------------------------------------
    def _line_address(self, set_index: int, way: int) -> int:
        return self.sets[set_index][way].tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cache({self.name}, {self.config.size_bytes // 1024} KB)"
