"""GPU memory hierarchy models.

This package contains the timing models of everything below the compute
units: per-CU L1 data caches, the shared banked GPU L2, the host directory
interface, the HBM-style DRAM and the links between them.  The hierarchy is
assembled by :class:`~repro.memory.hierarchy.MemoryHierarchy` according to a
:class:`~repro.core.policy_engine.PolicyEngine`, which decides per request
whether it is cached, bypassed, coalesced or rinsed.
"""

from repro.memory.request import AccessType, MemoryRequest
from repro.memory.cache import Cache, CacheLine, LineState
from repro.memory.dram import DramBank, DramChannel, DramSystem
from repro.memory.hierarchy import MemoryHierarchy

__all__ = [
    "AccessType",
    "MemoryRequest",
    "Cache",
    "CacheLine",
    "LineState",
    "DramBank",
    "DramChannel",
    "DramSystem",
    "MemoryHierarchy",
]
