"""Assembly of the GPU memory hierarchy.

``MemoryHierarchy`` wires the per-CU L1 data caches, the shared banked GPU
L2, the host directory and the DRAM system together according to a
:class:`~repro.core.policy_engine.PolicyEngine`, and provides the two
operations the GPU model needs:

* :meth:`access` -- issue one coalesced line request from a CU.
* :meth:`kernel_boundary` -- perform the synchronization actions the paper's
  coherence protocol requires at kernel boundaries: self-invalidate valid
  (clean) data in the GPU caches and flush dirty L2 data to memory before
  the next kernel may start.  In a multi-tenant serving run the boundary
  is *stream-scoped*: cache lines are tagged with the execution stream
  that allocated them, and only the finishing stream's lines are
  invalidated/flushed, so tenant A's kernel boundary never evicts tenant
  B's working set.

With a multi-device :class:`~repro.topology.config.TopologyConfig` the
same class assembles a NUMA system instead: every device owns one L2
slice, one directory and one DRAM partition, cache lines are interleaved
across the partitions (:class:`~repro.memory.address_mapping
.DeviceInterleave`), and a request whose home slice is on another device
crosses a directed fabric link that adds the topology's remote latency and
contends for its bandwidth.  L2 slices operate on *local* partition
addresses (so slice sets and DRAM coordinates stay dense per device);
requests are re-addressed once at the L1-to-slice boundary.  The
one-device topology takes the exact wiring of the plain hierarchy --
same component names, same callbacks, no fabric, no re-addressing -- which
is what makes it bit-identical (enforced by
``tests/integration/test_core_equivalence.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.config import SystemConfig
from repro.core.dirty_block_index import DirtyBlockIndex
from repro.engine import Simulator
from repro.memory.address_mapping import DeviceInterleave
from repro.memory.cache import Cache
from repro.memory.directory import Directory
from repro.memory.dram import DramSystem
from repro.memory.interconnect import Link
from repro.memory.request import MemoryRequest
from repro.stats import StatsCollector
from repro.topology.config import TopologyConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.policy_engine import PolicyEngine

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """The GPU-side cache hierarchy plus the path to memory.

    Args:
        config: the *per-device* system configuration.
        sim / stats / policy_engine: shared simulation infrastructure.
        topology: optional multi-device topology; ``None`` (or a
            one-device topology) assembles the plain single-device
            hierarchy.
    """

    def __init__(
        self,
        config: SystemConfig,
        sim: Simulator,
        stats: StatsCollector,
        policy_engine: "PolicyEngine",
        topology: Optional[TopologyConfig] = None,
    ) -> None:
        self.config = config
        self.sim = sim
        self.stats = stats
        self.policy_engine = policy_engine
        self.topology = topology
        self.num_devices = topology.num_devices if topology is not None else 1
        self.cus_per_device = config.gpu.num_cus
        self.total_cus = self.num_devices * self.cus_per_device
        #: callbacks invoked at the start of every kernel-boundary
        #: synchronization (the adaptive controller registers here so a
        #: policy swap governs the next kernel's requests)
        self._kernel_boundary_hooks: list[Callable[[], None]] = []
        self._c_mem_requests = stats.counter("gpu.mem_requests")
        self._c_load_requests = stats.counter("gpu.load_requests")
        self._c_store_requests = stats.counter("gpu.store_requests")
        self._c_kernel_boundaries = stats.counter("gpu.kernel_boundaries")
        #: optional telemetry TraceRecorder (one None-test per kernel
        #: boundary, never on the per-access path)
        self.trace = None
        #: per-stream request counters, indexed by stream id; resolved only
        #: when a serving session enables them, so single-stream runs keep
        #: exactly the plain counter set
        self._c_stream_requests: Optional[list] = None

        # the L2 is banked: model aggregate tag bandwidth as extra ports
        l2_config = config.l2
        if l2_config.ports < config.interconnect.l2_banks:
            from dataclasses import replace as dc_replace

            l2_config = dc_replace(l2_config, ports=config.interconnect.l2_banks)

        single = self.num_devices == 1
        self._interleave: Optional[DeviceInterleave] = (
            None
            if single
            else DeviceInterleave(
                self.num_devices,
                line_bytes=config.l2.line_bytes,
                chunk_lines=topology.interleave_lines,
            )
        )

        # per-device memory side: DRAM partition, directory, slice link,
        # L2 slice.  Counter namespaces ("dram.*", "directory.*", "l2.*")
        # are shared across devices, so reports aggregate over the system
        # exactly as they aggregate over L2 banks and CUs today.
        self.drams: list[DramSystem] = []
        self.directories: list[Directory] = []
        self._l2_dir_links: list[Link] = []
        self.l2s: list[Cache] = []
        #: per-slice dirty-block indices (multi-device rinse policies);
        #: the authoritative rinse state, surfaced by describe()
        self.slice_dbis: list[DirtyBlockIndex] = []
        for device in range(self.num_devices):
            dram = DramSystem(config.dram, sim, stats, line_bytes=config.l2.line_bytes)
            directory = Directory(
                sim, stats, dram, dram_latency=config.interconnect.dir_to_dram_cycles
            )
            link = Link(
                "l2_dir" if single else f"l2_dir.dev{device}",
                sim, stats, latency=config.interconnect.l2_to_dir_cycles,
                requests_per_cycle=float(config.interconnect.l2_banks),
            )
            self.drams.append(dram)
            self.directories.append(directory)
            self._l2_dir_links.append(link)
            self.l2s.append(
                Cache(
                    name="l2" if single else f"l2.dev{device}",
                    config=l2_config,
                    sim=sim,
                    stats=stats,
                    downstream=self._make_slice_downstream(device),
                    stat_prefix="l2",
                    allocation_bypass=policy_engine.allocation_bypass,
                    reuse_predictor=policy_engine.reuse_predictor,
                    dirty_block_index=self._slice_dbi(device),
                    row_of=dram.row_id,
                )
            )
        self.dram = self.drams[0]
        self.directory = self.directories[0]
        self.l2 = self.l2s[0]
        self._l2_dir_link = self._l2_dir_links[0]
        if not single and policy_engine.dirty_block_index is not None:
            # every slice now owns a private local-row DBI; drop the
            # engine-level instance (keyed by global rows, never marked
            # by any cache here) so describe()/debuggers see the truth
            # rather than a permanently empty index
            policy_engine.dirty_block_index = None

        # directed inter-device fabric links (multi-device only)
        self._fabric: dict[tuple[int, int], Link] = {}
        if not single:
            for src in range(self.num_devices):
                for dst in range(self.num_devices):
                    if src != dst:
                        self._fabric[(src, dst)] = Link(
                            f"fabric.d{src}d{dst}", sim, stats,
                            latency=topology.remote_latency_cycles,
                            requests_per_cycle=topology.fabric_requests_per_cycle,
                        )
            # local/remote accounting exists only in multi-device runs, so
            # one-device reports keep exactly the plain hierarchy's counters
            self._c_local_requests = stats.counter("topo.local_requests")
            self._c_remote_requests = stats.counter("topo.remote_requests")

        self._l1_l2_links = [
            Link(
                f"l1_l2.cu{cu}", sim, stats,
                latency=config.interconnect.l1_to_l2_cycles,
                requests_per_cycle=1.0,
            )
            for cu in range(self.total_cus)
        ]
        self.l1s = [
            Cache(
                name=f"l1.cu{cu}",
                config=config.l1,
                sim=sim,
                stats=stats,
                downstream=self._make_l1_downstream(cu),
                stat_prefix="l1",
                allocation_bypass=policy_engine.allocation_bypass,
            )
            for cu in range(self.total_cus)
        ]

    # ------------------------------------------------------------------
    # wiring helpers
    # ------------------------------------------------------------------
    def _slice_dbi(self, device: int) -> Optional[DirtyBlockIndex]:
        """The dirty-block index attached to ``device``'s L2 slice.

        Single-device systems use the policy engine's own DBI (unchanged
        behaviour).  Multi-device systems need one DBI per slice keyed by
        *local* row ids -- slices see local addresses, and sharing one
        index would alias row ids across partitions -- so the engine's
        component serves as the template and each slice gets a private
        instance over its own partition's row mapping.
        """
        engine_dbi = self.policy_engine.dirty_block_index
        if engine_dbi is None:
            return None
        if self.num_devices == 1:
            return engine_dbi
        dbi = DirtyBlockIndex(self.drams[device].row_id, max_rows=engine_dbi.max_rows)
        self.slice_dbis.append(dbi)
        return dbi

    def _make_l1_downstream(self, cu: int):
        link = self._l1_l2_links[cu]
        if self.num_devices == 1:
            l2 = self.l2

            def forward(request: MemoryRequest, on_done: Callable[[MemoryRequest], None]) -> None:
                link.send(request, lambda r: l2.access(r, on_done))

            return forward

        device = cu // self.cus_per_device
        interleave = self._interleave
        line_bytes = self.config.l2.line_bytes
        num_sets = self.l2.config.num_sets
        fabric = self._fabric
        l2s = self.l2s
        c_local = self._c_local_requests
        c_remote = self._c_remote_requests

        def forward(request: MemoryRequest, on_done: Callable[[MemoryRequest], None]) -> None:
            home = interleave.device_of(request.address)
            # slices run on dense local partition addresses; the request is
            # re-addressed once here, and the response path always answers
            # with the requester's original request object
            clone = MemoryRequest(
                access=request.access,
                address=interleave.to_local(request.address),
                pc=request.pc,
                cu_id=request.cu_id,
                wavefront_id=request.wavefront_id,
                kernel_id=request.kernel_id,
                stream_id=request.stream_id,
                issue_cycle=request.issue_cycle,
                size=request.size,
                bypass_l1=request.bypass_l1,
                bypass_l2=request.bypass_l2,
                converted_bypass=request.converted_bypass,
            )
            target = l2s[home]

            def slice_done(_response: MemoryRequest) -> None:
                on_done(request)

            if home == device:
                c_local.add()
                link.send(clone, lambda r: target.access(r, slice_done))
                return
            c_remote.add()
            monitor = target.set_monitor
            if monitor is not None:
                monitor.record_remote((clone.address // line_bytes) % num_sets)
            hop = fabric[(device, home)]
            link.send(clone, lambda r: hop.send(r, lambda rr: target.access(rr, slice_done)))

        return forward

    def _make_slice_downstream(self, device: int):
        link = self._l2_dir_links[device]
        directory = self.directories[device]

        def to_directory(
            request: MemoryRequest, on_done: Callable[[MemoryRequest], None]
        ) -> None:
            link.send(request, lambda r: directory.access(r, on_done))

        return to_directory

    # ------------------------------------------------------------------
    # GPU-facing interface
    # ------------------------------------------------------------------
    def access(
        self,
        cu_id: int,
        request: MemoryRequest,
        on_done: Callable[[MemoryRequest], None],
    ) -> None:
        """Issue one coalesced line request from CU ``cu_id``."""
        if not (0 <= cu_id < len(self.l1s)):
            raise IndexError(f"cu_id {cu_id} out of range (have {len(self.l1s)} CUs)")
        self.policy_engine.annotate(request)
        self._c_mem_requests.add()
        if request.is_load:
            self._c_load_requests.add()
        else:
            self._c_store_requests.add()
        stream_counters = self._c_stream_requests
        if stream_counters is not None:
            stream_counters[request.stream_id].add()
        self.l1s[cu_id].access(request, on_done)

    def enable_stream_accounting(self, num_streams: int) -> None:
        """Attribute every request to its stream (``stream<i>.mem_requests``).

        Serving sessions call this before the streams launch; outside them
        the per-stream counters are never resolved, so single-stream
        reports keep exactly the plain counter set.
        """
        if num_streams < 1:
            raise ValueError(f"num_streams must be positive, got {num_streams}")
        self._c_stream_requests = [
            self.stats.counter(f"stream{index}.mem_requests")
            for index in range(num_streams)
        ]

    def kernel_boundary(
        self, on_complete: Callable[[], None], stream_id: Optional[int] = None
    ) -> None:
        """Apply release/acquire synchronization at a kernel boundary.

        The per-CU L1s self-invalidate their valid data (acquire), and the
        L2 writes back dirty data (system-scope release, required because
        the host may consume kernel outputs between launches);
        ``on_complete`` fires once every writeback has been accepted by
        memory.  Clean data in the shared L2 persists across kernel
        boundaries -- in the gem5 APU (VIPER-style) protocol the L2 is the
        coherence point with the system directory and is not self-
        invalidated on acquire, which is what allows the many-kernel RNN
        workloads to retain weight reuse across timesteps.  Under the
        write-through policies the flush is a no-op and ``on_complete``
        fires on the next cycle.  In a multi-device system every slice
        flushes concurrently and ``on_complete`` fires when the last one
        drains.

        Args:
            stream_id: in a multi-tenant serving run, the execution stream
                whose kernel just finished.  The synchronization is then
                *stream-scoped*: only cache lines tagged with that stream
                are self-invalidated and flushed, so one tenant's boundary
                never evicts a co-running tenant's working set (the
                interference mechanism CIAO's partitioning targets).
                ``None`` -- every single-stream run -- keeps the global
                walk, which is bit-identical to the pre-stream behaviour.
        """
        self._c_kernel_boundaries.add()
        if self.trace is not None:
            self.trace.kernel_boundary(stream_id)
        if self._kernel_boundary_hooks:
            for hook in self._kernel_boundary_hooks:
                hook()
        for l1 in self.l1s:
            l1.invalidate_clean(stream_id)
        if self.num_devices == 1:
            self.l2.flush_dirty(on_complete, keep_clean=True, stream_id=stream_id)
            return
        outstanding = self.num_devices

        def slice_flushed() -> None:
            nonlocal outstanding
            outstanding -= 1
            if outstanding == 0:
                on_complete()

        for l2 in self.l2s:
            l2.flush_dirty(slice_flushed, keep_clean=True, stream_id=stream_id)

    def add_kernel_boundary_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to run at the start of every kernel boundary."""
        self._kernel_boundary_hooks.append(hook)

    # ------------------------------------------------------------------
    # fault-injection surface
    # ------------------------------------------------------------------
    def fabric_links(self, device: Optional[int] = None) -> list[Link]:
        """The directed fabric links touching ``device`` (all links when
        ``None``).  Empty for single-device systems -- link faults need a
        fabric to break."""
        if device is None:
            return list(self._fabric.values())
        return [
            link
            for (src, dst), link in self._fabric.items()
            if src == device or dst == device
        ]

    def dram_banks(self, device: Optional[int] = None) -> list:
        """Every DRAM bank of ``device``'s partition (all partitions when
        ``None``); the injector's DRAM-spike surface."""
        drams = self.drams if device is None else [self.drams[device]]
        return [bank for dram in drams for channel in dram.channels for bank in channel.banks]

    def evacuate_device(self, device: int, on_complete: Callable[[], None]) -> None:
        """Flush the dirty lines of a failed device's L2 slice.

        Compute failure must not lose data: the slice's dirty lines are
        written back to the device's (surviving) DRAM partition, after
        which every line the slice holds is clean and survivors' remote
        requests can still hit it.  ``on_complete`` fires when the last
        writeback has been accepted by memory.
        """
        if not (0 <= device < self.num_devices):
            raise IndexError(
                f"device {device} out of range (have {self.num_devices} devices)"
            )
        self.l2s[device].flush_dirty(on_complete, keep_clean=True)

    def evacuate_stream(self, stream_id: int, on_complete: Callable[[], None]) -> None:
        """Release a killed tenant's cache footprint.

        The stream-scoped analogue of a kernel boundary, but harsher: the
        dead tenant's clean lines are dropped from every cache (it is not
        coming back to reuse them -- and if it restarts, it restarts
        cold), and its dirty lines are flushed so the caches hold no
        orphaned data.  ``on_complete`` fires when every slice drained.
        """
        for l1 in self.l1s:
            l1.invalidate_clean(stream_id)
        if self.num_devices == 1:
            self.l2.invalidate_clean(stream_id)
            self.l2.flush_dirty(on_complete, keep_clean=False, stream_id=stream_id)
            return
        outstanding = self.num_devices

        def slice_flushed() -> None:
            nonlocal outstanding
            outstanding -= 1
            if outstanding == 0:
                on_complete()

        for l2 in self.l2s:
            l2.invalidate_clean(stream_id)
            l2.flush_dirty(slice_flushed, keep_clean=False, stream_id=stream_id)

    # ------------------------------------------------------------------
    def device_of(self, address: int) -> int:
        """Home device of a (global) address (0 for single-device systems)."""
        if self._interleave is None:
            return 0
        return self._interleave.device_of(address)

    def row_of(self, line_address: int) -> int:
        """DRAM row id of a *global* line address (globally unique).

        Single-device systems delegate straight to the DRAM mapping.  In a
        multi-device system the address is resolved to its home partition
        first and the local row id is tagged with the device, so two rows
        on different devices never collide.
        """
        if self._interleave is None:
            return self.dram.row_id(line_address)
        # partitions share one geometry, so device 0's mapping serves all
        return self._interleave.global_row_id(self.dram.mapping, line_address)

    def total_cache_stall_cycles(self) -> int:
        """Combined L1+L2 stall cycles (the paper's cache-stall metric)."""
        return self.stats.get("l1.stall_cycles") + self.stats.get("l2.stall_cycles")

    def describe(self) -> dict[str, object]:
        """Human-readable summary used by the CLI and examples."""
        # aggregate like num_cus: the system totals, with per-device
        # breakdowns only when there is more than one device
        summary: dict[str, object] = {
            "policy": self.policy_engine.policy.name,
            "num_cus": self.total_cus,
            "l1_kb_per_cu": self.config.l1.size_bytes // 1024,
            "l2_kb": self.num_devices * self.config.l2.size_bytes // 1024,
            "dram_channels": self.num_devices * self.config.dram.channels,
        }
        if self.num_devices > 1:
            summary["num_devices"] = self.num_devices
            summary["cus_per_device"] = self.cus_per_device
            summary["l2_kb_per_device"] = self.config.l2.size_bytes // 1024
            summary["remote_latency_cycles"] = self.topology.remote_latency_cycles
            if self.slice_dbis:
                summary["dbi_tracked_rows_per_device"] = [
                    len(dbi) for dbi in self.slice_dbis
                ]
        return summary
