"""Assembly of the GPU memory hierarchy.

``MemoryHierarchy`` wires the per-CU L1 data caches, the shared banked GPU
L2, the host directory and the DRAM system together according to a
:class:`~repro.core.policy_engine.PolicyEngine`, and provides the two
operations the GPU model needs:

* :meth:`access` -- issue one coalesced line request from a CU.
* :meth:`kernel_boundary` -- perform the synchronization actions the paper's
  coherence protocol requires at kernel boundaries: self-invalidate valid
  (clean) data in the GPU caches and flush dirty L2 data to memory before
  the next kernel may start.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.config import SystemConfig
from repro.engine import Simulator
from repro.memory.cache import Cache
from repro.memory.directory import Directory
from repro.memory.dram import DramSystem
from repro.memory.interconnect import Link
from repro.memory.request import MemoryRequest
from repro.stats import StatsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.policy_engine import PolicyEngine

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """The GPU-side cache hierarchy plus the path to memory."""

    def __init__(
        self,
        config: SystemConfig,
        sim: Simulator,
        stats: StatsCollector,
        policy_engine: "PolicyEngine",
    ) -> None:
        self.config = config
        self.sim = sim
        self.stats = stats
        self.policy_engine = policy_engine
        #: callbacks invoked at the start of every kernel-boundary
        #: synchronization (the adaptive controller registers here so a
        #: policy swap governs the next kernel's requests)
        self._kernel_boundary_hooks: list[Callable[[], None]] = []
        self._c_mem_requests = stats.counter("gpu.mem_requests")
        self._c_load_requests = stats.counter("gpu.load_requests")
        self._c_store_requests = stats.counter("gpu.store_requests")
        self._c_kernel_boundaries = stats.counter("gpu.kernel_boundaries")

        self.dram = DramSystem(config.dram, sim, stats, line_bytes=config.l2.line_bytes)
        self.directory = Directory(
            sim, stats, self.dram, dram_latency=config.interconnect.dir_to_dram_cycles
        )
        self._l2_dir_link = Link(
            "l2_dir", sim, stats, latency=config.interconnect.l2_to_dir_cycles,
            requests_per_cycle=float(config.interconnect.l2_banks),
        )

        # the L2 is banked: model aggregate tag bandwidth as extra ports
        l2_config = config.l2
        if l2_config.ports < config.interconnect.l2_banks:
            from dataclasses import replace as dc_replace

            l2_config = dc_replace(l2_config, ports=config.interconnect.l2_banks)

        self.l2 = Cache(
            name="l2",
            config=l2_config,
            sim=sim,
            stats=stats,
            downstream=self._to_directory,
            stat_prefix="l2",
            allocation_bypass=policy_engine.allocation_bypass,
            reuse_predictor=policy_engine.reuse_predictor,
            dirty_block_index=policy_engine.dirty_block_index,
            row_of=self.dram.row_id,
        )

        self._l1_l2_links = [
            Link(
                f"l1_l2.cu{cu}", sim, stats,
                latency=config.interconnect.l1_to_l2_cycles,
                requests_per_cycle=1.0,
            )
            for cu in range(config.gpu.num_cus)
        ]
        self.l1s = [
            Cache(
                name=f"l1.cu{cu}",
                config=config.l1,
                sim=sim,
                stats=stats,
                downstream=self._make_l1_downstream(cu),
                stat_prefix="l1",
                allocation_bypass=policy_engine.allocation_bypass,
            )
            for cu in range(config.gpu.num_cus)
        ]

    # ------------------------------------------------------------------
    # wiring helpers
    # ------------------------------------------------------------------
    def _make_l1_downstream(self, cu: int):
        link = self._l1_l2_links[cu]

        def forward(request: MemoryRequest, on_done: Callable[[MemoryRequest], None]) -> None:
            link.send(request, lambda r: self.l2.access(r, on_done))

        return forward

    def _to_directory(
        self, request: MemoryRequest, on_done: Callable[[MemoryRequest], None]
    ) -> None:
        self._l2_dir_link.send(request, lambda r: self.directory.access(r, on_done))

    # ------------------------------------------------------------------
    # GPU-facing interface
    # ------------------------------------------------------------------
    def access(
        self,
        cu_id: int,
        request: MemoryRequest,
        on_done: Callable[[MemoryRequest], None],
    ) -> None:
        """Issue one coalesced line request from CU ``cu_id``."""
        if not (0 <= cu_id < len(self.l1s)):
            raise IndexError(f"cu_id {cu_id} out of range (have {len(self.l1s)} CUs)")
        self.policy_engine.annotate(request)
        self._c_mem_requests.add()
        if request.is_load:
            self._c_load_requests.add()
        else:
            self._c_store_requests.add()
        self.l1s[cu_id].access(request, on_done)

    def kernel_boundary(self, on_complete: Callable[[], None]) -> None:
        """Apply release/acquire synchronization at a kernel boundary.

        The per-CU L1s self-invalidate all their valid data (acquire), and
        the L2 writes back all dirty data (system-scope release, required
        because the host may consume kernel outputs between launches);
        ``on_complete`` fires once every writeback has been accepted by
        memory.  Clean data in the shared L2 persists across kernel
        boundaries -- in the gem5 APU (VIPER-style) protocol the L2 is the
        coherence point with the system directory and is not self-
        invalidated on acquire, which is what allows the many-kernel RNN
        workloads to retain weight reuse across timesteps.  Under the
        write-through policies the flush is a no-op and ``on_complete``
        fires on the next cycle.
        """
        self._c_kernel_boundaries.add()
        if self._kernel_boundary_hooks:
            for hook in self._kernel_boundary_hooks:
                hook()
        for l1 in self.l1s:
            l1.invalidate_clean()
        self.l2.flush_dirty(on_complete, keep_clean=True)

    def add_kernel_boundary_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to run at the start of every kernel boundary."""
        self._kernel_boundary_hooks.append(hook)

    # ------------------------------------------------------------------
    def row_of(self, line_address: int) -> int:
        """DRAM row id of a line address (used by optimization components)."""
        return self.dram.row_id(line_address)

    def total_cache_stall_cycles(self) -> int:
        """Combined L1+L2 stall cycles (the paper's cache-stall metric)."""
        return self.stats.get("l1.stall_cycles") + self.stats.get("l2.stall_cycles")

    def describe(self) -> dict[str, object]:
        """Human-readable summary used by the CLI and examples."""
        return {
            "policy": self.policy_engine.policy.name,
            "num_cus": self.config.gpu.num_cus,
            "l1_kb_per_cu": self.config.l1.size_bytes // 1024,
            "l2_kb": self.config.l2.size_bytes // 1024,
            "dram_channels": self.config.dram.channels,
        }
