"""Links between hierarchy levels.

A :class:`Link` adds a fixed one-way latency and enforces a finite
request-per-cycle bandwidth.  Links connect the CUs to their L1s is implicit
(zero cycles); explicit links connect L1 -> L2, L2 -> directory and
directory -> DRAM.
"""

from __future__ import annotations

from typing import Callable

from repro.engine import Simulator, ThroughputResource
from repro.memory.request import MemoryRequest
from repro.stats import StatsCollector

__all__ = ["Link"]


class Link:
    """Fixed-latency, finite-bandwidth connection between two components."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        stats: StatsCollector,
        latency: int,
        requests_per_cycle: float = 1.0,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if requests_per_cycle <= 0:
            raise ValueError("requests_per_cycle must be positive")
        self.name = name
        self.sim = sim
        self.stats = stats
        self.latency = latency
        self.bandwidth = ThroughputResource(
            f"{name}.bw", cycles_per_grant=1.0 / requests_per_cycle
        )
        # per-send hot path: pre-bound counters and queue entry points
        self._c_transfers = stats.counter(f"link.{name}.transfers")
        self._c_contention_cycles = stats.counter(f"link.{name}.contention_cycles")
        self._queue = sim.queue
        self._schedule_at = sim.queue.schedule_at
        #: fault condition installed by the fault injector (a
        #: :class:`~repro.faults.injector.LinkFaultState`); ``None`` --
        #: every healthy run -- keeps the send path byte-identical
        self._fault = None

    def send(
        self,
        request: MemoryRequest,
        deliver: Callable[[MemoryRequest], None],
    ) -> None:
        """Deliver ``request`` to the far side after latency + any bandwidth wait."""
        now = self._queue.now
        latency = self.latency
        fault = self._fault
        if fault is not None:
            # outage: the send stalls until the link is back; degrade:
            # extra per-crossing latency (both counted by the fault state)
            now, latency = fault.apply(now, latency)
        grant = self.bandwidth.grant(now)
        self._c_transfers.add()
        wait = grant - now
        if wait > 0:
            self._c_contention_cycles.add(wait)
        self._schedule_at(grant + latency, lambda: deliver(request))
