"""Physical address to DRAM coordinate mapping.

The mapping interleaves consecutive cache lines across channels first (to
spread bandwidth), then fills the columns of one row within a bank, then
moves to the next bank.  This is the standard GPU/HBM style mapping: a
sequential stream of lines touches every channel, stays within one row per
bank for ``lines_per_row`` lines, and therefore enjoys high row-buffer
locality -- exactly the property that the paper observes caching can
disrupt.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramConfig

__all__ = ["DramCoordinates", "AddressMapping"]


@dataclass(frozen=True)
class DramCoordinates:
    """Location of one cache line in the DRAM system."""

    channel: int
    bank: int
    row: int
    column: int

    def global_bank(self, banks_per_channel: int) -> int:
        """Bank id unique across channels."""
        return self.channel * banks_per_channel + self.bank


class AddressMapping:
    """Maps byte addresses to (channel, bank, row, column) coordinates."""

    def __init__(self, config: DramConfig, line_bytes: int = 64) -> None:
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        if config.row_bytes % line_bytes != 0:
            raise ValueError("row_bytes must be a multiple of line_bytes")
        self.config = config
        self.line_bytes = line_bytes
        self.lines_per_row = config.row_bytes // line_bytes

    def locate(self, address: int) -> DramCoordinates:
        """Coordinates of the line containing ``address``."""
        if address < 0:
            raise ValueError("address must be non-negative")
        line_index = address // self.line_bytes
        channel = line_index % self.config.channels
        rest = line_index // self.config.channels
        column = rest % self.lines_per_row
        rest //= self.lines_per_row
        bank = rest % self.config.banks_per_channel
        row = rest // self.config.banks_per_channel
        return DramCoordinates(channel=channel, bank=bank, row=row, column=column)

    def row_id(self, address: int) -> int:
        """A globally unique identifier for the DRAM row holding ``address``.

        Used by the dirty-block index: two line addresses share a row id if
        and only if they live in the same row of the same bank of the same
        channel, so rinsing them together produces consecutive row hits.
        """
        loc = self.locate(address)
        banks = self.config.banks_per_channel
        channels = self.config.channels
        return (loc.row * banks + loc.bank) * channels + loc.channel
