"""Physical address to DRAM coordinate mapping.

The mapping interleaves consecutive cache lines across channels first (to
spread bandwidth), then fills the columns of one row within a bank, then
moves to the next bank.  This is the standard GPU/HBM style mapping: a
sequential stream of lines touches every channel, stays within one row per
bank for ``lines_per_row`` lines, and therefore enjoys high row-buffer
locality -- exactly the property that the paper observes caching can
disrupt.

For multi-device topologies (:mod:`repro.topology`) a second layer sits on
top: :class:`DeviceInterleave` shards the global line space across device
DRAM partitions in fixed-size chunks.  Every global address has exactly
one home device and one *local* address within that device's partition;
the local address is what the device's own :class:`AddressMapping` (and
its L2 slice) operates on.  The mapping is a bijection --
``to_global(device_of(a), to_local(a)) == a`` for every address -- and
with one device it degenerates to the identity, which is what keeps the
one-device topology bit-identical to the plain hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramConfig

__all__ = ["DramCoordinates", "AddressMapping", "DeviceInterleave"]


@dataclass(frozen=True)
class DramCoordinates:
    """Location of one cache line in the DRAM system."""

    channel: int
    bank: int
    row: int
    column: int

    def global_bank(self, banks_per_channel: int) -> int:
        """Bank id unique across channels."""
        return self.channel * banks_per_channel + self.bank


class AddressMapping:
    """Maps byte addresses to (channel, bank, row, column) coordinates."""

    def __init__(self, config: DramConfig, line_bytes: int = 64) -> None:
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        if config.row_bytes % line_bytes != 0:
            raise ValueError("row_bytes must be a multiple of line_bytes")
        self.config = config
        self.line_bytes = line_bytes
        self.lines_per_row = config.row_bytes // line_bytes

    def locate(self, address: int) -> DramCoordinates:
        """Coordinates of the line containing ``address``."""
        if address < 0:
            raise ValueError("address must be non-negative")
        line_index = address // self.line_bytes
        channel = line_index % self.config.channels
        rest = line_index // self.config.channels
        column = rest % self.lines_per_row
        rest //= self.lines_per_row
        bank = rest % self.config.banks_per_channel
        row = rest // self.config.banks_per_channel
        return DramCoordinates(channel=channel, bank=bank, row=row, column=column)

    def address_of(self, coordinates: DramCoordinates) -> int:
        """Line address at ``coordinates`` (the inverse of :meth:`locate`).

        ``locate(address_of(c)) == c`` for any in-range coordinates, and
        ``address_of(locate(a))`` recovers the line address of ``a``.  The
        topology property tests use this to prove that the device
        partition mapping round-trips through the DRAM mapping.
        """
        for field_name in ("channel", "bank", "column"):
            if getattr(coordinates, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if coordinates.channel >= self.config.channels:
            raise ValueError(f"channel {coordinates.channel} out of range")
        if coordinates.bank >= self.config.banks_per_channel:
            raise ValueError(f"bank {coordinates.bank} out of range")
        if coordinates.column >= self.lines_per_row:
            raise ValueError(f"column {coordinates.column} out of range")
        if coordinates.row < 0:
            raise ValueError("row must be non-negative")
        rest = (
            coordinates.row * self.config.banks_per_channel + coordinates.bank
        ) * self.lines_per_row + coordinates.column
        return (rest * self.config.channels + coordinates.channel) * self.line_bytes

    def row_id(self, address: int) -> int:
        """A globally unique identifier for the DRAM row holding ``address``.

        Used by the dirty-block index: two line addresses share a row id if
        and only if they live in the same row of the same bank of the same
        channel, so rinsing them together produces consecutive row hits.
        """
        loc = self.locate(address)
        banks = self.config.banks_per_channel
        channels = self.config.channels
        return (loc.row * banks + loc.bank) * channels + loc.channel


class DeviceInterleave:
    """Shards the global line address space across device DRAM partitions.

    Consecutive chunks of ``chunk_lines`` cache lines are homed on
    consecutive devices round-robin; within its home partition a chunk
    occupies the next free chunk slot, so each device sees a dense local
    address space starting at zero.  All three operations are O(1)
    arithmetic and the mapping is a bijection between global addresses and
    (device, local address) pairs.

    Args:
        num_devices: number of DRAM partitions.
        line_bytes: cache line size.
        chunk_lines: cache lines per interleave chunk
            (:attr:`repro.topology.config.TopologyConfig.interleave_lines`).
    """

    __slots__ = ("num_devices", "line_bytes", "chunk_lines", "_chunk_bytes")

    def __init__(self, num_devices: int, line_bytes: int = 64, chunk_lines: int = 32) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        if chunk_lines < 1:
            raise ValueError("chunk_lines must be positive")
        self.num_devices = num_devices
        self.line_bytes = line_bytes
        self.chunk_lines = chunk_lines
        self._chunk_bytes = line_bytes * chunk_lines

    def device_of(self, address: int) -> int:
        """Home device of the cache line containing ``address``."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return (address // self._chunk_bytes) % self.num_devices

    def to_local(self, address: int) -> int:
        """Address of ``address`` within its home device's partition."""
        if address < 0:
            raise ValueError("address must be non-negative")
        chunk, offset = divmod(address, self._chunk_bytes)
        return (chunk // self.num_devices) * self._chunk_bytes + offset

    def to_global(self, device: int, local_address: int) -> int:
        """Global address of ``local_address`` in ``device``'s partition."""
        if not (0 <= device < self.num_devices):
            raise ValueError(f"device {device} out of range (have {self.num_devices})")
        if local_address < 0:
            raise ValueError("local_address must be non-negative")
        chunk, offset = divmod(local_address, self._chunk_bytes)
        return (chunk * self.num_devices + device) * self._chunk_bytes + offset

    def global_row_id(self, mapping: AddressMapping, address: int) -> int:
        """Globally-unique DRAM row id of a *global* address.

        Resolves ``address`` to its home partition, takes the local row id
        under that partition's ``mapping`` (partitions share one geometry),
        and tags it with the device so rows on different devices never
        collide.  The single definition of the multi-device row formula --
        used by both the hierarchy and the session-level policy engine.
        """
        device = self.device_of(address)
        return mapping.row_id(self.to_local(address)) * self.num_devices + device

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceInterleave(devices={self.num_devices}, "
            f"chunk={self.chunk_lines}x{self.line_bytes}B)"
        )
