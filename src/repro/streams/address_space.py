"""Per-tenant address-space isolation for serving runs.

Workload trace generators each allocate addresses from the bottom of a
private address space, so two independently generated traces overlap
almost completely.  Run concurrently as tenants, they would alias the same
cache lines and *warm each other's caches* -- the opposite of the
interference a serving study measures.  Real tenants live in disjoint
(virtual) address spaces, so before launch every stream's trace is rebased
onto its own aligned region: stream 0 keeps its addresses, stream 1 starts
past stream 0's footprint, and so on.

The rebase offset is aligned to ``alignment`` bytes.  Serving sessions
pass the device-interleave period (``interleave_lines * line_bytes *
num_devices``, or one line outside topology runs), so rebasing never
changes which device a line is homed on relative to its neighbours, and
the one-stream case -- offset 0, trace returned untouched -- stays
bit-identical to a plain run.

Program counters are rebased as well (one disjoint PC region per stream):
the PC-indexed reuse predictor is shared hardware, and unrelated tenants
whose generators happen to emit the same PCs would otherwise train each
other's predictions.  The per-stream stride is a large *odd* constant
rather than a power of two: the predictor folds PCs into a small table
with xor-shifts, and a power-of-two offset collapses to almost nothing
under that fold (streams of equal index parity would alias exactly), so
the stride is chosen to scatter each stream's PCs into a distinct fold
pattern -- residual cross-stream collisions are then incidental table
collisions, like any finite predictor, not systematic identity.
"""

from __future__ import annotations

from typing import Sequence

from repro.workloads.trace import (
    KernelTrace,
    MemInstr,
    WavefrontProgram,
    WorkloadTrace,
)

__all__ = ["isolate_traces", "rebase_trace", "PC_REGION_STRIDE"]

#: per-stream program-counter offset stride (Knuth's multiplicative hash
#: constant: odd, bit-dense, far larger than any generator-emitted PC)
PC_REGION_STRIDE = 2_654_435_761


def _max_line_address(trace: WorkloadTrace) -> int:
    """Highest line address the trace touches (-1 for a pure-compute trace)."""
    highest = -1
    for kernel in trace.kernels:
        for program in kernel.wavefronts:
            for instr in program.memory_instructions:
                top = max(instr.line_addresses)
                if top > highest:
                    highest = top
    return highest


def rebase_trace(trace: WorkloadTrace, offset: int, pc_offset: int = 0) -> WorkloadTrace:
    """``trace`` with every address shifted by ``offset`` (PCs by ``pc_offset``).

    Offsets of zero return the input object unchanged -- the identity that
    keeps single-stream serving runs bit-identical to plain runs.  Device
    tags and workgroup ids survive the rebase untouched.
    """
    if offset == 0 and pc_offset == 0:
        return trace
    if offset < 0 or pc_offset < 0:
        raise ValueError("rebase offsets must be non-negative")
    rebased = WorkloadTrace(name=trace.name)
    for kernel in trace.kernels:
        new_kernel = KernelTrace(name=kernel.name)
        for program in kernel.wavefronts:
            instructions = [
                MemInstr(
                    access=instr.access,
                    line_addresses=tuple(
                        address + offset for address in instr.line_addresses
                    ),
                    pc=instr.pc + pc_offset,
                )
                if isinstance(instr, MemInstr)
                else instr
                for instr in program.instructions
            ]
            new_kernel.add_wavefront(
                WavefrontProgram(
                    instructions=instructions,
                    workgroup_id=program.workgroup_id,
                    device=program.device,
                )
            )
        rebased.add_kernel(new_kernel)
    return rebased


def isolate_traces(
    traces: Sequence[WorkloadTrace], alignment: int
) -> list[WorkloadTrace]:
    """Rebase ``traces`` onto disjoint, ``alignment``-aligned address regions.

    Stream 0 keeps its addresses (offset 0); each later stream starts at
    the first aligned boundary past the previous streams' footprints.
    """
    if alignment < 1:
        raise ValueError(f"alignment must be positive, got {alignment}")
    isolated: list[WorkloadTrace] = []
    next_free = 0
    for index, trace in enumerate(traces):
        offset = -(-next_free // alignment) * alignment if index else 0
        rebased = rebase_trace(trace, offset, pc_offset=index * PC_REGION_STRIDE)
        isolated.append(rebased)
        top = _max_line_address(rebased)
        if top >= next_free:
            next_free = top + 1
    return isolated
