"""Concurrent multi-stream execution (multi-tenant serving).

This package describes *who* is running on the GPU: each
:class:`~repro.streams.config.StreamConfig` is one tenant's workload,
arrival time and CU share policy, and a
:class:`~repro.streams.config.ServingMix` bundles several tenants into a
named serving scenario.  The execution machinery lives where it always
did -- :class:`~repro.gpu.gpu.Gpu` schedules the streams,
:class:`~repro.memory.hierarchy.MemoryHierarchy` scopes kernel-boundary
synchronization to the finishing stream, and
:func:`repro.session.simulate` accepts ``streams=...`` -- while the
interference study built on top is
:mod:`repro.experiments.interference`.
"""

from repro.streams.config import (
    CU_SHARE_MODES,
    MIX_NAMES,
    SERVING_MIXES,
    ServingMix,
    StreamConfig,
    mix_by_name,
)

__all__ = [
    "CU_SHARE_MODES",
    "MIX_NAMES",
    "SERVING_MIXES",
    "ServingMix",
    "StreamConfig",
    "mix_by_name",
]
