"""Configuration of concurrent execution streams (multi-tenant serving).

The paper evaluates its cache policies one workload at a time, but a GPU
serving production inference traffic runs many tenants' kernels
concurrently, and the cache policy interacts with inter-stream
interference: co-running kernels thrash the shared L2 (CIAO,
arXiv:1805.07718), so a policy that wins solo can lose under contention.

A :class:`StreamConfig` describes one tenant: which workload it runs, at
what scale, when it arrives, and how it shares the compute units with the
other tenants.  A :class:`ServingMix` is a named bundle of streams -- the
registered mixes model the serving scenarios the interference study
sweeps.  Both are frozen dataclasses of primitives, so
:func:`repro.fingerprint.fingerprint` gives them stable content hashes and
serving runs key into the persistent result store exactly like static,
adaptive and topology runs.

A single-entry stream list is the degenerate mix: one tenant owning the
whole GPU, which -- enforced per golden scenario in
``tests/integration/test_core_equivalence.py`` -- is bit-identical to a
plain single-workload run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fingerprint import fingerprint

__all__ = [
    "CU_SHARE_MODES",
    "StreamConfig",
    "ServingMix",
    "SERVING_MIXES",
    "MIX_NAMES",
    "mix_by_name",
]

#: how a mix's streams share the compute units:
#: ``"shared"`` round-robins every stream's wavefronts over all CUs;
#: ``"partitioned"`` statically splits the CUs into one contiguous block
#: per stream (per device, in a multi-device topology)
CU_SHARE_MODES = ("shared", "partitioned")


@dataclass(frozen=True)
class StreamConfig:
    """One tenant's execution stream.

    Attributes:
        workload: registry name of the tenant's workload (its kernel
            sequence; resolved via :func:`repro.workloads.registry
            .get_workload` when the stream is launched).
        scale: workload scale factor passed to the trace generator.
        launch_cycle: arrival time -- the cycle at which the stream's
            first kernel launch begins (0 = present at simulation start).
        cu_share: this stream's CU share policy, one of
            :data:`CU_SHARE_MODES`.  Every stream of a mix must agree on
            the mode (validated by :class:`ServingMix` and again by the
            stream scheduler).
        label: optional display name ("" falls back to the workload name);
            excluded from the fingerprint, like
            :attr:`~repro.topology.config.TopologyConfig.name`.
    """

    workload: str
    scale: float = 1.0
    launch_cycle: int = 0
    cu_share: str = "shared"
    label: str = ""

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("a stream needs a workload name")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.launch_cycle < 0:
            raise ValueError(
                f"launch_cycle must be non-negative, got {self.launch_cycle}"
            )
        if self.cu_share not in CU_SHARE_MODES:
            raise ValueError(
                f"unknown cu_share {self.cu_share!r}; "
                f"known modes: {', '.join(CU_SHARE_MODES)}"
            )

    @property
    def display(self) -> str:
        """Name shown in tables and per-tenant report rows."""
        return self.label or self.workload

    def describe(self) -> dict[str, object]:
        """Physical parameters only (what the fingerprint covers)."""
        return {
            "workload": self.workload,
            "scale": self.scale,
            "launch_cycle": self.launch_cycle,
            "cu_share": self.cu_share,
        }

    def fingerprint(self) -> str:
        """Stable content hash over the physical stream parameters."""
        return fingerprint(self.describe(), kind="StreamConfig")


@dataclass(frozen=True)
class ServingMix:
    """A named multi-tenant serving scenario: several concurrent streams.

    Attributes:
        name: registry/display name of the mix.
        streams: the tenants' stream configurations (>= 1; all must share
            one ``cu_share`` mode).
        description: one-line summary for ``list`` output.
    """

    name: str
    streams: tuple[StreamConfig, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a serving mix needs a name")
        if not self.streams:
            raise ValueError(f"serving mix {self.name!r} has no streams")
        modes = {stream.cu_share for stream in self.streams}
        if len(modes) > 1:
            raise ValueError(
                f"serving mix {self.name!r} mixes cu_share modes {sorted(modes)}; "
                "all streams of a mix must share one mode"
            )

    @property
    def num_streams(self) -> int:
        return len(self.streams)

    @property
    def cu_share(self) -> str:
        """The mix's (uniform) CU share mode."""
        return self.streams[0].cu_share

    def with_cu_share(self, mode: str) -> "ServingMix":
        """This mix with every stream re-tagged to ``mode``."""
        return replace(
            self, streams=tuple(replace(s, cu_share=mode) for s in self.streams)
        )

    def scaled(self, factor: float) -> "ServingMix":
        """This mix with every stream's workload scale multiplied by ``factor``."""
        if factor == 1.0:
            return self
        return replace(
            self,
            streams=tuple(replace(s, scale=s.scale * factor) for s in self.streams),
        )

    def tenant_labels(self) -> list[str]:
        """Unambiguous per-tenant labels, in stream order."""
        return [
            f"{index}:{stream.display}" for index, stream in enumerate(self.streams)
        ]

    def describe(self) -> dict[str, object]:
        """Primitive summary used by ``list --json`` and artifacts."""
        return {
            "description": self.description,
            "cu_share": self.cu_share,
            "streams": [stream.describe() for stream in self.streams],
        }

    def fingerprint(self) -> str:
        """Stable content hash over the streams (display name excluded)."""
        return fingerprint(
            [stream.describe() for stream in self.streams], kind="ServingMix"
        )


#: registered serving mixes: two-tenant phase contrast, bursty GEMM
#: arrivals, and a four-tenant inference consolidation scenario
SERVING_MIXES: dict[str, ServingMix] = {
    "mha+fwlstm": ServingMix(
        name="mha+fwlstm",
        description="attention tenant vs many-kernel RNN tenant (reuse contrast)",
        streams=(
            StreamConfig(workload="MHA"),
            StreamConfig(workload="FwLSTM"),
        ),
    ),
    "gemm-burst": ServingMix(
        name="gemm-burst",
        description="dense GEMM tenants arriving in a staggered burst",
        streams=(
            StreamConfig(workload="DGEMM"),
            StreamConfig(workload="SGEMM", launch_cycle=2_000),
        ),
    ),
    "inference-4tenant": ServingMix(
        name="inference-4tenant",
        description="four consolidated inference tenants with staggered arrivals",
        streams=(
            StreamConfig(workload="FwFc"),
            StreamConfig(workload="FwSoft", launch_cycle=1_000),
            StreamConfig(workload="FwAct", launch_cycle=2_000),
            StreamConfig(workload="MHA", launch_cycle=3_000),
        ),
    ),
}

MIX_NAMES: tuple[str, ...] = tuple(SERVING_MIXES)


def mix_by_name(name: str) -> ServingMix:
    """Look up a registered serving mix by name (case-insensitive)."""
    for known, mix in SERVING_MIXES.items():
        if known.lower() == name.lower():
            return mix
    raise KeyError(
        f"unknown serving mix {name!r}; known mixes: {', '.join(MIX_NAMES)}"
    )
