"""Shared fixtures for the test suite.

The tests favour small configurations (2 CUs) and tiny workload scales so
the whole suite runs in well under a minute; the benchmark harness under
``benchmarks/`` is where full-scale sweeps live.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig, scaled_config
from repro.engine import Simulator
from repro.memory.request import AccessType, MemoryRequest
from repro.stats import StatsCollector
from repro.workloads.trace import (
    ComputeInstr,
    KernelTrace,
    MemInstr,
    WavefrontProgram,
    WorkloadTrace,
)


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator/event queue."""
    return Simulator()


@pytest.fixture
def stats() -> StatsCollector:
    """A fresh counter store."""
    return StatsCollector()


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A 2-CU system: fast to simulate, all mechanisms still exercised."""
    return scaled_config(2)


def make_load(address: int, pc: int = 0x100, cu: int = 0) -> MemoryRequest:
    """Convenience constructor for a load request."""
    return MemoryRequest(access=AccessType.LOAD, address=address, pc=pc, cu_id=cu)


def make_store(address: int, pc: int = 0x200, cu: int = 0) -> MemoryRequest:
    """Convenience constructor for a store request."""
    return MemoryRequest(access=AccessType.STORE, address=address, pc=pc, cu_id=cu)


def single_wave_trace(instructions, name: str = "test") -> WorkloadTrace:
    """Wrap a list of instructions into a one-wavefront, one-kernel trace."""
    program = WavefrontProgram(instructions=list(instructions))
    kernel = KernelTrace(name=f"{name}_kernel", wavefronts=[program])
    return WorkloadTrace(name=name, kernels=[kernel])


def streaming_trace(
    num_lines: int, line_bytes: int = 64, stores: bool = False, name: str = "stream"
) -> WorkloadTrace:
    """A trace that touches ``num_lines`` distinct lines exactly once."""
    instructions = []
    access = AccessType.STORE if stores else AccessType.LOAD
    for i in range(num_lines):
        instructions.append(MemInstr(access=access, line_addresses=(i * line_bytes,), pc=0x40))
        instructions.append(ComputeInstr(vector_ops=1))
    return single_wave_trace(instructions, name=name)


def reuse_trace(num_lines: int, passes: int = 3, line_bytes: int = 64) -> WorkloadTrace:
    """A trace that reads the same ``num_lines`` lines ``passes`` times."""
    instructions = []
    for _ in range(passes):
        for i in range(num_lines):
            instructions.append(
                MemInstr(access=AccessType.LOAD, line_addresses=(i * line_bytes,), pc=0x80)
            )
        instructions.append(ComputeInstr(vector_ops=4))
    return single_wave_trace(instructions, name="reuse")


@pytest.fixture
def trace_helpers():
    """Expose the trace-building helpers to tests as one object."""

    class Helpers:
        make_load = staticmethod(make_load)
        make_store = staticmethod(make_store)
        single_wave_trace = staticmethod(single_wave_trace)
        streaming_trace = staticmethod(streaming_trace)
        reuse_trace = staticmethod(reuse_trace)

    return Helpers
