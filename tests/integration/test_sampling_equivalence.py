"""Sampled-vs-exact accuracy of phase-sampled fast-forward.

The acceptance contract: on reference workloads the *headline* counters
of a sampled run stay within the per-counter error bound the run itself
declares, and within the 2% accuracy budget; every other counter stays
within its declared bound too.  The sampled report also has to say what
it did (the ``report.sampling`` summary) so downstream consumers can
tell a fast-forwarded result from an exact one.
"""

from __future__ import annotations

import pytest

from repro.accel import SamplingConfig
from repro.adaptive import AdaptiveConfig
from repro.core.policies import policy_by_name
from repro.faults import FaultEvent, FaultPlan
from repro.session import SimulationSession
from repro.streams import StreamConfig
from repro.workloads import get_workload

#: the counters the paper's figures are built from
HEADLINE = (
    "gpu.vector_ops",
    "gpu.mem_requests",
    "l1.accesses",
    "l1.hits",
    "l2.accesses",
    "l2.hits",
    "dram.accesses",
    "dram.reads",
    "dram.writes",
)

#: ISSUE acceptance budget for headline counters on reference workloads
HEADLINE_BUDGET = 0.02

SAMPLING_CONFIGS = [
    pytest.param(SamplingConfig(), id="default"),
    pytest.param(
        SamplingConfig(warmup_instances=1, measure_instances=1), id="aggressive"
    ),
]


def _run(name, scale, sampling=None, policy="CacheRW"):
    session = SimulationSession(policy=policy_by_name(policy), sampling=sampling)
    session.begin(get_workload(name, scale=scale))
    session.sim.run()
    return session.finish().to_dict()


def _flat(report):
    return dict(report["counters"], cycles=report["cycles"])


@pytest.mark.parametrize("workload", ["CM", "FwLSTM", "FwGRU", "MHA"])
@pytest.mark.parametrize("sampling", SAMPLING_CONFIGS)
class TestSampledAccuracy:
    def test_every_counter_within_its_declared_bound(self, workload, sampling):
        exact = _flat(_run(workload, 1.0))
        sampled_report = _run(workload, 1.0, sampling=sampling)
        sampled = _flat(sampled_report)
        estimates = sampled_report.get("error_estimates", {})
        for name in sorted(set(exact) | set(sampled)):
            exact_value = exact.get(name, 0)
            sampled_value = sampled.get(name, 0)
            bound = estimates.get(name, 0.0) * max(abs(sampled_value), 1)
            assert abs(sampled_value - exact_value) <= bound + 0.5, (
                f"{name}: exact {exact_value}, sampled {sampled_value}, "
                f"declared bound {bound}"
            )

    def test_headline_counters_within_accuracy_budget(self, workload, sampling):
        exact = _flat(_run(workload, 1.0))
        sampled = _flat(_run(workload, 1.0, sampling=sampling))
        for name in HEADLINE + ("cycles",):
            exact_value = exact.get(name, 0)
            sampled_value = sampled.get(name, 0)
            error = abs(sampled_value - exact_value) / max(abs(exact_value), 1)
            assert error <= HEADLINE_BUDGET, (
                f"{name}: exact {exact_value}, sampled {sampled_value}, "
                f"relative error {error:.4f} > {HEADLINE_BUDGET}"
            )


class TestSamplingReportContract:
    def test_steady_workload_actually_fast_forwards(self):
        report = _run("FwLSTM", 1.0, sampling=SamplingConfig())
        summary = report["sampling"]
        assert summary["mode"] == "phase_sampled"
        assert summary["skipped_kernels"] > 0
        assert 0.0 < summary["skipped_fraction"] < 1.0
        assert summary["signatures"] >= 1
        assert summary["represented_events"] > summary["executed_events"]

    def test_exact_and_sampled_reports_are_distinguishable(self):
        exact = _run("FwLSTM", 1.0)
        sampled = _run("FwLSTM", 1.0, sampling=SamplingConfig())
        assert "sampling" not in exact and "error_estimates" not in exact
        assert "sampling" in sampled

    def test_heterogeneous_addresses_are_not_treated_as_repeats(self):
        """MHA's per-head kernels share a shape but not an address stream;
        the signature must keep them in separate groups (the sampler may
        then find nothing safe to skip -- that is the honest outcome)."""
        report = _run("MHA", 1.0, sampling=SamplingConfig())
        exact = _flat(_run("MHA", 1.0))
        sampled = _flat(report)
        for name in HEADLINE:
            assert sampled.get(name, 0) == pytest.approx(exact.get(name, 0), rel=0.02)


class TestSamplingComposability:
    def test_rejects_adaptive_policy_control(self):
        with pytest.raises(ValueError, match="adaptive"):
            SimulationSession(adaptive=AdaptiveConfig(), sampling=SamplingConfig())

    def test_rejects_concurrent_streams(self):
        streams = [
            StreamConfig(workload="CM", scale=0.2),
            StreamConfig(workload="FwLSTM", scale=0.2),
        ]
        with pytest.raises(ValueError, match="stream"):
            SimulationSession(
                policy=policy_by_name("CacheRW"),
                streams=streams,
                sampling=SamplingConfig(),
            )

    def test_rejects_fault_injection(self):
        plan = FaultPlan(
            events=(FaultEvent(cycle=100, kind="dram_spike", extra_latency=10),)
        )
        with pytest.raises(ValueError, match="fault"):
            SimulationSession(
                policy=policy_by_name("CacheRW"),
                faults=plan,
                sampling=SamplingConfig(),
            )

    def test_single_stream_composes(self):
        report = _run_single_stream()
        assert report["sampling"]["mode"] == "phase_sampled"

    def test_disabled_config_composes_with_everything(self):
        """A disabled SamplingConfig is exact mode, so the rejections
        above must not fire (the FaultPlan-normalization idiom)."""
        session = SimulationSession(
            adaptive=AdaptiveConfig(), sampling=SamplingConfig(enabled=False)
        )
        assert session.kernel_sampler is None


def _run_single_stream():
    session = SimulationSession(
        policy=policy_by_name("CacheRW"),
        streams=[StreamConfig(workload="FwLSTM", scale=1.0)],
        sampling=SamplingConfig(),
    )
    session.begin()
    session.sim.run()
    return session.finish().to_dict()
