"""End-to-end simulation tests: GPU + hierarchy + DRAM under each policy."""

from __future__ import annotations

import pytest

from repro.config import scaled_config
from repro.core.policies import (
    ALL_POLICIES,
    CACHE_R,
    CACHE_RW,
    STATIC_POLICIES,
    UNCACHED,
)
from repro.session import SimulationSession, simulate
from repro.workloads.registry import get_workload

from tests.conftest import reuse_trace, single_wave_trace, streaming_trace

TINY = scaled_config(2)


class TestBasicExecution:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_every_policy_completes_a_small_trace(self, policy):
        report = simulate(streaming_trace(128), policy, config=TINY)
        assert report.cycles > 0
        assert report.policy == policy.name
        assert report.gpu_mem_requests == 128

    def test_all_requests_reach_memory_when_uncached(self):
        report = simulate(streaming_trace(200), UNCACHED, config=TINY)
        assert report.dram_accesses == 200

    def test_simulation_is_deterministic(self):
        first = simulate(streaming_trace(256), CACHE_R, config=TINY)
        second = simulate(streaming_trace(256), CACHE_R, config=TINY)
        assert first.cycles == second.cycles
        assert first.counters == second.counters

    def test_store_stream_completes(self):
        report = simulate(streaming_trace(128, stores=True), CACHE_RW, config=TINY)
        assert report.dram_writes == 128  # flushed at the kernel boundary

    def test_empty_workload_rejected(self):
        from repro.workloads.trace import WorkloadTrace

        with pytest.raises(ValueError):
            simulate(WorkloadTrace(name="empty"), UNCACHED, config=TINY)

    def test_session_reuse_is_rejected_cleanly(self):
        session = SimulationSession(UNCACHED, config=TINY)
        session.run(streaming_trace(16))
        # a fresh workload on the same (already advanced) session still works
        report = session.run(streaming_trace(16, name="again"))
        assert report.cycles > 0


class TestCachingBehaviour:
    def test_reuse_trace_hits_under_cache_r(self):
        report = simulate(reuse_trace(32, passes=4), CACHE_R, config=TINY)
        assert report.dram_accesses == 32  # only compulsory misses
        assert report.l1_hits > 0

    def test_reuse_trace_misses_when_uncached(self):
        cached = simulate(reuse_trace(32, passes=4), CACHE_R, config=TINY)
        uncached = simulate(reuse_trace(32, passes=4), UNCACHED, config=TINY)
        assert uncached.dram_accesses > cached.dram_accesses

    def test_streaming_trace_gains_nothing_from_caching(self):
        cached = simulate(streaming_trace(256), CACHE_R, config=TINY)
        uncached = simulate(streaming_trace(256), UNCACHED, config=TINY)
        assert cached.dram_accesses == uncached.dram_accesses

    def test_write_combining_reduces_dram_writes(self):
        # the same line stored many times within one kernel
        from repro.memory.request import AccessType
        from repro.workloads.trace import MemInstr

        instructions = [MemInstr(AccessType.STORE, (0,), pc=0x30) for _ in range(32)]
        trace = single_wave_trace(instructions, name="storespin")
        combined = simulate(trace, CACHE_RW, config=TINY)
        through = simulate(trace, CACHE_R, config=TINY)
        assert combined.dram_writes < through.dram_writes

    def test_kernel_boundary_invalidation_limits_cross_kernel_l1_reuse(self):
        from repro.memory.request import AccessType
        from repro.workloads.trace import KernelTrace, MemInstr, WavefrontProgram, WorkloadTrace

        def kernel(name: str) -> KernelTrace:
            program = WavefrontProgram(
                instructions=[MemInstr(AccessType.LOAD, (i * 64,), pc=0x50) for i in range(16)]
            )
            return KernelTrace(name, [program])

        trace = WorkloadTrace("two_kernels", [kernel("k0"), kernel("k1")])
        report = simulate(trace, CACHE_R, config=TINY)
        # the L1 is invalidated between kernels, so kernel 1 misses there,
        # but the shared L2 retains the lines
        assert report.get("l1.self_invalidations") > 0
        assert report.l2_hits >= 16

    def test_exec_time_counts_all_kernels(self):
        single = simulate(streaming_trace(64), UNCACHED, config=TINY)
        from repro.workloads.trace import WorkloadTrace

        double_trace = WorkloadTrace(
            "double",
            [streaming_trace(64).kernels[0], streaming_trace(64, name="s2").kernels[0]],
        )
        double = simulate(double_trace, UNCACHED, config=TINY)
        assert double.cycles > single.cycles
        assert double.kernels == 2


class TestReportConsistency:
    @pytest.mark.parametrize("policy", STATIC_POLICIES, ids=lambda p: p.name)
    def test_counters_are_internally_consistent(self, policy):
        workload = get_workload("FwSoft", scale=0.1)
        report = simulate(workload, policy, config=TINY)
        assert report.dram_accesses == report.dram_reads + report.dram_writes
        assert report.get("l1.accesses") == report.gpu_mem_requests
        assert 0.0 <= report.dram_row_hit_rate <= 1.0
        assert 0.0 <= report.l1_hit_rate <= 1.0
        assert report.cache_stall_cycles >= 0

    def test_dram_traffic_never_exceeds_issued_requests_plus_writebacks(self):
        workload = get_workload("FwBN", scale=0.1)
        report = simulate(workload, CACHE_RW, config=TINY)
        writebacks = report.get("l2.writebacks")
        assert report.dram_accesses <= report.gpu_mem_requests + writebacks

    def test_gvops_positive_when_compute_present(self):
        report = simulate(get_workload("SGEMM", scale=0.2), CACHE_R, config=TINY)
        assert report.gvops > 0
        assert report.gmrs > 0
