"""Integration tests for the three caching optimizations (paper section VII)."""

from __future__ import annotations

import pytest

from repro.config import scaled_config
from repro.core.policies import CACHE_RW, CACHE_RW_AB, CACHE_RW_CR, CACHE_RW_PCBY, UNCACHED
from repro.session import simulate
from repro.workloads.registry import get_workload

TINY = scaled_config(2)
SCALE = 0.2


@pytest.fixture(scope="module")
def streaming_reports():
    """FwAct (no reuse, high bandwidth) under the optimization stack."""
    workload_name = "FwAct"
    reports = {}
    for policy in (UNCACHED, CACHE_RW, CACHE_RW_AB, CACHE_RW_CR, CACHE_RW_PCBY):
        reports[policy.name] = simulate(
            get_workload(workload_name, scale=SCALE), policy, config=TINY
        )
    return reports


@pytest.fixture(scope="module")
def coalescing_reports():
    """BwPool (write coalescing opportunity) under the optimization stack."""
    reports = {}
    for policy in (UNCACHED, CACHE_RW, CACHE_RW_AB, CACHE_RW_CR, CACHE_RW_PCBY):
        reports[policy.name] = simulate(
            get_workload("BwPool", scale=SCALE), policy, config=TINY
        )
    return reports


class TestAllocationBypass:
    def test_reduces_allocation_stalls(self, streaming_reports):
        blocking = streaming_reports["CacheRW"]
        bypassing = streaming_reports["CacheRW-AB"]
        assert bypassing.get("l1.stall_cycles_alloc") < blocking.get("l1.stall_cycles_alloc")
        assert bypassing.cache_stalls_per_request < blocking.cache_stalls_per_request

    def test_records_converted_bypasses(self, streaming_reports):
        assert streaming_reports["CacheRW-AB"].get("l1.allocation_bypasses") > 0

    def test_does_not_change_request_count(self, streaming_reports):
        assert (
            streaming_reports["CacheRW-AB"].gpu_mem_requests
            == streaming_reports["CacheRW"].gpu_mem_requests
        )

    def test_never_blocks_when_enabled(self, streaming_reports):
        assert streaming_reports["CacheRW-AB"].get("l1.blocked_set_busy", 0) == 0
        assert streaming_reports["CacheRW-AB"].get("l2.blocked_set_busy", 0) == 0


class TestCacheRinsing:
    def test_improves_row_hit_rate_for_write_heavy_workload(self, coalescing_reports):
        without = coalescing_reports["CacheRW-AB"]
        with_rinse = coalescing_reports["CacheRW-CR"]
        assert with_rinse.dram_row_hit_rate >= without.dram_row_hit_rate

    def test_rinse_writebacks_are_reported(self, coalescing_reports):
        report = coalescing_reports["CacheRW-CR"]
        # rinsing either triggered on evictions or everything was flushed
        assert report.get("l2.rinse_writebacks") >= 0
        assert report.dram_writes > 0

    def test_does_not_lose_writes(self, coalescing_reports):
        # every distinct dirty line must still reach DRAM at least once
        baseline = coalescing_reports["CacheRW-AB"]
        rinsed = coalescing_reports["CacheRW-CR"]
        assert rinsed.dram_writes <= baseline.dram_writes * 1.2
        assert rinsed.dram_writes > 0


class TestPcBypass:
    def test_predictor_bypasses_streaming_pcs(self, streaming_reports):
        report = streaming_reports["CacheRW-PCby"]
        assert report.get("l2.predictor_bypasses") > 0

    def test_streaming_workload_recovers_toward_uncached(self, streaming_reports):
        uncached = streaming_reports["Uncached"].cycles
        pcby = streaming_reports["CacheRW-PCby"].cycles
        cacherw = streaming_reports["CacheRW"].cycles
        # the full stack should be no worse than plain CacheRW and close to Uncached
        assert pcby <= cacherw * 1.05
        assert pcby <= uncached * 1.30

    def test_reuse_workload_keeps_most_of_its_benefit(self):
        # FwSoft re-reads its (small) tensor three times inside the kernel, so
        # even at test scale the predictor should preserve a DRAM reduction
        workload = "FwSoft"
        uncached = simulate(get_workload(workload, scale=SCALE), UNCACHED, config=TINY)
        pcby = simulate(get_workload(workload, scale=SCALE), CACHE_RW_PCBY, config=TINY)
        assert pcby.dram_accesses < uncached.dram_accesses
        assert pcby.cycles < uncached.cycles * 1.1

    def test_predictor_statistics_exposed_via_policy_engine(self):
        from repro.session import SimulationSession

        session = SimulationSession(CACHE_RW_PCBY, config=TINY)
        session.run(get_workload("FwAct", scale=0.1))
        description = session.policy_engine.describe()
        assert description["pc_bypass"] is True
        assert description["predictor_bypass_fraction"] is not None
