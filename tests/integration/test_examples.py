"""Smoke tests for the scripts under ``examples/``.

Every example runs as a subprocess at tiny scale, the way a reader would
invoke it, so a library refactor that breaks an example's imports or call
signatures fails the tier-1 suite instead of rotting silently.  Output
content is the examples' own business; these tests only require a clean
exit and a rendered table.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> tiny-scale argv (keeps each run to a few seconds)
EXAMPLES = {
    "quickstart.py": ["FwFc", "0.05"],
    "policy_advisor.py": ["0.05"],
    "streaming_inference_study.py": ["0.05"],
    "rnn_translation_sweep.py": ["0.05"],
}


def test_every_example_is_covered():
    """A new example must be added to the smoke matrix (or this fails)."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLES), (
        f"examples/ and the smoke matrix drifted: "
        f"only-on-disk={sorted(scripts - set(EXAMPLES))} "
        f"only-in-matrix={sorted(set(EXAMPLES) - scripts)}"
    )


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs_clean_at_tiny_scale(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *EXAMPLES[script]],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    # every example reports something substantial (tables or verdicts)
    assert len(result.stdout.splitlines()) >= 5, (
        f"{script} printed almost nothing:\n{result.stdout}"
    )
