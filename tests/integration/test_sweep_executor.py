"""Executor equivalence and persistent-store reuse.

The guarantees the sweep executor rests on:

* a :class:`ProcessPoolBackend` sweep produces *bitwise-identical* reports
  to a :class:`SerialBackend` sweep of the same grid (simulations are
  deterministic and the worker/store serialization is lossless);
* a second sweep against a warm store performs zero new simulations;
* the runner's in-process memo answers repeats without touching the
  executor at all.
"""

from __future__ import annotations

import pytest

from repro.config import scaled_config
from repro.core.policies import CACHE_R, STATIC_POLICIES, UNCACHED
from repro.experiments import (
    ExperimentRunner,
    JobSpec,
    ProcessPoolBackend,
    ResultStore,
    SerialBackend,
    SweepExecutor,
)

#: two fast, behaviourally distinct workloads keep the grid cheap
SUBSET = ("FwSoft", "FwAct")
SCALE = 0.1
TINY = scaled_config(2)


def make_runner(**kwargs) -> ExperimentRunner:
    return ExperimentRunner(scale=SCALE, config=TINY, workload_names=SUBSET, **kwargs)


def grid_dicts(sweep) -> dict:
    return {key: report.to_dict() for key, report in sweep.reports.items()}


class TestBackendEquivalence:
    def test_process_pool_matches_serial_bitwise(self):
        serial = make_runner().sweep(policies=STATIC_POLICIES)
        parallel = make_runner(jobs=4).sweep(policies=STATIC_POLICIES)
        assert grid_dicts(parallel) == grid_dicts(serial)

    def test_single_job_short_circuits_the_pool(self):
        backend = ProcessPoolBackend(max_workers=2)
        job = JobSpec(workload="FwSoft", policy=CACHE_R, scale=SCALE, config=TINY)
        (pooled,) = backend.run_jobs([job])
        (serial,) = SerialBackend().run_jobs([job])
        assert pooled.to_dict() == serial.to_dict()

    def test_pool_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)


class TestStoreReuse:
    def test_second_run_is_served_entirely_from_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = make_runner(cache_dir=store_dir)
        cold = first.sweep(policies=STATIC_POLICIES)
        assert first.runs_simulated == len(SUBSET) * len(STATIC_POLICIES)
        assert first.runs_loaded == 0

        second = make_runner(cache_dir=store_dir)
        warm = second.sweep(policies=STATIC_POLICIES)
        assert second.runs_simulated == 0, "warm store must serve every cell"
        assert second.runs_loaded == len(SUBSET) * len(STATIC_POLICIES)
        assert grid_dicts(warm) == grid_dicts(cold)

    def test_store_and_pool_compose(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = make_runner(jobs=2, cache_dir=store_dir).sweep(policies=(UNCACHED, CACHE_R))
        warm_runner = make_runner(jobs=2, cache_dir=store_dir)
        warm = warm_runner.sweep(policies=(UNCACHED, CACHE_R))
        assert warm_runner.runs_simulated == 0
        assert grid_dicts(warm) == grid_dicts(cold)

    def test_corrupt_blob_is_a_warned_miss_not_an_error(self, tmp_path):
        store = ResultStore(tmp_path)
        job = JobSpec(workload="FwSoft", policy=CACHE_R, scale=SCALE, config=TINY)
        key = job.fingerprint()
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.load(key) is None
        (tmp_path / f"{key}.json").write_bytes(b"\xff\xfe garbage")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.load(key) is None, "non-UTF-8 blobs are misses, not errors"
        executor = SweepExecutor(store=store)
        with pytest.warns(RuntimeWarning, match="re-simulating"):
            (report,) = executor.run([job])
        assert executor.stats.runs_simulated == 1
        loaded = store.load(key)
        assert loaded is not None and loaded.to_dict() == report.to_dict()

    def test_truncated_entry_is_skipped_warned_and_resimulated(self, tmp_path):
        """A valid entry truncated on disk (full disk, killed writer) heals."""
        store = ResultStore(tmp_path)
        job = JobSpec(workload="FwSoft", policy=CACHE_R, scale=SCALE, config=TINY)
        key = job.fingerprint()
        first = SweepExecutor(store=store)
        (original,) = first.run([job])
        path = tmp_path / f"{key}.json"
        blob = path.read_text(encoding="utf-8")
        path.write_text(blob[: len(blob) // 2], encoding="utf-8")

        second = SweepExecutor(store=store)
        with pytest.warns(RuntimeWarning, match="malformed JSON"):
            (healed,) = second.run([job])
        assert second.stats.runs_simulated == 1 and second.stats.runs_loaded == 0
        assert healed.to_dict() == original.to_dict()
        # the store healed itself: the entry is valid (and warning-free) again
        reloaded = store.load(key)
        assert reloaded is not None and reloaded.to_dict() == original.to_dict()

    def test_stale_schema_entry_is_a_silent_miss(self, tmp_path):
        """Old-schema blobs are expected staleness, not corruption."""
        import json
        import warnings as warnings_module

        store = ResultStore(tmp_path)
        job = JobSpec(workload="FwSoft", policy=CACHE_R, scale=SCALE, config=TINY)
        key = job.fingerprint()
        SweepExecutor(store=store).run([job])
        path = tmp_path / f"{key}.json"
        blob = json.loads(path.read_text(encoding="utf-8"))
        blob["schema"] = -1
        path.write_text(json.dumps(blob), encoding="utf-8")
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert store.load(key) is None

    def test_interrupted_batch_keeps_finished_cells(self, tmp_path):
        """Results are persisted as they finish, not when the batch ends."""
        store = ResultStore(tmp_path)
        executor = SweepExecutor(store=store)
        good = JobSpec(workload="FwSoft", policy=CACHE_R, scale=SCALE, config=TINY)
        bad = JobSpec(workload="NotAWorkload", policy=CACHE_R, scale=SCALE, config=TINY)
        with pytest.raises(KeyError):
            executor.run([good, bad])
        assert store.load(good.fingerprint()) is not None
        # the crashed sweep's survivor is reused by the retry
        retry = SweepExecutor(store=store)
        retry.run([good])
        assert retry.stats.runs_loaded == 1 and retry.stats.runs_simulated == 0

    def test_duplicate_jobs_in_one_batch_simulate_once(self, tmp_path):
        executor = SweepExecutor(store=ResultStore(tmp_path))
        job = JobSpec(workload="FwSoft", policy=CACHE_R, scale=SCALE, config=TINY)
        first, second = executor.run([job, job])
        assert executor.stats.runs_simulated == 1
        assert first.to_dict() == second.to_dict()


class TestRunnerMemo:
    def test_memo_absorbs_repeats_without_touching_executor(self):
        runner = make_runner()
        runner.sweep(policies=STATIC_POLICIES)
        simulated = runner.runs_simulated
        runner.sweep(policies=STATIC_POLICIES)
        runner.run_one(SUBSET[0], STATIC_POLICIES[0])
        assert runner.runs_simulated == simulated
        assert runner.memo_hits >= len(SUBSET) * len(STATIC_POLICIES) + 1

    def test_shared_executor_aggregates_across_runners(self, tmp_path):
        executor = SweepExecutor(store=ResultStore(tmp_path))
        one = make_runner(executor=executor)
        two = make_runner(executor=executor)
        one.sweep(policies=(CACHE_R,))
        two.sweep(policies=(CACHE_R,))
        # the second runner has a cold memo but a warm shared store
        assert executor.stats.runs_simulated == len(SUBSET)
        assert executor.stats.runs_loaded == len(SUBSET)

    def test_stats_keys(self):
        runner = make_runner()
        stats = runner.stats()
        assert set(stats) == {
            "runs_simulated",
            "runs_loaded",
            "runs_failed",
            "memo_hits",
            "cached_runs",
        }


class TestPoolRelease:
    """The per-attempt pool must be released on *every* exit path.

    Regression: an ``on_result`` callback raising out of the drain loop
    used to reach ``pool.shutdown(wait=True)``, blocking the sweep on
    still-running -- possibly stuck -- workers and leaking the pool past
    the attempt.  The abandon path now shuts down without waiting and
    cancels unstarted futures.
    """

    @staticmethod
    def _recording_pool():
        from concurrent.futures import ThreadPoolExecutor

        calls: list[dict[str, bool]] = []

        class RecordingPool(ThreadPoolExecutor):
            def shutdown(self, wait=True, *, cancel_futures=False):
                calls.append({"wait": wait, "cancel_futures": cancel_futures})
                super().shutdown(wait=wait, cancel_futures=cancel_futures)

        return RecordingPool, calls

    def _specs(self):
        return [
            JobSpec(workload=name, policy=CACHE_R, scale=SCALE, config=TINY)
            for name in ("FwSoft", "FwAct", "FwSoft")
        ]

    def test_raising_callback_abandons_the_pool_without_waiting(self, monkeypatch):
        import repro.experiments.jobs as jobs_module

        pool_class, calls = self._recording_pool()
        monkeypatch.setattr(jobs_module, "ProcessPoolExecutor", pool_class)
        backend = ProcessPoolBackend(max_workers=1)

        def sink(index, report):
            raise RuntimeError("result sink is full")

        with pytest.raises(RuntimeError, match="result sink is full"):
            backend.run_jobs(self._specs(), on_result=sink)
        assert calls, "the pool was never shut down"
        assert calls[-1] == {"wait": False, "cancel_futures": True}

    def test_happy_path_still_waits_for_a_clean_shutdown(self, monkeypatch):
        import repro.experiments.jobs as jobs_module

        pool_class, calls = self._recording_pool()
        monkeypatch.setattr(jobs_module, "ProcessPoolExecutor", pool_class)
        backend = ProcessPoolBackend(max_workers=1)
        reports = backend.run_jobs(self._specs())
        assert all(report is not None for report in reports)
        assert calls[-1] == {"wait": True, "cancel_futures": True}
