"""End-to-end tests of the multi-device NUMA topology subsystem.

Covers the acceptance criteria of the topology PR beyond the golden
equivalence check (which lives in ``test_core_equivalence.py``):

* multi-device runs complete, produce remote/local traffic accounting and
  per-fabric-link counters, and respond to the fabric parameters;
* the scaling sweep runs through the shared :class:`SweepExecutor` with
  fingerprinted topologies, and a warm repeat performs zero simulations;
* the adaptive subsystem composes with a topology (slices share the
  set-dueling monitor, remote traffic feeds the duel);
* the ``topology``, ``cache`` and ``list --json`` CLI surfaces.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.config import scaled_config
from repro.adaptive import AdaptiveConfig
from repro.core.policies import CACHE_R, CACHE_RW, STATIC_POLICIES, UNCACHED
from repro.experiments import ExperimentRunner, figure_scaling, scaling_summary
from repro.experiments.jobs import JobSpec, SweepExecutor
from repro.experiments.store import ResultStore
from repro.session import SimulationSession, simulate
from repro.topology import TopologyConfig, topology_by_name
from repro.workloads.registry import get_workload

TINY = scaled_config(2)
DUAL = TopologyConfig(num_devices=2)
QUAD = TopologyConfig(num_devices=4)


def _run(policy, topology, workload="SGEMM", scale=0.1, **kwargs):
    return simulate(
        get_workload(workload, scale=scale),
        policy,
        config=TINY,
        topology=topology,
        **kwargs,
    )


class TestMultiDeviceRuns:
    def test_two_device_run_completes_with_numa_counters(self):
        report = _run(CACHE_RW, DUAL)
        assert report.cycles > 0
        assert report.local_requests > 0 and report.remote_requests > 0
        assert 0.0 < report.remote_fraction < 1.0
        # both directed fabric links carried traffic
        assert report.get("link.fabric.d0d1.transfers") > 0
        assert report.get("link.fabric.d1d0.transfers") > 0

    def test_single_device_reports_carry_no_topo_counters(self):
        report = _run(CACHE_RW, None)
        assert not any(key.startswith("topo.") for key in report.counters)
        assert report.remote_fraction == 0.0

    def test_four_devices_raise_remote_fraction(self):
        two = _run(UNCACHED, DUAL)
        four = _run(UNCACHED, QUAD)
        assert four.remote_fraction > two.remote_fraction

    def test_remote_latency_costs_cycles(self):
        fast = _run(UNCACHED, TopologyConfig(num_devices=2, remote_latency_cycles=10))
        slow = _run(UNCACHED, TopologyConfig(num_devices=2, remote_latency_cycles=400))
        assert slow.cycles > fast.cycles

    def test_weak_scaling_splits_the_work(self):
        """2 devices = 2x the CUs/L2/DRAM on a split workload: faster."""
        one = _run(CACHE_RW, None, workload="DGEMM", scale=0.3)
        two = _run(CACHE_RW, DUAL, workload="DGEMM", scale=0.3)
        assert two.cycles < one.cycles

    def test_replicated_weights_cut_remote_traffic(self):
        plain = _run(CACHE_RW, DUAL, workload="DGEMM", scale=0.3)
        replicated = _run(
            CACHE_RW,
            TopologyConfig(num_devices=2, replicate_weights=True),
            workload="DGEMM",
            scale=0.3,
        )
        assert replicated.remote_fraction < plain.remote_fraction

    def test_registered_topology_runs(self):
        report = _run(CACHE_R, topology_by_name("dual-gpu"))
        assert report.remote_requests > 0

    def test_session_exposes_per_device_components(self):
        session = SimulationSession(policy=CACHE_RW, config=TINY, topology=QUAD)
        assert len(session.hierarchy.l2s) == 4
        assert len(session.hierarchy.drams) == 4
        assert len(session.hierarchy.l1s) == 4 * TINY.gpu.num_cus
        assert session.gpu.config.gpu.num_cus == 4 * TINY.gpu.num_cus
        description = session.hierarchy.describe()
        assert description["num_devices"] == 4
        assert description["cus_per_device"] == TINY.gpu.num_cus

    def test_multi_device_row_ids_never_collide_across_devices(self):
        session = SimulationSession(policy=CACHE_RW, config=TINY, topology=DUAL)
        rows = [session.hierarchy.row_of(line * 64) for line in range(4096)]
        by_device = {}
        for line, row in enumerate(rows):
            device = session.hierarchy.device_of(line * 64)
            by_device.setdefault(row, set()).add(device)
        assert all(len(devices) == 1 for devices in by_device.values())


class TestAdaptiveOnTopology:
    def test_dynamic_policy_runs_on_two_devices(self):
        report = _run(None, DUAL, workload="FwLSTM", scale=0.05,
                      adaptive=AdaptiveConfig())
        assert report.policy == "Dynamic"
        assert report.remote_requests > 0
        assert report.get("adaptive.decisions") > 0
        # the duel saw remote traffic arriving at leader sets
        remote_evidence = sum(
            value
            for key, value in report.counters.items()
            if key.startswith("adaptive.duel.") and key.endswith(".leader_remote_traffic")
        )
        assert remote_evidence > 0


    def test_duel_attribution_keys_on_slice_local_sets(self):
        """Demand accounting must charge the leader the slice hooks charge.

        The L2 slices observe re-addressed local partition addresses, so
        the engine's annotate-time leader lookup must use the slice-local
        set index; keying it on the global address would attribute duel
        demand to a different candidate than the one whose leader set the
        home slice's miss/bypass/stall hooks charge.
        """
        from repro.adaptive.controller import DynamicPolicyEngine
        from repro.memory.address_mapping import DeviceInterleave
        from repro.memory.request import AccessType, MemoryRequest
        from repro.stats import StatsCollector

        l2 = TINY.l2
        interleave = DeviceInterleave(2, l2.line_bytes, chunk_lines=32)

        def to_set(address: int) -> int:
            return (interleave.to_local(address) // l2.line_bytes) % l2.num_sets

        engine = DynamicPolicyEngine(
            AdaptiveConfig(), l2_config=l2, stats=StatsCollector(),
            address_to_set=to_set,
        )
        monitor = engine.monitor
        checked = 0
        for line in range(8 * l2.num_sets):
            address = line * l2.line_bytes
            local_set = to_set(address)
            global_set = (address // l2.line_bytes) % l2.num_sets
            candidate = monitor.leader_index(local_set)
            if candidate is None or monitor.leader_index(global_set) == candidate:
                continue  # only addresses where the two keyings disagree
            before = monitor.scores()[candidate].accesses
            engine.annotate(MemoryRequest(access=AccessType.LOAD, address=address))
            assert monitor.scores()[candidate].accesses == before + 1
            checked += 1
        assert checked > 0, "no address distinguished local from global keying"


class TestScalingSweep:
    def test_figure_scaling_through_executor_and_warm_repeat(self, tmp_path):
        """The acceptance sweep: cold simulates every cell, warm loads all."""
        workloads = ("FwSoft", "SGEMM", "FwLSTM", "MHA")
        devices = (1, 2, 4)

        def build_runner():
            return ExperimentRunner(
                scale=0.05,
                config=TINY,
                workload_names=workloads,
                cache_dir=str(tmp_path),
            )

        cold = build_runner()
        figure = figure_scaling(
            cold, devices=devices, policies=STATIC_POLICIES, workload_names=workloads
        )
        cells = len(workloads) * len(STATIC_POLICIES) * len(devices)
        assert cold.runs_simulated == cells and cold.runs_loaded == 0

        warm = build_runner()
        repeat = figure_scaling(
            warm, devices=devices, policies=STATIC_POLICIES, workload_names=workloads
        )
        assert warm.runs_simulated == 0, "warm scaling repeat re-simulated cells"
        assert warm.runs_loaded == cells
        assert repeat == figure

        for workload, series in figure.items():
            for policy in STATIC_POLICIES:
                assert series[f"{policy.name}@1dev"]["speedup"] == pytest.approx(1.0)
                assert series[f"{policy.name}@1dev"]["remote_fraction"] == 0.0
                for count in (2, 4):
                    assert series[f"{policy.name}@{count}dev"]["remote_fraction"] > 0.0
        summary = scaling_summary(figure)
        assert set(summary) == {
            f"{policy.name}@{count}dev"
            for policy in STATIC_POLICIES
            for count in devices
        }

    def test_topology_jobs_fingerprint_separately(self):
        job = lambda topology: JobSpec(
            workload="SGEMM", policy=CACHE_RW, scale=0.1, config=TINY, topology=topology
        )
        plain = job(None).fingerprint()
        single = job(TopologyConfig(num_devices=1)).fingerprint()
        dual = job(DUAL).fingerprint()
        assert len({plain, single, dual}) == 3

    def test_topology_job_summary_names_the_topology(self):
        spec = JobSpec(
            workload="SGEMM", policy=CACHE_RW, config=TINY,
            topology=topology_by_name("dual-chiplet"),
        )
        summary = spec.summary()
        assert summary["topology"] == "dual-chiplet"
        assert summary["num_devices"] == 2


class TestStoreLifecycle:
    def _populated(self, tmp_path) -> ResultStore:
        store = ResultStore(tmp_path)
        executor = SweepExecutor(store=store)
        executor.run(
            [JobSpec(workload="FwSoft", policy=UNCACHED, scale=0.05, config=TINY)]
        )
        return store

    def test_stats_reports_occupancy(self, tmp_path):
        store = self._populated(tmp_path)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["oldest_age_days"] is not None
        assert stats["stale_tmp"] == 0

    def test_prune_removes_only_old_entries(self, tmp_path):
        import os
        import time

        store = self._populated(tmp_path)
        (key,) = store.keys()
        fresh_path = store._path(key)
        stale_path = tmp_path / ("0" * 64 + ".json")
        stale_path.write_text(fresh_path.read_text())
        old = time.time() - 10 * 86400
        os.utime(stale_path, (old, old))
        assert store.prune(max_age_days=5) == 1
        assert not stale_path.exists() and fresh_path.exists()
        assert store.prune(max_age_days=0) == 1  # everything left is younger than now
        with pytest.raises(ValueError):
            store.prune(max_age_days=-1)

    def test_prune_sweeps_stale_tmp_litter(self, tmp_path):
        import os
        import time

        store = ResultStore(tmp_path)
        litter = tmp_path / ".tmp-crashed.json"
        litter.write_text("{")
        old = time.time() - 3 * 86400
        os.utime(litter, (old, old))
        stats = store.stats()
        assert stats["stale_tmp"] == 1
        # pathlib's "*.json" glob matches the dotted orphan too: it must
        # not leak into entries, keys() or len()
        assert stats["entries"] == 0
        assert list(store.keys()) == []
        assert len(store) == 0
        assert store.prune(max_age_days=1) == 1
        assert store.stats()["stale_tmp"] == 0


class TestCli:
    def test_topology_command_prints_and_records(self, capsys, tmp_path):
        out_file = tmp_path / "scaling.json"
        code = cli.main([
            "--scale", "0.05", "--cus", "2", "topology",
            "--devices", "1", "2",
            "--workloads", "FwSoft",
            "--policies", "Uncached", "CacheR",
            "--cache-dir", str(tmp_path / "store"),
            "--json-out", str(out_file),
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Device scaling" in output and "remote traffic fraction" in output
        blob = json.loads(out_file.read_text())
        assert blob["schema"] == 1
        assert blob["figure_scaling"]["FwSoft"]["CacheR@2dev"]["remote_fraction"] > 0
        assert set(blob["fingerprints"]) == {"1", "2"}
        assert blob["fabric"]["num_devices"] == 1  # the sweep template

    def test_topology_command_requires_the_baseline(self, capsys):
        code = cli.main(["topology", "--devices", "2", "4", "--no-cache"])
        assert code == 2
        assert "1-device baseline" in capsys.readouterr().err

    def test_run_command_accepts_registered_topology(self, capsys):
        code = cli.main([
            "--scale", "0.05", "--cus", "2", "run", "--workload", "FwSoft",
            "--policy", "CacheR", "--topology", "dual-chiplet", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["remote_fraction"] > 0

    def test_list_json_enumerates_all_registries(self, capsys):
        assert cli.main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert {w["name"] for w in data["workloads"]} >= {"DGEMM", "MHA"}
        assert any(p["name"] == "CacheRW-PCby" for p in data["policies"])
        assert data["adaptive"]["default_candidates"] == [
            "Uncached", "CacheR", "CacheRW",
        ]
        assert data["topologies"]["quad-gpu"]["num_devices"] == 4

    def test_list_human_output_names_topologies(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        assert "Topologies:" in output and "dual-chiplet" in output

    def test_cache_stats_clear_prune(self, capsys, tmp_path):
        store = ResultStore(tmp_path)
        executor = SweepExecutor(store=store)
        executor.run(
            [JobSpec(workload="FwSoft", policy=UNCACHED, scale=0.05, config=TINY)]
        )
        assert cli.main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1

        assert cli.main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-age-days", "30", "--json",
        ]) == 0
        pruned = json.loads(capsys.readouterr().out)
        assert pruned["removed"] == 0  # nothing is a month old

        assert cli.main(["cache", "clear", "--cache-dir", str(tmp_path), "--json"]) == 0
        cleared = json.loads(capsys.readouterr().out)
        assert cleared["removed"] == 1
        assert len(store) == 0

    def test_cache_prune_requires_max_age(self, capsys, tmp_path):
        code = cli.main(["cache", "prune", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "--max-age-days" in capsys.readouterr().err

    def test_cache_prune_rejects_negative_age(self, capsys, tmp_path):
        code = cli.main([
            "cache", "prune", "--cache-dir", str(tmp_path), "--max-age-days", "-1",
        ])
        assert code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_cache_commands_do_not_create_missing_stores(self, capsys, tmp_path):
        missing = tmp_path / "typo" / "store"
        code = cli.main(["cache", "stats", "--cache-dir", str(missing)])
        assert code == 2
        assert "no result store" in capsys.readouterr().err
        assert not missing.exists(), "a read-only command created the store"
