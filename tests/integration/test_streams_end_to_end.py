"""End-to-end tests of the multi-tenant serving subsystem.

Covers the stream scheduler (shared and partitioned CU dispatch, staggered
arrivals, composition with multi-device topologies), stream-scoped kernel
boundary synchronization, per-stream accounting and interference metrics,
the serving registry, store-backed interference sweeps, and the ``serve``
CLI.  The bit-identity of the one-stream wiring is proven separately in
``test_core_equivalence.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.config import scaled_config
from repro.core.policies import CACHE_RW, UNCACHED
from repro.experiments.interference import (
    figure_interference,
    interference_summary,
)
from repro.experiments.jobs import JobSpec, SweepExecutor, execute_job
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultStore
from repro.session import SimulationSession, simulate
from repro.streams import (
    MIX_NAMES,
    SERVING_MIXES,
    ServingMix,
    StreamConfig,
    mix_by_name,
)
from repro.streams.address_space import isolate_traces, rebase_trace
from repro.topology import TopologyConfig
from repro.workloads.registry import get_workload

TINY = scaled_config(2)

TWO_TENANTS = (
    StreamConfig(workload="FwFc", scale=0.1),
    StreamConfig(workload="FwSoft", scale=0.1),
)


def _serving_report(streams, policy=CACHE_RW, config=TINY, **kwargs):
    return simulate(policy=policy, config=config, streams=streams, **kwargs)


class TestStreamConfigAndMixes:
    def test_stream_config_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(workload="FwFc", scale=0.0)
        with pytest.raises(ValueError):
            StreamConfig(workload="FwFc", launch_cycle=-1)
        with pytest.raises(ValueError):
            StreamConfig(workload="FwFc", cu_share="exclusive")
        with pytest.raises(ValueError):
            StreamConfig(workload="")

    def test_mix_requires_uniform_cu_share(self):
        with pytest.raises(ValueError):
            ServingMix(
                name="bad",
                streams=(
                    StreamConfig(workload="FwFc"),
                    StreamConfig(workload="FwSoft", cu_share="partitioned"),
                ),
            )

    def test_registered_mixes_are_well_formed(self):
        assert set(MIX_NAMES) == set(SERVING_MIXES)
        for name, mix in SERVING_MIXES.items():
            assert mix.name == name
            assert mix.num_streams >= 2
            assert mix.cu_share == "shared"
            assert len(mix.tenant_labels()) == mix.num_streams

    def test_mix_lookup_and_retagging(self):
        mix = mix_by_name("MHA+FWLSTM")  # case-insensitive
        assert mix.name == "mha+fwlstm"
        with pytest.raises(KeyError):
            mix_by_name("nope")
        partitioned = mix.with_cu_share("partitioned")
        assert partitioned.cu_share == "partitioned"
        assert partitioned.fingerprint() != mix.fingerprint()
        scaled = mix.scaled(0.5)
        assert scaled.streams[0].scale == pytest.approx(0.5)
        assert scaled.fingerprint() != mix.fingerprint()
        assert mix.scaled(1.0) is mix

    def test_fingerprint_excludes_display_names(self):
        base = StreamConfig(workload="FwFc", scale=0.1)
        labelled = StreamConfig(workload="FwFc", scale=0.1, label="tenant-a")
        assert base.fingerprint() == labelled.fingerprint()
        assert base.fingerprint() != StreamConfig(workload="FwFc", scale=0.2).fingerprint()


class TestAddressSpaceIsolation:
    def test_streams_get_disjoint_line_ranges(self):
        traces = [
            get_workload("FwFc", scale=0.1).build_trace(),
            get_workload("FwFc", scale=0.1).build_trace(),
        ]
        isolated = isolate_traces(traces, alignment=64)
        ranges = []
        for trace in isolated:
            lines = set()
            for kernel in trace.kernels:
                lines.update(kernel.touched_lines())
            ranges.append((min(lines), max(lines)))
        assert ranges[0][1] < ranges[1][0]
        # stream 0 is untouched (identity), preserving bit-identity
        assert isolated[0] is traces[0]

    def test_rebase_preserves_structure(self):
        trace = get_workload("FwSoft", scale=0.1).build_trace()
        rebased = rebase_trace(trace, 1 << 20, pc_offset=1 << 32)
        assert rebased.num_kernels == trace.num_kernels
        assert rebased.line_requests == trace.line_requests
        assert rebased.vector_ops == trace.vector_ops
        assert rebase_trace(trace, 0) is trace
        with pytest.raises(ValueError):
            rebase_trace(trace, -64)


class TestServingExecution:
    def test_two_tenant_run_completes_with_per_stream_accounting(self):
        report = _serving_report(TWO_TENANTS)
        assert report.num_streams == 2
        per_stream = report.per_stream
        assert set(per_stream) == {0, 1}
        for index in (0, 1):
            sub = per_stream[index]
            assert sub["kernels_completed"] == sub["kernels_total"]
            assert sub["mem_requests"] > 0
            assert 0 < sub["cycles"] <= report.cycles
        # the whole run ends when the last stream ends
        assert report.cycles == max(
            per_stream[i]["finish_cycle"] for i in per_stream
        )
        # per-stream requests sum to the global total
        assert (
            sum(per_stream[i]["mem_requests"] for i in per_stream)
            == report.gpu_mem_requests
        )

    def test_staggered_arrival_is_honoured(self):
        streams = (
            StreamConfig(workload="FwFc", scale=0.1),
            StreamConfig(workload="FwSoft", scale=0.1, launch_cycle=5_000),
        )
        report = _serving_report(streams)
        late = report.per_stream[1]
        assert late["launch_cycle"] == 5_000
        assert late["finish_cycle"] > 5_000
        assert late["cycles"] == late["finish_cycle"] - 5_000

    def test_partitioned_dispatch_respects_cu_blocks(self):
        streams = tuple(
            StreamConfig(workload=w, scale=0.1, cu_share="partitioned")
            for w in ("FwFc", "FwSoft")
        )
        session = SimulationSession(policy=CACHE_RW, config=TINY, streams=streams)
        session.gpu.dispatch_log = []
        report = session.run()
        assert report.num_streams == 2
        ranges = [session.gpu.cu_partition_of(i) for i in range(2)]
        assert ranges[0] == [(0, 1)] and ranges[1] == [(1, 1)]
        assert session.gpu.dispatch_log, "no wavefronts were dispatched"
        for stream_id, cu_id, _wavefront_id in session.gpu.dispatch_log:
            base, count = ranges[stream_id][0]
            assert base <= cu_id < base + count

    def test_partitioning_more_streams_than_cus_fails_loudly(self):
        streams = tuple(
            StreamConfig(workload="FwFc", scale=0.05, cu_share="partitioned")
            for _ in range(3)
        )
        with pytest.raises(ValueError, match="partition"):
            _serving_report(streams)

    def test_gpu_stays_usable_after_a_rejected_run(self):
        """Validation failures must not wedge the scheduler (no state is
        mutated before every stream checks out)."""
        session = SimulationSession(policy=CACHE_RW, config=TINY, streams=TWO_TENANTS)
        bad = [get_workload(s.workload, scale=s.scale).build_trace() for s in TWO_TENANTS]
        bad[1].kernels.clear()  # invalid: a stream with no kernels
        with pytest.raises(ValueError, match="no kernels"):
            session.gpu.run_streams(bad, list(TWO_TENANTS))
        assert not session.gpu.running
        report = session.run()  # the same GPU accepts the real run
        assert report.num_streams == 2

    def test_serving_composes_with_topology(self):
        topology = TopologyConfig(num_devices=2)
        report = _serving_report(TWO_TENANTS, topology=topology)
        assert report.num_streams == 2
        assert report.remote_requests > 0  # interleaving produces fabric traffic
        per_stream = report.per_stream
        assert (
            sum(per_stream[i]["mem_requests"] for i in per_stream)
            == report.gpu_mem_requests
        )

    def test_run_rejects_workload_and_streams_together(self):
        session = SimulationSession(policy=CACHE_RW, config=TINY, streams=TWO_TENANTS)
        with pytest.raises(ValueError):
            session.run(get_workload("FwFc", scale=0.1))

    def test_mix_label_and_policy_recorded(self):
        report = _serving_report(mix_by_name("mha+fwlstm").scaled(0.05))
        assert report.workload == "mha+fwlstm"
        assert report.policy == CACHE_RW.name


class TestStreamScopedBoundaries:
    def test_boundary_of_one_tenant_preserves_the_others_lines(self):
        """Direct cache-level check of the scoped walk (see also the unit
        tests): tenant 0's boundary must not drop tenant 1's lines."""
        from repro.memory.cache import Cache, LineState
        from repro.engine import Simulator
        from repro.stats import StatsCollector

        sim = Simulator()
        stats = StatsCollector()
        cache = Cache(
            name="l2",
            config=TINY.l2,
            sim=sim,
            stats=stats,
            downstream=lambda request, on_done: sim.schedule(
                1, lambda: on_done(request)
            ),
            stat_prefix="l2",
        )
        from repro.memory.request import AccessType, MemoryRequest

        def load(address, stream_id):
            request = MemoryRequest(
                access=AccessType.LOAD, address=address, stream_id=stream_id
            )
            cache.access(request, lambda r: None)
            sim.run()

        load(0, 0)
        load(64, 1)
        load(128, 1)
        assert len(cache.contents()) == 3
        dropped = cache.invalidate_clean(stream_id=0)
        assert dropped == 1
        surviving = cache.contents()
        assert set(surviving) == {64, 128}
        assert all(state is LineState.VALID for state in surviving.values())
        # unscoped walk still drops everything (single-stream behaviour)
        assert cache.invalidate_clean() == 2

    def test_scoped_flush_only_writes_back_own_dirty_lines(self):
        from repro.memory.cache import Cache
        from repro.engine import Simulator
        from repro.stats import StatsCollector
        from repro.memory.request import AccessType, MemoryRequest

        sim = Simulator()
        stats = StatsCollector()
        writebacks = []
        cache = Cache(
            name="l2",
            config=TINY.l2,
            sim=sim,
            stats=stats,
            downstream=lambda request, on_done: (
                writebacks.append(request.address),
                sim.schedule(1, lambda: on_done(request)),
            )[-1],
            stat_prefix="l2",
        )

        def store(address, stream_id):
            request = MemoryRequest(
                access=AccessType.STORE, address=address, stream_id=stream_id
            )
            cache.access(request, lambda r: None)
            sim.run()

        store(0, 0)
        store(64, 1)
        store(128, 1)
        flushed = cache.flush_dirty(lambda: None, stream_id=1)
        sim.run()
        assert flushed == 2
        assert sorted(writebacks) == [64, 128]
        assert cache.dirty_line_count() == 1  # stream 0's line is untouched


class TestInterferenceMetrics:
    def test_interference_requires_matching_baselines(self):
        report = _serving_report(TWO_TENANTS)
        with pytest.raises(ValueError):
            report.interference([1000])

    def test_slowdowns_and_unfairness_computed_per_tenant(self):
        report = _serving_report(TWO_TENANTS)
        solo = [
            simulate(
                get_workload(s.workload, scale=s.scale), CACHE_RW, config=TINY
            ).cycles
            for s in TWO_TENANTS
        ]
        metrics = report.interference(solo)
        assert len(metrics["slowdowns"]) == 2
        for slowdown in metrics["slowdowns"]:
            assert slowdown > 0.9  # sharing cannot speed a tenant up materially
        assert metrics["unfairness"] >= 1.0
        assert metrics["max_slowdown"] == max(metrics["slowdowns"])

    def test_stream_cycles_raises_outside_serving_runs(self):
        report = simulate(get_workload("FwFc", scale=0.1), CACHE_RW, config=TINY)
        assert report.num_streams == 0
        assert report.per_stream == {}
        with pytest.raises(KeyError):
            report.stream_cycles(0)


class TestServingJobsAndStore:
    def test_jobspec_fingerprint_covers_stream_configs(self):
        base = JobSpec(workload="mix", policy=CACHE_RW, config=TINY, streams=TWO_TENANTS)
        same = JobSpec(workload="other-label", policy=CACHE_RW, config=TINY, streams=TWO_TENANTS)
        # the label must not split identical mixes across store entries
        assert base.fingerprint() == same.fingerprint()
        retagged = JobSpec(
            workload="mix",
            policy=CACHE_RW,
            config=TINY,
            streams=tuple(
                StreamConfig(
                    workload=s.workload, scale=s.scale, cu_share="partitioned"
                )
                for s in TWO_TENANTS
            ),
        )
        assert retagged.fingerprint() != base.fingerprint()
        assert (
            JobSpec(workload="mix", policy=UNCACHED, config=TINY, streams=TWO_TENANTS)
            .fingerprint()
            != base.fingerprint()
        )
        assert "streams" in base.summary()

    def test_execute_job_runs_the_mix(self):
        report = execute_job(
            JobSpec(workload="mix", policy=CACHE_RW, config=TINY, streams=TWO_TENANTS)
        )
        assert report.num_streams == 2

    def test_warm_interference_sweep_simulates_nothing(self, tmp_path):
        mixes = [
            ServingMix(
                name="tiny",
                streams=(
                    StreamConfig(workload="FwFc", scale=0.1),
                    StreamConfig(workload="FwSoft", scale=0.1),
                ),
            )
        ]

        def build_runner():
            return ExperimentRunner(
                config=TINY,
                executor=SweepExecutor(store=ResultStore(tmp_path / "store")),
            )

        cold = build_runner()
        figure = figure_interference(cold, mixes=mixes, policies=(CACHE_RW,))
        assert cold.runs_simulated > 0 and cold.runs_loaded == 0
        warm = build_runner()
        repeat = figure_interference(warm, mixes=mixes, policies=(CACHE_RW,))
        assert warm.runs_simulated == 0
        assert warm.runs_loaded == cold.runs_simulated
        assert repeat == figure

    def test_serving_sweep_memoizes_in_process(self):
        runner = ExperimentRunner(config=TINY)
        mix = ServingMix(name="tiny", streams=TWO_TENANTS)
        first = runner.serving_sweep([mix], [CACHE_RW])
        again = runner.serving_sweep([mix], [CACHE_RW])
        assert first == again
        assert runner.runs_simulated == 1
        assert runner.memo_hits == 1

    def test_figure_interference_shape_and_summary(self, tmp_path):
        mixes = [ServingMix(name="tiny", streams=TWO_TENANTS)]
        runner = ExperimentRunner(config=TINY)
        figure = figure_interference(
            runner, mixes=mixes, policies=(CACHE_RW,), modes=("shared",)
        )
        assert set(figure) == {"tiny"}
        cell = figure["tiny"][f"{CACHE_RW.name}@shared"]
        assert set(cell) >= {
            "mean_slowdown",
            "max_slowdown",
            "unfairness",
            "cycles",
            "tenants",
        }
        assert len(cell["tenants"]) == 2
        summary = interference_summary(figure)
        assert f"{CACHE_RW.name}@shared" in summary


class TestServeCli:
    def test_serve_cli_writes_interference_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "interference.json"
        code = main(
            [
                "--scale",
                "0.05",
                "--cus",
                "2",
                "serve",
                "--mix",
                "mha+fwlstm",
                "--no-cache",
                "--json-out",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "slowdown" in captured.out
        blob = json.loads(out.read_text())
        assert blob["schema"] == 1
        assert "mha+fwlstm" in blob["figure_interference"]
        for series in blob["figure_interference"]["mha+fwlstm"].values():
            assert "unfairness" in series and "tenants" in series

    def test_list_json_includes_serving_mixes(self, capsys):
        from repro.cli import main

        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["serving_mixes"]) == set(MIX_NAMES)
        mix = payload["serving_mixes"]["mha+fwlstm"]
        assert [s["workload"] for s in mix["streams"]] == ["MHA", "FwLSTM"]
